//! The decode-step scheduler and its session front end.
//!
//! [`ServeSession`] is the runtime's control loop: requests queue (either
//! pre-filled via [`ServeSession::submit`] or joining mid-run through
//! [`ServeSession::submit_at`]'s trace-driven arrivals), admission — under
//! a pluggable [`SchedulerPolicy`], FCFS by default — reserves each
//! request's full prompt + generation page budget **on every device** of
//! the [`ShardedKvStore`] (so an admitted sequence never OOMs mid-decode),
//! and every [`ServeSession::step`] re-forms the batch, fans one work unit
//! per `(sequence, kv-head, device)` — coalescing sequences that alias
//! the same sealed prefix pages into one cascade unit per `(prefix-group,
//! kv-head, device)` that walks the shared pages once (see
//! [`ServeConfig::with_shared_attn`]) — across the device-pinned
//! [`WorkerPool`] groups, **merges each head's softmax partials** (the
//! simulated all-reduce, exact by `OnlineSoftmax::merge`), appends each
//! sequence's new KV token, and retires finished sequences so their pages
//! recycle into the admission queue.
//!
//! Under page pressure a preempting policy (e.g.
//! [`crate::scheduler::FcfsPreempt`]) may **swap out** a running sequence:
//! its packed pages and FP16 residual window serialize into a host-side
//! blob ([`ShardedKvStore::swap_out`]), its pages free on every device,
//! and the request re-queues at the front with its model state intact.
//! Swap-in restores the blob bitwise, so a preempted stream is identical
//! to an uninterrupted one.
//!
//! The session degrades instead of crashing: a [`FaultPlan`] armed via
//! [`ServeSession::with_faults`] deterministically injects device loss,
//! swap-blob corruption, transient interconnect failures, and forced pool
//! exhaustion, and each is recovered — placement rebuild with
//! recompute-from-prompt re-admission, checksum-rejected blobs recomputed,
//! priced bounded-backoff retries, typed admission backpressure — without
//! ever changing *which* tokens a completed stream carries, only *when*
//! they arrive. Fault and recovery counts land in [`ServeMetrics`].
//!
//! Each step yields a [`ServeMetrics`] sample pairing the *measured*
//! aggregate KV-throughput, fast-dequant telemetry, and per-device
//! utilization with the *analytic* price of the same step shape — compute
//! from the kernel cost model, communication from the session
//! [`Topology`]'s all-reduce of the step's output partials (a flat
//! topology reproduces the legacy [`InterconnectModel`] ring pricing
//! bitwise; hierarchical fleets price intra-island, cross-island, and
//! broadcast phases), and swap traffic from the topology's host path
//! (PCIe-class by default, drained per island in parallel).

use crate::faults::{FaultInjector, FaultPlan};
use crate::model::SequenceModel;
use crate::scheduler::{Fcfs, QueuedRequest, RunningSeq, SchedulerPolicy};
use crate::workers::{ServeError, WorkUnit, WorkerPool};
use bd_core::{query_transform, ungroup_outputs, BitDecoder, DecodeShape, OnlineSoftmax};
use bd_gpu_sim::{InterconnectModel, Topology};
use bd_kvcache::{
    DeviceId, Partitioning, Placement, PrefixCacheStats, SeqId, ShardedKvStore, StoreError,
    SwappedShardedSeq,
};
use bd_lowbit::fastpath::FastDequantOps;
use bd_obs::{
    device_lane, EventField, EventLog, LifecycleTracker, MetricsRegistry, ObsConfig, SloSummary,
    SpanTracer, LANE_SESSION,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Identifier a [`ServeSession`] assigns to a submitted request.
pub type RequestId = u64;

/// Static configuration of a serve session.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Page pool capacity in pages, **per device**.
    pub total_pages: usize,
    /// Tokens per page.
    pub page_tokens: usize,
    /// Persistent decode workers per device group (0 = run units inline).
    pub workers: usize,
    /// Maximum concurrently decoding sequences.
    pub max_batch: usize,
    /// Simulated devices the KV heads shard across (clamped to the head
    /// count; 1 = the single-device runtime of earlier revisions).
    pub devices: usize,
    /// How KV heads map to devices.
    pub partitioning: Partitioning,
    /// The fleet model pricing communication: the per-step output
    /// all-reduce over the device fabric and preemption swap traffic over
    /// the device↔host path. Defaults to a flat NVLink-class fabric with a
    /// PCIe-class host link — identical pricing to the pre-topology
    /// runtime. A hierarchical topology installed via
    /// [`ServeConfig::with_topology`] also fixes the device count and
    /// supplies per-device placement weights.
    pub topology: Topology,
    /// Cascade shared-prefix attention: group sequences aliasing the same
    /// sealed prefix pages into one multi-query unit per `(group,
    /// kv-head, device)` so the shared pages stream through the dequant
    /// LUTs once per step. Purely an optimization — partials are bitwise
    /// identical either way — and on by default; disable to force the
    /// classic per-sequence fan-out.
    pub shared_attn: bool,
    /// Content-addressed radix prefix cache: fresh admissions adopt
    /// sealed prompt pages whose packed bytes match an earlier
    /// admission's, zero-copy, so independent identical prompts dedup
    /// without an explicit fork — and the adopted pages feed the same
    /// cascade shared-attention grouping a fork would. Hits change only
    /// page accounting and step cost, never a token: streams stay
    /// bitwise identical to a cache-off run. On by default.
    pub prefix_cache: bool,
}

impl ServeConfig {
    /// Builds a single-device config (NVLink-class link defaults apply if
    /// later sharded via [`ServeConfig::with_devices`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `page_tokens` is zero.
    pub fn new(total_pages: usize, page_tokens: usize, workers: usize, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        assert!(page_tokens > 0, "page_tokens must be positive");
        ServeConfig {
            total_pages,
            page_tokens,
            workers,
            max_batch,
            devices: 1,
            partitioning: Partitioning::HeadContiguous,
            topology: Topology::flat(InterconnectModel::nvlink4()),
            shared_attn: true,
            prefix_cache: true,
        }
    }

    /// Shards the session across `devices` simulated devices under
    /// `partitioning`.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn with_devices(mut self, devices: usize, partitioning: Partitioning) -> Self {
        assert!(devices > 0, "at least one device");
        self.devices = devices;
        self.partitioning = partitioning;
        self
    }

    /// Overrides the interconnect link model: the fabric becomes a flat
    /// (single-switch) topology over `link`, keeping the current host
    /// link. Prices identically to the pre-topology `link` field.
    pub fn with_link(mut self, link: InterconnectModel) -> Self {
        let host = self.topology.host_link();
        self.topology = Topology::flat(link).with_host_link(host);
        self
    }

    /// Overrides the host link model pricing swap traffic.
    pub fn with_swap_link(mut self, link: InterconnectModel) -> Self {
        self.topology = self.topology.with_host_link(link);
        self
    }

    /// Installs a resolved fleet [`Topology`]. A hierarchical topology
    /// carries concrete device profiles, so it also sets the session's
    /// device count to the fleet size and switches partitioning to
    /// [`Partitioning::Weighted`]: KV heads are apportioned
    /// proportionally to each device's modeled decode throughput
    /// ([`bd_gpu_sim::GpuArch::decode_weight`]). A flat topology only
    /// replaces the pricing model and leaves device count and
    /// partitioning untouched.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        if let Some(n) = topology.device_count() {
            self.devices = n;
            self.partitioning = Partitioning::Weighted;
        }
        self.topology = topology;
        self
    }

    /// Enables or disables cascade shared-prefix attention grouping
    /// (enabled by default).
    pub fn with_shared_attn(mut self, on: bool) -> Self {
        self.shared_attn = on;
        self
    }

    /// Enables or disables the content-addressed radix prefix cache
    /// (enabled by default). Off forces every fresh admission to prefill
    /// its own pages even when an identical prompt is already resident.
    pub fn with_prefix_cache(mut self, on: bool) -> Self {
        self.prefix_cache = on;
        self
    }
}

/// Why a request was rejected at submission — the typed admission
/// contract: capacity rejections always carry the page shortfall instead
/// of burying the reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The request's prompt + generation budget exceeds a device's whole
    /// pool; it could never be admitted.
    TooLarge {
        /// Pages the request needs (per device).
        needed_pages: usize,
        /// Pages each device pool has in total.
        total_pages: usize,
    },
    /// The pool cannot admit the request now **or later**: a fault-forced
    /// exhaustion holds pages with no scheduled release, so the request's
    /// budget exceeds every page that can ever free up. Backpressure —
    /// the caller should shed or re-route the load.
    Backpressure {
        /// Pages the request needs (per device).
        needed_pages: usize,
        /// Pages that can ever become available under the seizure.
        available_pages: usize,
    },
    /// The request asks for zero generated tokens — there is nothing to
    /// decode.
    EmptyGeneration,
    /// A forked submission named a parent request this session never
    /// issued.
    UnknownParent(RequestId),
}

impl AdmissionError {
    /// Pages the request is short by (0 for non-capacity rejections).
    pub fn shortfall_pages(&self) -> usize {
        match self {
            AdmissionError::TooLarge {
                needed_pages,
                total_pages,
            } => needed_pages.saturating_sub(*total_pages),
            AdmissionError::Backpressure {
                needed_pages,
                available_pages,
            } => needed_pages.saturating_sub(*available_pages),
            AdmissionError::EmptyGeneration | AdmissionError::UnknownParent(_) => 0,
        }
    }
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::TooLarge {
                needed_pages,
                total_pages,
            } => write!(
                f,
                "request needs {needed_pages} pages but each device pool only has {total_pages}"
            ),
            AdmissionError::Backpressure {
                needed_pages,
                available_pages,
            } => write!(
                f,
                "request needs {needed_pages} pages but only {available_pages} can ever \
                 free up under the current page seizure"
            ),
            AdmissionError::EmptyGeneration => write!(f, "request generates zero tokens"),
            AdmissionError::UnknownParent(id) => {
                write!(f, "fork parent request {id} was never submitted")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// One device's share of a decode step (the measured half of the
/// tensor-parallel trajectory).
#[derive(Clone, Copy, Debug)]
pub struct DeviceStepMetrics {
    /// The device.
    pub device: usize,
    /// Work units (sequence × local head) this device executed.
    pub units: usize,
    /// KV tokens this device's units attended.
    pub kv_tokens: usize,
    /// This device's attended tokens relative to the critical-path device
    /// (1.0 = on the critical path; lower = idle tail in a synchronous
    /// step).
    pub utilization: f64,
    /// Page occupancy of this device's pool after the step.
    pub page_occupancy: f64,
}

/// Per-step runtime report.
#[derive(Clone, Debug)]
pub struct ServeMetrics {
    /// Step index within the session.
    pub step: usize,
    /// Sequences decoded this step.
    pub batch: usize,
    /// Requests admitted at the top of this step.
    pub admitted: usize,
    /// Of those, shared-prompt requests admitted by **forking** a live
    /// parent (prompt pages aliased copy-on-write, no re-prefill).
    pub forked: usize,
    /// Requests that finished (and were evicted) this step.
    pub completed: usize,
    /// KV tokens attended across the batch (Σ per-sequence context length).
    pub kv_tokens: usize,
    /// Measured wall-clock of the decode phases — attention fan-out,
    /// partial merge, model advance, KV append — excluding
    /// admission/prefill and the models' query construction, seconds.
    pub wall_s: f64,
    /// Aggregate measured KV-tokens per second for this step.
    pub kv_tokens_per_s: f64,
    /// Fast-dequant instructions streamed by the fused kernels this step.
    pub dequant: FastDequantOps,
    /// Aggregate page-pool utilization after the step (all devices).
    pub pool_utilization: f64,
    /// What the analytic cost model prices this step's shape at on the
    /// session's target GPU, seconds (compute only).
    pub modeled_step_s: f64,
    /// Devices the step sharded across.
    pub devices: usize,
    /// Per-device execution/occupancy breakdown.
    pub per_device: Vec<DeviceStepMetrics>,
    /// Bytes each device moved over the link to all-reduce the step's
    /// output partials (0 for a single device).
    pub allreduce_bytes_per_device: f64,
    /// What the link model prices that all-reduce at, seconds.
    pub modeled_interconnect_s: f64,
    /// Running sequences preempted (swapped out and re-queued) during this
    /// step's admission pass.
    pub preempted: usize,
    /// Previously preempted requests that swapped back in this step.
    pub resumed: usize,
    /// Host bytes the step's swap-outs and swap-ins moved, both
    /// directions combined.
    pub swap_bytes: f64,
    /// What the session's host link prices that swap traffic at, seconds
    /// (one point-to-point transfer per swap event).
    pub modeled_swap_s: f64,
    /// Physical pages allocated across all devices after the step
    /// (post-evict, like the occupancy columns).
    pub physical_pages: usize,
    /// Page-table entries summed over resident sequences across all
    /// devices — what an unshared store would have to allocate.
    pub logical_pages: usize,
    /// Physical pages mapped by more than one sequence (shared prefix
    /// pages); `physical_pages - shared_pages` are singly owned.
    pub shared_pages: usize,
    /// Packed-payload bytes prefix sharing deduplicates right now, summed
    /// over devices.
    pub shared_bytes_saved: usize,
    /// Faults the armed [`FaultPlan`] injected during this step.
    pub faults_injected: usize,
    /// Sequences recovered this step (recompute-from-prompt re-admissions
    /// after device loss or a corrupt swap blob).
    pub recoveries: usize,
    /// Transient-transfer retries priced into this step's interconnect
    /// time.
    pub retries: usize,
    /// `true` when this step ran degraded (a fault fired or a failure was
    /// absorbed). [`ServeSummary::degraded_steps`] counts these over a
    /// run.
    pub degraded: bool,
    /// Requests permanently failed this step (unattributable worker-pool
    /// loss, unserveable model).
    pub requests_failed: usize,
    /// Cascade shared-prefix attention units executed this step — one per
    /// `(prefix-group, kv-head, device)` with ≥ 2 sharers.
    pub shared_attn_groups: usize,
    /// Prefix pages the cascade units did **not** re-walk this step: for
    /// each group unit, `(sharers − 1) ×` the pages covering its shared
    /// block run. Zero when grouping is off or no groups formed.
    pub prefix_pages_walked_saved: usize,
    /// Fresh admissions this step that adopted at least one cached prefix
    /// page from the radix prefix cache (per device: a 2-device hit
    /// counts 2).
    pub prefix_cache_hits: usize,
    /// Fresh admissions this step that found no cached prefix to adopt
    /// (per device, like the hits).
    pub prefix_cache_misses: usize,
    /// Physical pages this step's cache hits adopted instead of
    /// re-writing, summed over devices.
    pub prefix_pages_reused: usize,
    /// Packed-payload bytes those adopted pages already held.
    pub prefix_bytes_reused: usize,
    /// Radix subtrees dropped this step — LRU reclaim or staleness
    /// (recycled-page generation mismatch), summed over devices.
    pub prefix_subtrees_evicted: usize,
}

impl ServeMetrics {
    /// Mean per-device utilization (1.0 = perfectly balanced step).
    pub fn mean_device_utilization(&self) -> f64 {
        if self.per_device.is_empty() {
            return 0.0;
        }
        self.per_device.iter().map(|d| d.utilization).sum::<f64>() / self.per_device.len() as f64
    }
}

/// Aggregate outcome of [`ServeSession::run_to_completion`].
#[derive(Clone, Copy, Debug)]
pub struct ServeSummary {
    /// Decode steps executed.
    pub steps: usize,
    /// Requests completed.
    pub completed: usize,
    /// Total KV tokens attended.
    pub kv_tokens: u64,
    /// Total measured decode-phase wall-clock (see
    /// [`ServeMetrics::wall_s`]), seconds.
    pub wall_s: f64,
    /// Aggregate KV-tokens per second over the run.
    pub kv_tokens_per_s: f64,
    /// Total fast-dequant instructions streamed.
    pub dequant: FastDequantOps,
    /// Devices the session sharded across.
    pub devices: usize,
    /// Mean over steps of the mean per-device utilization.
    pub mean_device_utilization: f64,
    /// Total modeled all-reduce time across the run, seconds.
    pub modeled_interconnect_s: f64,
    /// Total preemptions (swap-outs) across the run.
    pub preemptions: usize,
    /// Total swap-ins (resumed preempted requests) across the run.
    pub resumes: usize,
    /// Total shared-prompt admissions that forked a live parent.
    pub forks: usize,
    /// Highest physical page allocation any step ended on — the run's
    /// true page footprint (what sharing shrinks vs an unshared run).
    pub peak_physical_pages: usize,
    /// Highest per-step packed-byte deduplication sharing achieved.
    pub peak_shared_bytes_saved: usize,
    /// Total host bytes moved by swaps, both directions.
    pub swap_bytes: f64,
    /// Total modeled swap-transfer time across the run, seconds.
    pub modeled_swap_s: f64,
    /// Total faults injected across the run.
    pub faults_injected: usize,
    /// Total recompute-from-prompt recoveries across the run.
    pub recoveries: usize,
    /// Total transient-transfer retries across the run.
    pub retries: usize,
    /// Steps that ran degraded (a fault fired or a failure was absorbed).
    pub degraded_steps: usize,
    /// Requests that failed permanently across the run.
    pub requests_failed: usize,
    /// Total cascade shared-prefix attention units executed across the
    /// run (see [`ServeMetrics::shared_attn_groups`]).
    pub shared_attn_groups: usize,
    /// Total prefix pages the cascade units did not re-walk across the
    /// run (see [`ServeMetrics::prefix_pages_walked_saved`]).
    pub prefix_pages_walked_saved: usize,
    /// Total radix prefix-cache hits across the run (see
    /// [`ServeMetrics::prefix_cache_hits`]).
    pub prefix_cache_hits: usize,
    /// Total radix prefix-cache misses across the run.
    pub prefix_cache_misses: usize,
    /// Total physical pages cache hits adopted instead of re-writing.
    pub prefix_pages_reused: usize,
    /// Total packed bytes those adopted pages already held.
    pub prefix_bytes_reused: usize,
    /// Total radix subtrees dropped (LRU reclaim or staleness).
    pub prefix_subtrees_evicted: usize,
    /// Request-lifecycle SLO rollup (TTFT/TBT/queue-wait/goodput
    /// distributions). Zeroed unless the session was built
    /// [`ServeSession::with_obs`] lifecycle tracking enabled.
    pub slo: SloSummary,
}

struct ActiveSeq {
    id: RequestId,
    seq: SeqId,
    model: Box<dyn SequenceModel>,
    step: usize,
    remaining: usize,
    /// Decode step of (the most recent) admission — what a preempting
    /// policy uses to find the youngest victim and to spare same-step
    /// admits.
    admitted_step: usize,
}

/// KV state of a preempted request waiting to resume.
struct ResumeState {
    blob: SwappedShardedSeq,
    step: usize,
    remaining: usize,
}

/// One queued request: fresh (never ran — admission prefills its prompt,
/// or forks a live parent when `fork_of` names one), or preempted
/// (resumes by swapping its KV blob back in).
struct QueueEntry {
    id: RequestId,
    model: Box<dyn SequenceModel>,
    resume: Option<ResumeState>,
    /// The parent request whose prompt this request shares
    /// ([`ServeSession::submit_forked`]): admission forks the parent's
    /// sequence copy-on-write instead of prefilling, whenever the parent
    /// is still decoding and its fork boundary is reachable.
    fork_of: Option<RequestId>,
}

impl QueueEntry {
    fn fresh(id: RequestId, model: Box<dyn SequenceModel>) -> Self {
        QueueEntry {
            id,
            model,
            resume: None,
            fork_of: None,
        }
    }
}

/// Swap/preemption traffic of one admission pass.
#[derive(Clone, Copy, Debug, Default)]
struct AdmissionStats {
    admitted: usize,
    forked: usize,
    preempted: usize,
    resumed: usize,
    swap_bytes: f64,
    modeled_swap_s: f64,
}

impl AdmissionStats {
    fn absorb(&mut self, other: AdmissionStats) {
        self.admitted += other.admitted;
        self.forked += other.forked;
        self.preempted += other.preempted;
        self.resumed += other.resumed;
        self.swap_bytes += other.swap_bytes;
        self.modeled_swap_s += other.modeled_swap_s;
    }
}

/// Fault/recovery accounting accumulated during one step and drained into
/// its [`ServeMetrics`] sample.
#[derive(Clone, Copy, Debug, Default)]
struct FaultCounters {
    faults_injected: usize,
    recoveries: usize,
    retries: usize,
    requests_failed: usize,
    degraded: bool,
}

/// Pages seized by a pool-exhaustion fault: a hog reservation admission
/// must route around until it releases.
struct PageHog {
    seq: SeqId,
    pages: usize,
    /// Step at which the seizure releases (`None` = when the run ends).
    release: Option<usize>,
}

/// The session's observability bundle: span tracer, structured event
/// log, request-lifecycle tracker, and metrics registry, all gated by an
/// [`ObsConfig`] (everything off by default — the disabled paths cost a
/// branch or a relaxed atomic load).
struct Obs {
    config: ObsConfig,
    tracer: SpanTracer,
    events: EventLog,
    lifecycle: LifecycleTracker,
    registry: MetricsRegistry,
    /// Last observed [`ShardedKvStore::cow_breaks`] — per-step deltas
    /// become `cow_break` events. The store counter resets when the store
    /// is rebuilt after a device loss; the delta logic tolerates that.
    last_cow_breaks: usize,
    /// Last observed [`ShardedKvStore::prefix_cache_stats`] — per-step
    /// deltas land in [`ServeMetrics`] and `prefix_cache` events, with
    /// the same reset tolerance as the CoW counter.
    last_prefix_stats: PrefixCacheStats,
}

impl Obs {
    fn new(config: ObsConfig) -> Self {
        Obs {
            config,
            tracer: if config.spans {
                SpanTracer::with_capacity(config.span_capacity)
            } else {
                SpanTracer::disabled()
            },
            events: if config.events {
                EventLog::with_capacity(config.event_capacity)
            } else {
                EventLog::disabled()
            },
            lifecycle: if config.lifecycle {
                LifecycleTracker::enabled()
            } else {
                LifecycleTracker::disabled()
            },
            registry: MetricsRegistry::new(),
            last_cow_breaks: 0,
            last_prefix_stats: PrefixCacheStats::default(),
        }
    }
}

/// Base backoff charged to the first transient-transfer retry, seconds.
const RETRY_BACKOFF_BASE_S: f64 = 50e-6;
/// Ceiling on any single retry's backoff, seconds.
const RETRY_BACKOFF_MAX_S: f64 = 2e-3;

/// Modeled cost of `failures` failed transfer attempts: each retry
/// re-pays the transfer and waits a bounded exponential backoff
/// (`base · 2^attempt`, capped).
fn retry_penalty_s(transfer_s: f64, failures: u32) -> f64 {
    (0..failures)
        .map(|i| {
            transfer_s
                + (RETRY_BACKOFF_BASE_S * f64::from(1u32 << i.min(10))).min(RETRY_BACKOFF_MAX_S)
        })
        .sum()
}

/// The batched decode runtime session — see the [module docs](self).
pub struct ServeSession {
    decoder: Arc<BitDecoder>,
    store: Arc<ShardedKvStore>,
    pool: WorkerPool,
    /// Trace arrivals not yet due, sorted by `(arrival step, id)` — id
    /// order makes FCFS within a step explicit and stable.
    arrivals: VecDeque<(usize, QueueEntry)>,
    pending: VecDeque<QueueEntry>,
    active: Vec<ActiveSeq>,
    policy: Box<dyn SchedulerPolicy>,
    streams: BTreeMap<RequestId, Vec<u32>>,
    finished: BTreeSet<RequestId>,
    /// Step at which each finished request completed.
    finished_step: BTreeMap<RequestId, usize>,
    metrics: Vec<ServeMetrics>,
    next_id: RequestId,
    config: ServeConfig,
    step_index: usize,
    injector: FaultInjector,
    /// Per-step fault accounting, drained into each metrics sample.
    fault_counters: FaultCounters,
    /// Live pool-exhaustion seizures.
    hogs: Vec<PageHog>,
    /// Requests permanently failed, with the error that killed each.
    failed: BTreeMap<RequestId, ServeError>,
    /// Devices quarantined by loss faults, in order of loss.
    lost_devices: Vec<usize>,
    /// Live per-device placement weights (empty = unweighted fleet).
    /// Pruned in lockstep with device loss so placement rebuilds keep
    /// apportioning heads by the surviving devices' modeled throughput.
    device_weights: Vec<f64>,
    /// Observability instruments (default-off).
    obs: Obs,
}

/// Builds the session's head→device placement: weighted apportionment
/// when the config asks for [`Partitioning::Weighted`] and the topology
/// supplies per-device weights, the classic uniform placements otherwise.
fn build_placement(
    devices: usize,
    partitioning: Partitioning,
    weights: &[f64],
    heads: usize,
) -> Placement {
    if partitioning == Partitioning::Weighted && weights.len() == devices {
        Placement::weighted(weights, heads)
    } else {
        Placement::new(devices, partitioning, heads)
    }
}

impl ServeSession {
    /// Creates a session serving `decoder`'s model/GPU configuration under
    /// `config`'s pool, batch, and device limits.
    pub fn new(decoder: BitDecoder, config: ServeConfig) -> Self {
        let cache_config = decoder.cache_config();
        let heads = decoder.attention().heads_kv;
        let device_weights = config.topology.device_weights();
        let placement =
            build_placement(config.devices, config.partitioning, &device_weights, heads);
        let placed_devices = placement.devices();
        let mut store = ShardedKvStore::new(
            cache_config,
            placement,
            config.total_pages,
            config.page_tokens,
        );
        store.set_prefix_cache(config.prefix_cache);
        ServeSession {
            decoder: Arc::new(decoder),
            store: Arc::new(store),
            pool: WorkerPool::new(config.workers, placed_devices),
            arrivals: VecDeque::new(),
            pending: VecDeque::new(),
            active: Vec::new(),
            policy: Box::new(Fcfs),
            streams: BTreeMap::new(),
            finished: BTreeSet::new(),
            finished_step: BTreeMap::new(),
            metrics: Vec::new(),
            next_id: 0,
            config,
            step_index: 0,
            injector: FaultInjector::default(),
            fault_counters: FaultCounters::default(),
            hogs: Vec::new(),
            failed: BTreeMap::new(),
            lost_devices: Vec::new(),
            device_weights,
            obs: Obs::new(ObsConfig::default()),
        }
    }

    /// Installs an observability configuration: span tracing into a
    /// bounded ring (exportable as a Chrome trace), a structured JSONL
    /// event log, and per-request lifecycle/SLO tracking. The default
    /// session runs with everything off; each instrument costs a branch
    /// (or one relaxed atomic load) per would-be record while disabled.
    pub fn with_obs(mut self, config: ObsConfig) -> Self {
        self.obs = Obs::new(config);
        self
    }

    /// Arms a deterministic [`FaultPlan`]: the session injects the plan's
    /// faults at their scheduled steps and recovers as described in
    /// [`crate::faults`]. Chaos is reproducible — same plan and
    /// submissions, same run.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.injector = FaultInjector::new(plan);
        self
    }

    /// Replaces the admission/preemption policy (default:
    /// [`Fcfs`] — the strict no-preemption behavior of earlier revisions).
    pub fn with_policy(mut self, policy: impl SchedulerPolicy + 'static) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// The active scheduling policy's label.
    pub fn policy_label(&self) -> &'static str {
        self.policy.label()
    }

    /// The session's decoder.
    pub fn decoder(&self) -> &BitDecoder {
        &self.decoder
    }

    /// The sharded KV store (read-only view).
    pub fn store(&self) -> &ShardedKvStore {
        &self.store
    }

    /// Devices the session shards across (after placement clamping).
    pub fn devices(&self) -> usize {
        self.store.devices()
    }

    /// Requests waiting for admission (due arrivals + FCFS queue).
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Requests whose arrival step has not been reached yet.
    pub fn future_arrivals(&self) -> usize {
        self.arrivals.len()
    }

    /// Sequences currently decoding.
    pub fn active(&self) -> usize {
        self.active.len()
    }

    /// The token stream emitted so far for a request.
    pub fn stream(&self, id: RequestId) -> Option<&[u32]> {
        self.streams.get(&id).map(Vec::as_slice)
    }

    /// `true` once a request has generated all its tokens.
    pub fn is_finished(&self, id: RequestId) -> bool {
        self.finished.contains(&id)
    }

    /// The decode step at which a request finished (`None` while it is
    /// still queued or running) — the per-request latency signal the
    /// policy benches aggregate into completion-step percentiles.
    pub fn completion_step(&self, id: RequestId) -> Option<usize> {
        self.finished_step.get(&id).copied()
    }

    /// Per-step metrics recorded so far.
    pub fn metrics(&self) -> &[ServeMetrics] {
        &self.metrics
    }

    /// The error that permanently failed a request, when it did fail.
    pub fn failure(&self, id: RequestId) -> Option<&ServeError> {
        self.failed.get(&id)
    }

    /// `true` when a request failed permanently (its stream will not
    /// complete).
    pub fn is_failed(&self, id: RequestId) -> bool {
        self.failed.contains_key(&id)
    }

    /// Devices quarantined by loss faults so far, in order of loss (each
    /// index refers to the device numbering live at that loss).
    pub fn lost_devices(&self) -> &[usize] {
        &self.lost_devices
    }

    /// The observability configuration installed by
    /// [`ServeSession::with_obs`] (all-off by default).
    pub fn obs_config(&self) -> ObsConfig {
        self.obs.config
    }

    /// The session's span tracer. Disabled unless [`ObsConfig::spans`] was
    /// set; export captured spans with [`SpanTracer::chrome_trace_json`].
    pub fn tracer(&self) -> &SpanTracer {
        &self.obs.tracer
    }

    /// The structured event log (admissions, preemptions, faults,
    /// recoveries, CoW breaks). Disabled unless [`ObsConfig::events`] was
    /// set.
    pub fn event_log(&self) -> &EventLog {
        &self.obs.events
    }

    /// The request-lifecycle tracker behind [`ServeSession::slo`].
    /// Disabled unless [`ObsConfig::lifecycle`] was set.
    pub fn lifecycle(&self) -> &LifecycleTracker {
        &self.obs.lifecycle
    }

    /// The session's metrics registry (counters/gauges/histograms; only
    /// populated while lifecycle tracking is enabled).
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.obs.registry
    }

    /// The request-lifecycle SLO summary so far: TTFT, TBT, queue-wait
    /// and goodput distributions. All-zero unless [`ObsConfig::lifecycle`]
    /// was enabled via [`ServeSession::with_obs`].
    pub fn slo(&self) -> SloSummary {
        self.obs.lifecycle.summary()
    }

    /// Records a request submission into the lifecycle tracker, event log
    /// and registry (no-ops when those instruments are disabled).
    fn observe_submit(&mut self, id: RequestId, step: usize, kind: &'static str) {
        if self.obs.lifecycle.is_enabled() {
            let wall = self.obs.tracer.clock().wall_us();
            self.obs.lifecycle.on_submit(id, step, wall);
            self.obs.registry.inc("serve.submitted", 1);
        }
        if self.obs.events.is_enabled() {
            self.obs
                .events
                .log(step, kind, &[("request", EventField::U64(id))]);
        }
    }

    /// Records an admission (`kind` distinguishes fresh prefill, CoW fork
    /// and swap-in resume) into the lifecycle tracker and event log.
    fn observe_admit(&mut self, id: RequestId, kind: &'static str) {
        if self.obs.lifecycle.is_enabled() {
            self.obs.lifecycle.on_admit(id, self.step_index);
            let counter = if kind == "swap_in" {
                "serve.resumes"
            } else {
                "serve.admitted"
            };
            self.obs.registry.inc(counter, 1);
        }
        if self.obs.events.is_enabled() {
            self.obs
                .events
                .log(self.step_index, kind, &[("request", EventField::U64(id))]);
        }
    }

    /// Records a preemption episode.
    fn observe_preempt(&mut self, id: RequestId) {
        if self.obs.lifecycle.is_enabled() {
            self.obs.lifecycle.on_preempt(id, self.step_index);
            self.obs.registry.inc("serve.preemptions", 1);
        }
        if self.obs.events.is_enabled() {
            self.obs.events.log(
                self.step_index,
                "preempt",
                &[("request", EventField::U64(id))],
            );
        }
    }

    /// Records a fault-recovery episode attributed to one request.
    fn observe_recovery(&mut self, id: RequestId) {
        if self.obs.lifecycle.is_enabled() {
            self.obs.lifecycle.on_recovery(id, self.step_index);
            self.obs.registry.inc("serve.recoveries", 1);
        }
        if self.obs.events.is_enabled() {
            self.obs.events.log(
                self.step_index,
                "recovery",
                &[("request", EventField::U64(id))],
            );
        }
    }

    /// Records a terminal request failure.
    fn observe_failed(&mut self, id: RequestId) {
        if self.obs.lifecycle.is_enabled() {
            self.obs.lifecycle.on_failed(id, self.step_index);
            self.obs.registry.inc("serve.requests_failed", 1);
        }
        if self.obs.events.is_enabled() {
            self.obs.events.log(
                self.step_index,
                "request_failed",
                &[("request", EventField::U64(id))],
            );
        }
    }

    /// Records an injected/absorbed fault into the registry and event log
    /// (`value` is the fault-specific detail: device index, pages, retry
    /// count).
    fn observe_fault(&mut self, kind: &'static str, value: u64) {
        if self.obs.lifecycle.is_enabled() {
            self.obs.registry.inc("serve.faults", 1);
        }
        if self.obs.events.is_enabled() {
            self.obs
                .events
                .log(self.step_index, kind, &[("value", EventField::U64(value))]);
        }
    }

    /// Records a request completion (goodput sample + event).
    fn observe_complete(&mut self, id: RequestId) {
        if self.obs.lifecycle.is_enabled() {
            let wall = self.obs.tracer.clock().wall_us();
            self.obs.lifecycle.on_complete(id, self.step_index, wall);
            self.obs.registry.inc("serve.completions", 1);
        }
        if self.obs.events.is_enabled() {
            self.obs.events.log(
                self.step_index,
                "complete",
                &[("request", EventField::U64(id))],
            );
        }
    }

    fn validate(&self, model: &dyn SequenceModel) -> Result<(), AdmissionError> {
        if model.gen_tokens() == 0 {
            return Err(AdmissionError::EmptyGeneration);
        }
        let total_tokens = model.prompt_tokens() + model.gen_tokens();
        let needed_pages = total_tokens.div_ceil(self.config.page_tokens);
        if needed_pages > self.config.total_pages {
            return Err(AdmissionError::TooLarge {
                needed_pages,
                total_pages: self.config.total_pages,
            });
        }
        // Pages a permanent fault seizure holds can never free up: a
        // budget beyond the remainder is backpressure, not patience.
        let available_pages = self.config.total_pages - self.seized_forever_pages();
        if needed_pages > available_pages {
            return Err(AdmissionError::Backpressure {
                needed_pages,
                available_pages,
            });
        }
        Ok(())
    }

    /// Queues a request. Admission happens under the session's
    /// [`SchedulerPolicy`] (FCFS by default) at the next step with enough
    /// free pages; the assigned [`RequestId`] is live immediately (its
    /// [`ServeSession::stream`] starts empty).
    ///
    /// # Errors
    ///
    /// Rejects requests whose per-device page budget exceeds a whole
    /// device pool, and requests with nothing to generate.
    pub fn submit(&mut self, model: Box<dyn SequenceModel>) -> Result<RequestId, AdmissionError> {
        self.validate(model.as_ref())?;
        let id = self.next_id;
        self.next_id += 1;
        self.streams.insert(id, Vec::new());
        self.pending.push_back(QueueEntry::fresh(id, model));
        self.observe_submit(id, self.step_index, "submit");
        Ok(id)
    }

    /// Queues a request that **shares its prompt** with a previously
    /// submitted `parent`: at admission, if the parent is still decoding
    /// and its fork boundary is reachable, the child is admitted by
    /// [`ShardedKvStore::fork`] — its prompt pages alias the parent's
    /// copy-on-write (no re-prefill, no duplicate bytes) and its page
    /// preflight counts only the private tail. When the parent has
    /// finished, been preempted, or decoded past the boundary, the child
    /// falls back to an ordinary prefill admission; either way its stream
    /// is bitwise identical to an unshared run.
    ///
    /// **Caller contract:** `model.prompt()` must produce exactly the
    /// parent's prompt (same tokens, same length) — the fork aliases the
    /// parent's packed prompt rather than reading the child's.
    ///
    /// # Errors
    ///
    /// Rejects like [`ServeSession::submit`], plus
    /// [`AdmissionError::UnknownParent`] when `parent` was never issued.
    ///
    /// # Examples
    ///
    /// ```
    /// use bd_core::{AttentionConfig, BitDecoder};
    /// use bd_gpu_sim::GpuArch;
    /// use bd_kvcache::QuantScheme;
    /// use bd_serve::{ServeConfig, ServeSession, SynthSequence};
    ///
    /// let attn = AttentionConfig::gqa(4, 2, 16);
    /// let dec = BitDecoder::builder(GpuArch::rtx4090())
    ///     .attention(attn)
    ///     .scheme(QuantScheme::kc4())
    ///     .paged(true)
    ///     .build();
    /// let mut session = ServeSession::new(dec, ServeConfig::new(64, 32, 0, 8));
    /// // Parent and child share a 128-token prompt (prompt seed 7) but
    /// // generate different continuations (gen seeds 7 vs 99).
    /// let parent = session
    ///     .submit(Box::new(SynthSequence::new(attn, 7, 128, 4)))
    ///     .unwrap();
    /// let child = session
    ///     .submit_forked(parent, Box::new(SynthSequence::forked(attn, 7, 99, 128, 4)))
    ///     .unwrap();
    /// let summary = session.run_to_completion();
    /// assert_eq!(summary.completed, 2);
    /// assert_eq!(summary.forks, 1, "the child admitted by forking");
    /// assert_ne!(session.stream(parent), session.stream(child));
    /// ```
    pub fn submit_forked(
        &mut self,
        parent: RequestId,
        model: Box<dyn SequenceModel>,
    ) -> Result<RequestId, AdmissionError> {
        self.submit_forked_at(self.step_index, parent, model)
    }

    /// [`ServeSession::submit_forked`] with a trace arrival step, exactly
    /// as [`ServeSession::submit_at`] extends [`ServeSession::submit`].
    ///
    /// # Errors
    ///
    /// Same rejection rules as [`ServeSession::submit_forked`].
    pub fn submit_forked_at(
        &mut self,
        arrival_step: usize,
        parent: RequestId,
        model: Box<dyn SequenceModel>,
    ) -> Result<RequestId, AdmissionError> {
        if parent >= self.next_id {
            return Err(AdmissionError::UnknownParent(parent));
        }
        self.validate(model.as_ref())?;
        let id = self.next_id;
        self.next_id += 1;
        self.streams.insert(id, Vec::new());
        let entry = QueueEntry {
            id,
            model,
            resume: None,
            fork_of: Some(parent),
        };
        self.queue_at(arrival_step, entry);
        self.observe_submit(id, arrival_step.max(self.step_index), "submit_forked");
        Ok(id)
    }

    /// Queues a request that **arrives** at decode step `arrival_step`
    /// (trace-driven admission): it stays invisible to the scheduler until
    /// that step, then joins the FCFS queue and is admitted when pages free
    /// up — sequences join mid-run instead of draining a pre-filled queue.
    /// An idle session fast-forwards to the next arrival rather than
    /// spinning empty steps.
    ///
    /// Arrivals at or before the current step behave exactly like
    /// [`ServeSession::submit`].
    ///
    /// # Errors
    ///
    /// Same rejection rules as [`ServeSession::submit`].
    pub fn submit_at(
        &mut self,
        arrival_step: usize,
        model: Box<dyn SequenceModel>,
    ) -> Result<RequestId, AdmissionError> {
        self.validate(model.as_ref())?;
        let id = self.next_id;
        self.next_id += 1;
        self.streams.insert(id, Vec::new());
        self.queue_at(arrival_step, QueueEntry::fresh(id, model));
        self.observe_submit(id, arrival_step.max(self.step_index), "submit_at");
        Ok(id)
    }

    /// Queues an entry either immediately or at its future arrival step.
    fn queue_at(&mut self, arrival_step: usize, entry: QueueEntry) {
        if arrival_step <= self.step_index {
            self.pending.push_back(entry);
        } else {
            // Sorted insert on the full `(arrival step, id)` key: two
            // requests due at the same step keep **submission** order (ids
            // are handed out in submission order), so FCFS ties are stable
            // by construction rather than by insert-position accident.
            let pos = self
                .arrivals
                .partition_point(|(s, e)| (*s, e.id) <= (arrival_step, entry.id));
            self.arrivals.insert(pos, (arrival_step, entry));
        }
    }

    /// Regains exclusive store access after a parallel phase. Workers drop
    /// their `Arc` clones before reporting results, so by the time every
    /// result is collected the count is (momentarily) back to one; the spin
    /// only covers the tail of that hand-back.
    fn store_mut(&mut self) -> &mut ShardedKvStore {
        while Arc::strong_count(&self.store) > 1 {
            std::thread::yield_now();
        }
        let Some(store) = Arc::get_mut(&mut self.store) else {
            unreachable!("no outstanding store refs");
        };
        store
    }

    /// Moves arrivals due at the current step into the pending queue, then
    /// admits under the session's [`SchedulerPolicy`] while pages (on
    /// every device) and the batch cap allow — preempting running
    /// sequences when the policy names victims. Returns the pass's
    /// admission/swap accounting.
    fn admit_due(&mut self) -> AdmissionStats {
        while let Some((step, _)) = self.arrivals.front() {
            if *step > self.step_index {
                break;
            }
            let Some((_, entry)) = self.arrivals.pop_front() else {
                unreachable!("checked front");
            };
            self.pending.push_back(entry);
        }
        let mut stats = AdmissionStats::default();
        // Requests that stayed blocked this pass: excluded from further
        // `pick_next` views (a backfilling policy moves on to others; a
        // strict one stops at the first of them anyway).
        let mut blocked: BTreeSet<RequestId> = BTreeSet::new();
        while self.active.len() < self.config.max_batch {
            let eligible: Vec<(usize, QueuedRequest)> = self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, e)| !blocked.contains(&e.id))
                .map(|(i, e)| (i, self.entry_view(e)))
                .collect();
            let views: Vec<QueuedRequest> = eligible.iter().map(|(_, v)| *v).collect();
            let Some(pick) = self.policy.pick_next(&views) else {
                break;
            };
            let idx = eligible[pick].0;
            let Some(mut entry) = self.pending.remove(idx) else {
                unreachable!("policy picked a live queue index");
            };
            // Retry the same candidate after each preemption; when the
            // policy names no (further) victim, put it back where it was —
            // it keeps its queue position for the next pages that free up
            // — and either stop the pass (strict policies) or move on to
            // later queued requests (backfilling ones). Victims pushed to
            // the queue front during the retries shift positions, so the
            // re-insert offsets by their count to land the candidate
            // behind them, in its original slot.
            let mut victims_pushed = 0usize;
            loop {
                match self.try_admit(entry, &mut stats) {
                    Ok(()) => break,
                    Err(back) => {
                        entry = back;
                        let candidate = self.entry_view(&entry);
                        // `held_pages` = what preempting the sequence
                        // actually frees: only exclusively-held pages —
                        // a shared prefix page survives its sharers. The
                        // sequence refcount ignores prefix-cache pins: a
                        // cache-pinned page whose only sequence is the
                        // victim becomes reclaimable on swap-out, which the
                        // free-page budget already counts as free.
                        let pool = self.store.device(DeviceId(0)).pool();
                        let running: Vec<RunningSeq> = self
                            .active
                            .iter()
                            .map(|a| RunningSeq {
                                id: a.id,
                                admitted_step: a.admitted_step,
                                remaining_tokens: a.remaining,
                                held_pages: pool.table(a.seq).map_or(0, |t| {
                                    t.iter().filter(|&&p| pool.seq_refcount(p) == 1).count()
                                }),
                            })
                            .collect();
                        // Futility guard: even preempting every victim the
                        // policy may name (same-step admits are off limits
                        // by the trait contract) cannot free enough pages
                        // — don't swap anyone out for nothing. A page frees
                        // once its *last* reference drops, so count pages
                        // whose every reference belongs to an eligible
                        // victim — prefix pages shared only among victims
                        // free when the last sharer swaps out (summing
                        // per-victim exclusive pages would miss them).
                        let free = self.store.device(DeviceId(0)).free_pages();
                        let mut victim_refs: BTreeMap<bd_kvcache::PageId, u32> = BTreeMap::new();
                        for a in self
                            .active
                            .iter()
                            .filter(|a| a.admitted_step < self.step_index)
                        {
                            for &p in pool.table(a.seq).unwrap_or(&[]) {
                                *victim_refs.entry(p).or_insert(0) += 1;
                            }
                        }
                        let preemptible = victim_refs
                            .iter()
                            .filter(|(&p, &c)| c == pool.seq_refcount(p))
                            .count();
                        let victim = if candidate.needed_pages > free + preemptible {
                            None
                        } else {
                            self.policy
                                .pick_victim(&candidate, &running, self.step_index)
                        };
                        match victim {
                            Some(v) => {
                                self.preempt(v, &mut stats);
                                victims_pushed += 1;
                            }
                            None => {
                                blocked.insert(entry.id);
                                self.pending
                                    .insert((idx + victims_pushed).min(self.pending.len()), entry);
                                if self
                                    .policy
                                    .continue_after_block(&candidate, self.step_index)
                                {
                                    break;
                                }
                                return stats;
                            }
                        }
                    }
                }
            }
        }
        stats
    }

    /// The policy-facing view of one queued entry, with `needed_pages`
    /// computed against the store's **current** residency: a preempted
    /// request counts only the pages its still-resident shared prefix
    /// cannot re-supply, and a shared-prompt fork counts only its private
    /// tail — so the preemption and futility math sees the true admission
    /// cost, not the unshared worst case.
    fn entry_view(&self, entry: &QueueEntry) -> QueuedRequest {
        let prompt_tokens = entry.model.prompt_tokens();
        match &entry.resume {
            Some(r) => QueuedRequest {
                id: entry.id,
                prompt_tokens,
                remaining_tokens: r.remaining,
                needed_pages: self.store.swap_in_new_pages(&r.blob),
                resumable: true,
            },
            None => {
                let total = prompt_tokens + entry.model.gen_tokens();
                let needed_pages = self
                    .forkable_parent(entry)
                    .and_then(|seq| self.store.fork_new_pages(seq, prompt_tokens, total))
                    .unwrap_or_else(|| total.div_ceil(self.config.page_tokens));
                QueuedRequest {
                    id: entry.id,
                    prompt_tokens,
                    remaining_tokens: entry.model.gen_tokens(),
                    needed_pages,
                    resumable: false,
                }
            }
        }
    }

    /// The live parent sequence `entry` can fork off **right now**: the
    /// entry was submitted as a fork, its parent is actively decoding, and
    /// the shared-prompt boundary is still within reach of the parent's
    /// residual window.
    fn forkable_parent(&self, entry: &QueueEntry) -> Option<SeqId> {
        let pid = entry.fork_of?;
        let parent = self.active.iter().find(|a| a.id == pid)?;
        self.store
            .can_fork(parent.seq, entry.model.prompt_tokens())
            .then_some(parent.seq)
    }

    /// Tries to admit one queued request — fresh requests reserve their
    /// full page budget and prefill (or fork their live parent
    /// copy-on-write when submitted with a shared prompt); preempted ones
    /// swap their KV blob back in bitwise. On page exhaustion the entry is
    /// handed back unchanged.
    fn try_admit(
        &mut self,
        entry: QueueEntry,
        stats: &mut AdmissionStats,
    ) -> Result<(), QueueEntry> {
        let now = self.step_index;
        let fork_seq = self.forkable_parent(&entry);
        let QueueEntry {
            id,
            mut model,
            resume,
            fork_of,
        } = entry;
        match resume {
            Some(res) => {
                // Deterministic swap-corruption fault: damage one payload
                // bit before the restore so the checksum path must catch
                // it (top bits of the scheduled bit select the device
                // share).
                let tampered = match self.injector.take_swap_corruption(now) {
                    Some(bit) => {
                        self.fault_counters.faults_injected += 1;
                        self.fault_counters.degraded = true;
                        let mut damaged = res.blob.clone();
                        damaged.flip_bit((bit >> 48) as usize, bit);
                        Some(damaged)
                    }
                    None => None,
                };
                let restored = match &tampered {
                    Some(damaged) => self.store_mut().swap_in(damaged),
                    None => self.store_mut().swap_in(&res.blob),
                };
                match restored {
                    Ok(seq) => {
                        let bytes = res.blob.host_bytes() as f64;
                        let per_dev = res.blob.host_bytes_per_device();
                        stats.resumed += 1;
                        stats.swap_bytes += bytes;
                        stats.modeled_swap_s +=
                            self.config.topology.swap_transfer_s(bytes, &per_dev);
                        // Ground truth for aging policies: silence is not a
                        // resume (batch-full steps never consult them).
                        self.policy.on_resumed(id);
                        self.active.push(ActiveSeq {
                            id,
                            seq,
                            model,
                            step: res.step,
                            remaining: res.remaining,
                            admitted_step: now,
                        });
                        self.observe_admit(id, "swap_in");
                        Ok(())
                    }
                    // Page exhaustion: hand the entry back unchanged and
                    // try again when capacity frees up.
                    Err(StoreError::Oom(_)) => Err(QueueEntry {
                        id,
                        model,
                        resume: Some(res),
                        fork_of,
                    }),
                    // The blob failed its integrity check (or was cut for
                    // a pre-rebuild device count): its KV is untrusted and
                    // unrestorable. Recover by recomputing the request
                    // from its prompt — determinism re-derives every
                    // already-streamed token bitwise, so the delivered
                    // stream only ever changes in *when*, never *what*.
                    Err(_corrupt) => {
                        self.fault_counters.recoveries += 1;
                        self.fault_counters.degraded = true;
                        self.observe_recovery(id);
                        model.reset();
                        self.try_admit(
                            QueueEntry {
                                id,
                                model,
                                resume: None,
                                fork_of,
                            },
                            stats,
                        )
                    }
                }
            }
            None => {
                let reserve = model.prompt_tokens() + model.gen_tokens();
                // Shared-prompt admission: fork the live parent instead of
                // re-prefilling — the child's prompt pages alias the
                // parent's copy-on-write, so only the private tail is
                // reserved (and no prompt quantization re-runs). When the
                // parent is gone or its boundary was quantized away, take
                // the ordinary full-prefill path instead.
                let admitted = if let Some(pseq) = fork_seq {
                    let seq = self.store_mut().fork(pseq, model.prompt_tokens(), reserve);
                    stats.forked += usize::from(seq.is_ok());
                    seq.ok()
                } else {
                    // Cheap page preflight before materializing the prompt:
                    // the admission charge is `reserve` pages against every
                    // device's free budget whether or not the prefix cache
                    // would hit (hits change what the admission *costs*,
                    // never whether it fits), so a doomed attempt can skip
                    // prompt construction and quantization entirely.
                    let need = reserve.div_ceil(self.config.page_tokens);
                    let fits = (0..self.store.devices())
                        .all(|d| need <= self.store.device_stats(DeviceId(d as u32)).free_pages);
                    if !fits {
                        None
                    } else {
                        let codec = self.decoder.codec();
                        let (pk, pv) = model.prompt();
                        match self
                            .store_mut()
                            .admit_prefill_cached(&pk, &pv, reserve, &codec)
                        {
                            Ok((seq, _admit)) => Some(seq),
                            Err(StoreError::Oom(_)) => None,
                            // A model whose prompt disagrees with its
                            // declared shape cannot be served: the cached
                            // admission rejects it atomically (nothing was
                            // reserved anywhere) — fail the request instead
                            // of poisoning the session.
                            Err(e) => {
                                self.fault_counters.requests_failed += 1;
                                self.fault_counters.degraded = true;
                                self.failed.insert(id, ServeError::Store(e));
                                self.observe_failed(id);
                                return Ok(());
                            }
                        }
                    }
                };
                match admitted {
                    Some(seq) => {
                        let remaining = model.gen_tokens();
                        stats.admitted += 1;
                        self.active.push(ActiveSeq {
                            id,
                            seq,
                            model,
                            step: 0,
                            remaining,
                            admitted_step: now,
                        });
                        let kind = if fork_seq.is_some() {
                            "fork_admit"
                        } else {
                            "admit"
                        };
                        self.observe_admit(id, kind);
                        Ok(())
                    }
                    None => Err(QueueEntry {
                        id,
                        model,
                        resume: None,
                        fork_of,
                    }),
                }
            }
        }
    }

    /// Swaps out the running sequence at `index` (admission order) and
    /// re-queues it at the **front** of the pending queue with its model
    /// state and generation position intact; the swap-in path restores its
    /// KV bitwise, so the preempted stream stays identical to an
    /// uninterrupted one.
    fn preempt(&mut self, index: usize, stats: &mut AdmissionStats) {
        let victim = self.active.remove(index);
        let victim_id = victim.id;
        let blob = match self.store_mut().swap_out(victim.seq) {
            Ok(b) => b,
            Err(_) => unreachable!("active sequence is resident"),
        };
        let bytes = blob.host_bytes() as f64;
        let per_dev = blob.host_bytes_per_device();
        stats.preempted += 1;
        stats.swap_bytes += bytes;
        stats.modeled_swap_s += self.config.topology.swap_transfer_s(bytes, &per_dev);
        self.pending.push_front(QueueEntry {
            id: victim.id,
            model: victim.model,
            resume: Some(ResumeState {
                blob,
                step: victim.step,
                remaining: victim.remaining,
            }),
            // Resume restores the KV blob (re-sharing what it can); the
            // fork lineage no longer matters.
            fork_of: None,
        });
        self.observe_preempt(victim_id);
    }

    /// Runs one decode step: admit (arrivals + FCFS queue) → batch
    /// attention over the device-pinned worker groups → merge per-head
    /// partials (the simulated all-reduce) → advance models / append KV →
    /// retire finished sequences.
    ///
    /// Returns the step's metrics, or `None` when no work remains (the
    /// session is drained). If the session is idle but future arrivals
    /// exist, it fast-forwards to the next arrival step.
    pub fn step(&mut self) -> Option<ServeMetrics> {
        let step_span = self.obs.tracer.begin();
        let adm_span = self.obs.tracer.begin();
        // Fault window: expire timed page seizures, then fire every due
        // fault before admission sees the pools.
        self.release_expired_hogs();
        while let Some(dead) = self.injector.take_device_loss(self.step_index) {
            self.fault_counters.faults_injected += 1;
            self.fault_counters.degraded = true;
            self.observe_fault("fault_device_loss", dead as u64);
            self.lose_device(dead);
        }
        while let Some((pages, hold)) = self.injector.take_pool_exhaustion(self.step_index) {
            self.fault_counters.faults_injected += 1;
            self.fault_counters.degraded = true;
            self.observe_fault("fault_pool_exhaustion", pages as u64);
            let release = hold.map(|h| self.step_index + h.max(1));
            self.seize_pages(pages, release);
        }
        let mut adm = self.admit_due();
        while self.active.is_empty() {
            // Idle with queued work under a timed page seizure: jump to
            // the earliest release (unless an arrival lands first) and
            // retry admission.
            if let Some(release) = self.hogs.iter().filter_map(|h| h.release).min() {
                if !self.pending.is_empty() && self.arrivals.front().is_none_or(|e| e.0 >= release)
                {
                    self.step_index = self.step_index.max(release);
                    self.release_expired_hogs();
                    adm.absorb(self.admit_due());
                    continue;
                }
            }
            // Idle: jump to the next trace arrival (or drain).
            let next = self.arrivals.front()?.0;
            self.step_index = next.max(self.step_index);
            adm.absorb(self.admit_due());
        }
        self.obs.tracer.end(adm_span, "admission", LANE_SESSION);
        let fan_span = self.obs.tracer.begin();
        let attn = *self.decoder.attention();
        let heads_kv = attn.heads_kv;
        let placement = self.store.placement().clone();
        let devices = placement.devices();

        // Batch formation. Classic shape: one unit per (sequence, kv-head,
        // owning device). With cascade grouping on, sequences whose page
        // tables alias the same sealed prefix pages on a device collapse
        // into ONE multi-query unit per (prefix-group, kv-head, device) —
        // the shared pages stream through the dequant LUTs once. The
        // partition is recomputed from the page tables every step, so
        // groups dissolve and reform automatically across fork, CoW
        // breaks, preemption, swap, and device-loss rebuilds.
        let mut kv_tokens = 0usize;
        let mut max_len = 0usize;
        let mut max_res = 0usize;
        let mut lens = Vec::with_capacity(self.active.len());
        let mut qs: Vec<Vec<Vec<Vec<f32>>>> = Vec::with_capacity(self.active.len());
        for a in &mut self.active {
            let Some(len) = self.store.seq_len(a.seq) else {
                unreachable!("active sequence is resident");
            };
            kv_tokens += len;
            max_len = max_len.max(len);
            max_res = max_res.max(self.store.residual_len(a.seq));
            lens.push(len);
            qs.push(query_transform(&a.model.query(a.step), &attn));
        }
        let batch = self.active.len();
        let nr = self.store.config().residual_block();
        let pt = self.store.page_tokens();

        // Per-device partition of the active batch into cascade groups
        // (members in active order, identified by active index) and
        // singletons. Bucketing by root physical page is cheap and exact:
        // sequences sharing any sealed prefix share its first page.
        let mut partitions: Vec<Vec<(Vec<usize>, usize)>> = Vec::with_capacity(devices);
        for d in 0..devices {
            let mut items: Vec<(Vec<usize>, usize)> = Vec::new();
            let mut grouped: BTreeMap<usize, (Vec<usize>, usize)> = BTreeMap::new();
            if self.config.shared_attn && batch > 1 {
                let dev = self.store.device(DeviceId(d as u32));
                let mut buckets: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
                for (i, a) in self.active.iter().enumerate() {
                    if let Some(root) = dev.pool().table(a.seq).and_then(|t| t.first()) {
                        buckets.entry(root.0).or_default().push(i);
                    }
                }
                for (_, members) in buckets {
                    if members.len() < 2 {
                        continue;
                    }
                    let seqs: Vec<SeqId> = members.iter().map(|&i| self.active[i].seq).collect();
                    let run = dev.shared_block_run(&seqs);
                    if run > 0 {
                        grouped.insert(members[0], (members, run));
                    }
                }
            }
            let in_group: BTreeSet<usize> = grouped
                .values()
                .flat_map(|(members, _)| members.iter().copied())
                .collect();
            for i in 0..batch {
                if let Some(item) = grouped.remove(&i) {
                    items.push(item);
                } else if !in_group.contains(&i) {
                    items.push((vec![i], 0));
                }
            }
            partitions.push(items);
        }

        // Emit units head-major; `slots[i][kv]` records where sequence
        // `i`'s head-`kv` partial lands: `(unit index, sharer index)`.
        let mut units = Vec::with_capacity(batch * heads_kv);
        let mut slots: Vec<Vec<(usize, usize)>> = vec![vec![(0, 0); heads_kv]; batch];
        let mut dev_units = vec![0usize; devices];
        let mut dev_tokens = vec![0usize; devices];
        let mut shared_attn_groups = 0usize;
        let mut shared_attn_sharers = 0usize;
        let mut prefix_pages_walked_saved = 0usize;
        for kv in 0..heads_kv {
            let device = placement.device_of(kv);
            for (members, run) in &partitions[device.0 as usize] {
                let unit = units.len();
                dev_units[device.0 as usize] += 1;
                if members.len() > 1 {
                    // Unique tokens this unit walks: the shared run once,
                    // plus each sharer's private remainder.
                    let prefix_tokens = run * nr;
                    let unique: usize = prefix_tokens
                        + members
                            .iter()
                            .map(|&i| lens[i] - prefix_tokens)
                            .sum::<usize>();
                    dev_tokens[device.0 as usize] += unique;
                    shared_attn_groups += 1;
                    shared_attn_sharers += members.len();
                    prefix_pages_walked_saved += (members.len() - 1) * prefix_tokens.div_ceil(pt);
                } else {
                    dev_tokens[device.0 as usize] += lens[members[0]];
                }
                let sharers = members
                    .iter()
                    .enumerate()
                    .map(|(sharer, &i)| {
                        slots[i][kv] = (unit, sharer);
                        crate::workers::UnitSharer {
                            seq: self.active[i].seq,
                            q_block: std::mem::take(&mut qs[i][kv]),
                        }
                    })
                    .collect();
                units.push(WorkUnit {
                    unit,
                    head: kv,
                    device,
                    prefix_blocks: *run,
                    sharers,
                });
            }
        }
        // Time only the decode work (attention fan-out, partial merge,
        // model advance, append) — not admission/prefill or the user
        // model's query construction above, so kv_tokens_per_s reports the
        // runtime's own throughput.
        let t0 = Instant::now();
        let run = self
            .pool
            .run_step(units, &self.store, &self.decoder, &self.obs.tracer);
        let mut results = match run {
            Ok(r) => r,
            // Worker-pool failure before any token was appended: the step
            // simply did not happen for this batch. Fail the offending
            // sequence when it is identifiable (its pages free up for the
            // survivors); an unattributable failure fails the whole
            // in-flight batch. Either way the session keeps serving —
            // survivors re-run the same generation step next time and, by
            // determinism, emit the same tokens.
            Err(e) => {
                self.obs.tracer.end(fan_span, "fan_out", LANE_SESSION);
                self.fault_counters.degraded = true;
                self.observe_fault("worker_failure", 0);
                match e {
                    ServeError::Misrouted { seq, .. } => self.fail_active_seq(seq, e),
                    _ => {
                        let batch_ids: Vec<SeqId> = self.active.iter().map(|a| a.seq).collect();
                        for seq in batch_ids {
                            self.fail_active_seq(seq, e.clone());
                        }
                    }
                }
                let m = self.record_degraded_step(adm, batch, kv_tokens, devices);
                self.obs.tracer.end(step_span, "step", LANE_SESSION);
                return Some(m);
            }
        };
        self.obs.tracer.end(fan_span, "fan_out", LANE_SESSION);
        let merge_span = self.obs.tracer.begin();

        // Advance every sequence and append its new KV token.
        let mut dequant = FastDequantOps::default();
        for r in &results {
            dequant += r.ops;
        }
        let codec = self.decoder.codec();
        let mut appends = Vec::with_capacity(batch);
        // One wall read covers every token this step emits: lifecycle
        // resolution is per step anyway, and it keeps the loop cheap.
        let token_wall_us = if self.obs.lifecycle.is_enabled() {
            self.obs.tracer.clock().wall_us()
        } else {
            0.0
        };
        for (i, a) in self.active.iter_mut().enumerate() {
            // The simulated all-reduce: each head's device partials merge
            // through the exact log-sum-exp combine, then normalize once.
            // Under head placement every head has exactly one partial, so
            // the merge is the identity and the output is bitwise equal to
            // the single-device path. The slot map routes each head to its
            // unit — a cascade unit carries one partial per sharer.
            let blocks: Vec<Vec<Vec<f32>>> = (0..heads_kv)
                .map(|kv| {
                    let (unit, sharer) = slots[i][kv];
                    let partial = std::mem::replace(
                        &mut results[unit].partials[sharer],
                        OnlineSoftmax::new(0, 0),
                    );
                    Self::reduce_head_partials(std::iter::once(partial))
                })
                .collect();
            let output = ungroup_outputs(&blocks, &attn);
            let step_kv = a.model.advance(a.step, &output);
            let stream = self.streams.entry(a.id).or_default();
            if a.step < stream.len() {
                // Recompute replay of an already-streamed step:
                // determinism guarantees the same token — a delivered
                // stream never changes content, only timing.
                debug_assert_eq!(stream[a.step], step_kv.token, "recompute replay diverged");
                stream[a.step] = step_kv.token;
            } else {
                stream.push(step_kv.token);
                // Genuinely-new token (not a recovery replay): the
                // lifecycle tracker's replay guard backstops this, but the
                // branch keeps the accounting intent visible here.
                if self.obs.lifecycle.is_enabled() {
                    self.obs
                        .lifecycle
                        .on_token(a.id, self.step_index, token_wall_us);
                    self.obs.registry.inc("serve.tokens", 1);
                }
            }
            appends.push((a.seq, step_kv));
            a.step += 1;
            a.remaining -= 1;
        }
        self.obs.tracer.end(merge_span, "merge", LANE_SESSION);
        let append_span = self.obs.tracer.begin();
        let mut append_failures: Vec<(SeqId, ServeError)> = Vec::new();
        {
            let store = self.store_mut();
            for (seq, step_kv) in &appends {
                if let Err(e) = store.append_step(*seq, &step_kv.k, &step_kv.v, &codec) {
                    append_failures.push((*seq, ServeError::Store(e)));
                }
            }
        }
        for (seq, e) in append_failures {
            // The admission reservation makes this unreachable in a
            // healthy run; a failing append means the sequence cannot
            // continue — fail it instead of poisoning the batch.
            self.fault_counters.degraded = true;
            self.fail_active_seq(seq, e);
        }
        self.obs.tracer.end(append_span, "append", LANE_SESSION);
        let wall_s = t0.elapsed().as_secs_f64();

        // Retire finished sequences: seal, evict, recycle pages.
        let done: Vec<(RequestId, SeqId)> = self
            .active
            .iter()
            .filter(|a| a.remaining == 0)
            .map(|a| (a.id, a.seq))
            .collect();
        {
            let store = self.store_mut();
            for (_, seq) in &done {
                // An active sequence is resident by construction; `seal`
                // only errors on unknown ids, which `evict` tolerates too.
                let _ = store.seal(*seq);
                store.evict(*seq);
            }
        }
        for (id, _) in &done {
            self.finished.insert(*id);
            self.finished_step.insert(*id, self.step_index);
            self.observe_complete(*id);
        }
        self.active.retain(|a| a.remaining > 0);

        // Per-device trajectory: tokens attended vs the critical path,
        // plus each device's page occupancy. On a weighted fleet the
        // critical path is speed-aware: each device's load is first
        // normalized by its modeled throughput weight, so a slow device
        // carrying its fair (smaller) share reads as fully utilized.
        let max_dev_tokens = dev_tokens.iter().copied().max().unwrap_or(0);
        let weighted_fleet = self.device_weights.len() == devices;
        let speed_load = |d: usize| {
            if weighted_fleet {
                dev_tokens[d] as f64 / self.device_weights[d]
            } else {
                dev_tokens[d] as f64
            }
        };
        let max_speed_load = (0..devices).map(speed_load).fold(0.0_f64, f64::max);
        let per_device: Vec<DeviceStepMetrics> = (0..devices)
            .map(|d| DeviceStepMetrics {
                device: d,
                units: dev_units[d],
                kv_tokens: dev_tokens[d],
                utilization: if weighted_fleet {
                    if max_speed_load > 0.0 {
                        speed_load(d) / max_speed_load
                    } else {
                        0.0
                    }
                } else if max_dev_tokens > 0 {
                    dev_tokens[d] as f64 / max_dev_tokens as f64
                } else {
                    0.0
                },
                page_occupancy: self.store.device_stats(DeviceId(d as u32)).utilization,
            })
            .collect();

        // The all-reduce payload: every head's un-normalized partial —
        // g_q rows of (d accumulators + m + l) f32s — for every sequence.
        let payload_bytes =
            (batch * attn.heads_q * (attn.head_dim + 2) * std::mem::size_of::<f32>()) as f64;
        let allreduce_bytes_per_device = self
            .config
            .topology
            .allreduce_bytes_per_device(payload_bytes, devices);
        let mut modeled_interconnect_s = self.config.topology.allreduce_s(payload_bytes, devices);
        let (link_failures, link_events) = self.injector.take_transient_failures(self.step_index);
        if link_failures > 0 {
            // Transient interconnect fault: this step's all-reduce failed
            // `link_failures` times before landing. Each retry re-pays
            // the transfer plus a bounded exponential backoff on the
            // modeled clock — purely a latency event, never a token one.
            self.fault_counters.faults_injected += link_events;
            self.fault_counters.retries += link_failures as usize;
            self.fault_counters.degraded = true;
            self.observe_fault("fault_link_transient", u64::from(link_failures));
            modeled_interconnect_s += retry_penalty_s(modeled_interconnect_s, link_failures);
        }

        let shape = DecodeShape::new(batch, attn, max_len.max(1)).with_residual(max_res);
        let sharing = self.store.sharing_stats();
        // Copy-on-write privatizations this step, as a delta against the
        // store's monotone counter. A device-loss rebuild replaces the
        // store (counter resets to 0); `checked_sub` falls back to the
        // absolute value so the delta never wraps.
        let cow_now = self.store.cow_breaks();
        let cow_delta = cow_now
            .checked_sub(self.obs.last_cow_breaks)
            .unwrap_or(cow_now);
        self.obs.last_cow_breaks = cow_now;
        if cow_delta > 0 {
            if self.obs.lifecycle.is_enabled() {
                self.obs.registry.inc("serve.cow_breaks", cow_delta as u64);
            }
            if self.obs.events.is_enabled() {
                self.obs.events.log(
                    self.step_index,
                    "cow_break",
                    &[("count", EventField::U64(cow_delta as u64))],
                );
            }
        }
        let prefix = self.take_prefix_delta();
        if prefix.hits + prefix.misses + prefix.evicted_subtrees > 0 {
            if self.obs.lifecycle.is_enabled() {
                self.obs
                    .registry
                    .inc("serve.prefix_cache.hits", prefix.hits);
                self.obs
                    .registry
                    .inc("serve.prefix_cache.misses", prefix.misses);
                self.obs
                    .registry
                    .inc("serve.prefix_cache.pages_reused", prefix.pages_reused);
                self.obs
                    .registry
                    .inc("serve.prefix_cache.bytes_reused", prefix.bytes_reused);
                self.obs.registry.inc(
                    "serve.prefix_cache.evicted_subtrees",
                    prefix.evicted_subtrees,
                );
            }
            if self.obs.events.is_enabled() {
                self.obs.events.log(
                    self.step_index,
                    "prefix_cache",
                    &[
                        ("hits", EventField::U64(prefix.hits)),
                        ("misses", EventField::U64(prefix.misses)),
                        ("pages_reused", EventField::U64(prefix.pages_reused)),
                        ("bytes_reused", EventField::U64(prefix.bytes_reused)),
                        ("evicted_subtrees", EventField::U64(prefix.evicted_subtrees)),
                    ],
                );
            }
        }
        if shared_attn_groups > 0 {
            if self.obs.lifecycle.is_enabled() {
                self.obs
                    .registry
                    .inc("serve.shared_attn.groups", shared_attn_groups as u64);
                self.obs
                    .registry
                    .inc("serve.shared_attn.sharers", shared_attn_sharers as u64);
                self.obs.registry.inc(
                    "serve.shared_attn.pages_saved",
                    prefix_pages_walked_saved as u64,
                );
            }
            if self.obs.events.is_enabled() {
                self.obs.events.log(
                    self.step_index,
                    "shared_attn",
                    &[
                        ("groups", EventField::U64(shared_attn_groups as u64)),
                        ("sharers", EventField::U64(shared_attn_sharers as u64)),
                        (
                            "pages_saved",
                            EventField::U64(prefix_pages_walked_saved as u64),
                        ),
                    ],
                );
            }
        }
        let fc = std::mem::take(&mut self.fault_counters);
        let m = ServeMetrics {
            step: self.step_index,
            batch,
            admitted: adm.admitted,
            forked: adm.forked,
            completed: done.len(),
            kv_tokens,
            wall_s,
            kv_tokens_per_s: if wall_s > 0.0 {
                kv_tokens as f64 / wall_s
            } else {
                0.0
            },
            dequant,
            pool_utilization: self.store.utilization(),
            modeled_step_s: self.decoder.latency(&shape).total_s,
            devices,
            per_device,
            allreduce_bytes_per_device,
            modeled_interconnect_s,
            preempted: adm.preempted,
            resumed: adm.resumed,
            swap_bytes: adm.swap_bytes,
            modeled_swap_s: adm.modeled_swap_s,
            physical_pages: sharing.physical_pages,
            logical_pages: sharing.logical_pages,
            shared_pages: sharing.shared_pages,
            shared_bytes_saved: sharing.bytes_saved,
            faults_injected: fc.faults_injected,
            recoveries: fc.recoveries,
            retries: fc.retries,
            degraded: fc.degraded,
            requests_failed: fc.requests_failed,
            shared_attn_groups,
            prefix_pages_walked_saved,
            prefix_cache_hits: prefix.hits as usize,
            prefix_cache_misses: prefix.misses as usize,
            prefix_pages_reused: prefix.pages_reused as usize,
            prefix_bytes_reused: prefix.bytes_reused as usize,
            prefix_subtrees_evicted: prefix.evicted_subtrees as usize,
        };
        if self.obs.lifecycle.is_enabled() {
            self.obs
                .registry
                .set_gauge("serve.active", self.active.len() as f64);
            self.obs
                .registry
                .set_gauge("serve.pending", self.pending.len() as f64);
            self.obs
                .registry
                .set_gauge("serve.pool_utilization", m.pool_utilization);
        }
        // Modeled timeline: allocate simulator intervals for this step's
        // swap traffic, per-device execution (every device shares the
        // step's critical-path interval) and the all-reduce, in that
        // order, so Perfetto shows the modeled schedule the latency model
        // already charges for.
        if self.obs.tracer.is_enabled() {
            if m.modeled_swap_s > 0.0 {
                let (b, e) = self.obs.tracer.clock().advance_sim_s(m.modeled_swap_s);
                self.obs.tracer.record_modeled(
                    "swap",
                    LANE_SESSION,
                    b,
                    e - b,
                    vec![("bytes", m.swap_bytes)],
                );
            }
            let (b, e) = self.obs.tracer.clock().advance_sim_s(m.modeled_step_s);
            for d in 0..devices {
                self.obs.tracer.record_modeled(
                    "execute",
                    device_lane(d),
                    b,
                    e - b,
                    vec![
                        ("units", dev_units[d] as f64),
                        ("kv_tokens", dev_tokens[d] as f64),
                    ],
                );
            }
            if m.modeled_interconnect_s > 0.0 {
                let (b, e) = self
                    .obs
                    .tracer
                    .clock()
                    .advance_sim_s(m.modeled_interconnect_s);
                self.obs.tracer.record_modeled(
                    "all_reduce",
                    LANE_SESSION,
                    b,
                    e - b,
                    vec![("bytes_per_device", m.allreduce_bytes_per_device)],
                );
            }
        }
        self.obs.tracer.end_with(
            step_span,
            "step",
            LANE_SESSION,
            vec![("batch", batch as f64), ("kv_tokens", kv_tokens as f64)],
        );
        self.step_index += 1;
        self.metrics.push(m.clone());
        Some(m)
    }

    /// Records a step in which the worker pool failed before any token
    /// was appended: no stream advanced, but the session stays live and
    /// the fault accounting lands in the sample.
    fn record_degraded_step(
        &mut self,
        adm: AdmissionStats,
        batch: usize,
        kv_tokens: usize,
        devices: usize,
    ) -> ServeMetrics {
        let per_device: Vec<DeviceStepMetrics> = (0..devices)
            .map(|d| DeviceStepMetrics {
                device: d,
                units: 0,
                kv_tokens: 0,
                utilization: 0.0,
                page_occupancy: self.store.device_stats(DeviceId(d as u32)).utilization,
            })
            .collect();
        let sharing = self.store.sharing_stats();
        let prefix = self.take_prefix_delta();
        let fc = std::mem::take(&mut self.fault_counters);
        let m = ServeMetrics {
            step: self.step_index,
            batch,
            admitted: adm.admitted,
            forked: adm.forked,
            completed: 0,
            kv_tokens,
            wall_s: 0.0,
            kv_tokens_per_s: 0.0,
            dequant: FastDequantOps::default(),
            pool_utilization: self.store.utilization(),
            modeled_step_s: 0.0,
            devices,
            per_device,
            allreduce_bytes_per_device: 0.0,
            modeled_interconnect_s: 0.0,
            preempted: adm.preempted,
            resumed: adm.resumed,
            swap_bytes: adm.swap_bytes,
            modeled_swap_s: adm.modeled_swap_s,
            physical_pages: sharing.physical_pages,
            logical_pages: sharing.logical_pages,
            shared_pages: sharing.shared_pages,
            shared_bytes_saved: sharing.bytes_saved,
            faults_injected: fc.faults_injected,
            recoveries: fc.recoveries,
            retries: fc.retries,
            degraded: true,
            requests_failed: fc.requests_failed,
            shared_attn_groups: 0,
            prefix_pages_walked_saved: 0,
            prefix_cache_hits: prefix.hits as usize,
            prefix_cache_misses: prefix.misses as usize,
            prefix_pages_reused: prefix.pages_reused as usize,
            prefix_bytes_reused: prefix.bytes_reused as usize,
            prefix_subtrees_evicted: prefix.evicted_subtrees as usize,
        };
        self.step_index += 1;
        self.metrics.push(m.clone());
        m
    }

    /// Radix prefix-cache counter movement since the last sample, as a
    /// delta against the store's monotone totals. A device-loss rebuild
    /// replaces the store (totals reset to 0); `checked_sub` falls back to
    /// the absolute value so the delta never wraps.
    fn take_prefix_delta(&mut self) -> PrefixCacheStats {
        let now = self.store.prefix_cache_stats();
        let last = self.obs.last_prefix_stats;
        let d = |n: u64, l: u64| n.checked_sub(l).unwrap_or(n);
        self.obs.last_prefix_stats = now;
        PrefixCacheStats {
            hits: d(now.hits, last.hits),
            misses: d(now.misses, last.misses),
            pages_reused: d(now.pages_reused, last.pages_reused),
            bytes_reused: d(now.bytes_reused, last.bytes_reused),
            evicted_subtrees: d(now.evicted_subtrees, last.evicted_subtrees),
            evicted_pages: d(now.evicted_pages, last.evicted_pages),
        }
    }

    /// Removes a still-active sequence, frees its pages, and marks its
    /// request permanently failed with `err`.
    fn fail_active_seq(&mut self, seq: SeqId, err: ServeError) {
        let Some(pos) = self.active.iter().position(|a| a.seq == seq) else {
            return;
        };
        let victim = self.active.remove(pos);
        self.store_mut().evict(victim.seq);
        self.fault_counters.requests_failed += 1;
        self.failed.insert(victim.id, err);
        self.observe_failed(victim.id);
    }

    /// Kills one device: every KV page it held is gone. The session
    /// quarantines it by rebuilding the [`Placement`] over the surviving
    /// device count (fresh pools, so SeqId lockstep restarts cleanly),
    /// re-seizes any still-live fault hogs, and converts every resident
    /// sequence and parked swap blob into a recompute-from-prompt entry
    /// at the **front** of the queue — policy-visible and in admission
    /// order. Already-streamed tokens are re-derived bitwise during the
    /// replay, so a completed stream is unaffected by *when* the loss
    /// struck.
    fn lose_device(&mut self, dead: usize) {
        let live = self.store.devices();
        let dead = dead % live.max(1);
        self.lost_devices.push(dead);
        let survivors = live.saturating_sub(1).max(1);
        let heads = self.decoder.attention().heads_kv;
        // Prune the dead device's weight in lockstep (if the fleet is
        // weighted) so the rebuilt placement re-apportions heads by the
        // survivors' modeled throughput.
        if self.device_weights.len() == live && survivors < live {
            self.device_weights.remove(dead);
        }
        let placement = build_placement(
            survivors,
            self.config.partitioning,
            &self.device_weights,
            heads,
        );
        // Replace the pool first: dropping it joins the workers, which
        // releases their store handles before the store itself goes.
        self.pool = WorkerPool::new(self.config.workers, placement.devices());
        let mut store = ShardedKvStore::new(
            self.decoder.cache_config(),
            placement,
            self.config.total_pages,
            self.config.page_tokens,
        );
        store.set_prefix_cache(self.config.prefix_cache);
        self.store = Arc::new(store);
        // Recovery: every resident sequence lost its share on the dead
        // device, and every parked swap blob was cut for the old device
        // count — both recompute from the prompt.
        let mut recovered: Vec<RequestId> = Vec::new();
        for entry in &mut self.pending {
            if entry.resume.take().is_some() {
                entry.model.reset();
                self.fault_counters.recoveries += 1;
                recovered.push(entry.id);
            }
        }
        let actives = std::mem::take(&mut self.active);
        for a in actives.into_iter().rev() {
            let mut model = a.model;
            model.reset();
            self.fault_counters.recoveries += 1;
            recovered.push(a.id);
            self.pending.push_front(QueueEntry {
                id: a.id,
                model,
                resume: None,
                fork_of: None,
            });
        }
        for id in recovered {
            self.observe_recovery(id);
        }
        // Fault-seized pages died with the old pools; re-seize the
        // survivors' share so a pending exhaustion keeps its pressure.
        let hogs = std::mem::take(&mut self.hogs);
        for hog in hogs {
            self.seize_pages(hog.pages, hog.release);
        }
    }

    /// Seizes `pages` pages on every device (clamped to what is free) via
    /// a hog reservation the scheduler cannot preempt, releasing it at
    /// step `release` (`None` = when the run ends).
    fn seize_pages(&mut self, pages: usize, release: Option<usize>) {
        let free = (0..self.store.devices())
            .map(|d| self.store.device_stats(DeviceId(d as u32)).free_pages)
            .min()
            .unwrap_or(0);
        let pages = pages.min(free);
        if pages == 0 {
            return;
        }
        let tokens = pages * self.config.page_tokens;
        if let Ok(seq) = self.store_mut().admit(tokens) {
            self.hogs.push(PageHog {
                seq,
                pages,
                release,
            });
        }
    }

    /// Releases fault-seized hogs whose hold expired at or before the
    /// current step.
    fn release_expired_hogs(&mut self) {
        let now = self.step_index;
        let expired: Vec<SeqId> = self
            .hogs
            .iter()
            .filter(|h| h.release.is_some_and(|r| r <= now))
            .map(|h| h.seq)
            .collect();
        for seq in expired {
            self.store_mut().evict(seq);
        }
        self.hogs.retain(|h| h.release.is_none_or(|r| r > now));
    }

    /// Releases every remaining hog — the run is over, so seized pages go
    /// back to the pool and drain accounting balances.
    fn release_all_hogs(&mut self) {
        let hogs = std::mem::take(&mut self.hogs);
        for hog in hogs {
            self.store_mut().evict(hog.seq);
        }
    }

    /// Pages per device seized with no scheduled release — capacity a
    /// permanent pool-exhaustion fault withholds for the rest of the run.
    fn seized_forever_pages(&self) -> usize {
        self.hogs
            .iter()
            .filter(|h| h.release.is_none())
            .map(|h| h.pages)
            .sum()
    }

    /// Folds one head's device partials into normalized output rows —
    /// `OnlineSoftmax::merge` over however many partials the placement
    /// produced (exactly one under head partitioning; the merge is exact
    /// for any split).
    fn reduce_head_partials(partials: impl Iterator<Item = OnlineSoftmax>) -> Vec<Vec<f32>> {
        OnlineSoftmax::merge(partials.collect()).finish()
    }

    /// Steps until every submitted request has finished, returning the
    /// aggregate summary.
    pub fn run_to_completion(&mut self) -> ServeSummary {
        let start = self.metrics.len();
        loop {
            while self.step().is_some() {}
            // The run is over for live work; pages still fault-seized
            // release now. If that unblocks parked requests (a permanent
            // seizure was starving them), keep serving until drained.
            if self.hogs.is_empty() {
                break;
            }
            self.release_all_hogs();
            if self.pending.is_empty() {
                break;
            }
        }
        let run = &self.metrics[start..];
        let kv_tokens: u64 = run.iter().map(|m| m.kv_tokens as u64).sum();
        let wall_s: f64 = run.iter().map(|m| m.wall_s).sum();
        let mut dequant = FastDequantOps::default();
        for m in run {
            dequant += m.dequant;
        }
        ServeSummary {
            steps: run.len(),
            completed: run.iter().map(|m| m.completed).sum(),
            kv_tokens,
            wall_s,
            kv_tokens_per_s: if wall_s > 0.0 {
                kv_tokens as f64 / wall_s
            } else {
                0.0
            },
            dequant,
            devices: self.devices(),
            mean_device_utilization: if run.is_empty() {
                0.0
            } else {
                run.iter()
                    .map(ServeMetrics::mean_device_utilization)
                    .sum::<f64>()
                    / run.len() as f64
            },
            modeled_interconnect_s: run.iter().map(|m| m.modeled_interconnect_s).sum(),
            preemptions: run.iter().map(|m| m.preempted).sum(),
            resumes: run.iter().map(|m| m.resumed).sum(),
            forks: run.iter().map(|m| m.forked).sum(),
            peak_physical_pages: run.iter().map(|m| m.physical_pages).max().unwrap_or(0),
            peak_shared_bytes_saved: run.iter().map(|m| m.shared_bytes_saved).max().unwrap_or(0),
            swap_bytes: run.iter().map(|m| m.swap_bytes).sum(),
            modeled_swap_s: run.iter().map(|m| m.modeled_swap_s).sum(),
            faults_injected: run.iter().map(|m| m.faults_injected).sum(),
            recoveries: run.iter().map(|m| m.recoveries).sum(),
            retries: run.iter().map(|m| m.retries).sum(),
            degraded_steps: run.iter().filter(|m| m.degraded).count(),
            requests_failed: run.iter().map(|m| m.requests_failed).sum(),
            shared_attn_groups: run.iter().map(|m| m.shared_attn_groups).sum(),
            prefix_pages_walked_saved: run.iter().map(|m| m.prefix_pages_walked_saved).sum(),
            prefix_cache_hits: run.iter().map(|m| m.prefix_cache_hits).sum(),
            prefix_cache_misses: run.iter().map(|m| m.prefix_cache_misses).sum(),
            prefix_pages_reused: run.iter().map(|m| m.prefix_pages_reused).sum(),
            prefix_bytes_reused: run.iter().map(|m| m.prefix_bytes_reused).sum(),
            prefix_subtrees_evicted: run.iter().map(|m| m.prefix_subtrees_evicted).sum(),
            slo: self.obs.lifecycle.summary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{replay_contiguous, SynthSequence};
    use crate::scheduler::{FcfsPreempt, ShortestRemainingFirst};
    use bd_core::AttentionConfig;
    use bd_gpu_sim::GpuArch;
    use bd_kvcache::QuantScheme;
    use bd_obs::ClockDomain;

    fn decoder(attn: AttentionConfig) -> BitDecoder {
        BitDecoder::builder(GpuArch::rtx4090())
            .attention(attn)
            .scheme(QuantScheme::kc4())
            .paged(true)
            .build()
    }

    #[test]
    fn batched_streams_match_contiguous_replay_bitwise() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let dec = decoder(attn);
        let mut session = ServeSession::new(dec.clone(), ServeConfig::new(512, 32, 2, 8));
        let ids: Vec<RequestId> = (0..4)
            .map(|i| {
                session
                    .submit(Box::new(SynthSequence::new(
                        attn,
                        i,
                        100 + 40 * i as usize,
                        4,
                    )))
                    .unwrap()
            })
            .collect();
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 4);
        for (i, id) in ids.iter().enumerate() {
            let want = replay_contiguous(
                &dec,
                &mut SynthSequence::new(attn, i as u64, 100 + 40 * i, 4),
            );
            assert_eq!(session.stream(*id).unwrap(), want, "request {i}");
            assert!(session.is_finished(*id));
        }
        // All pages recycled after completion.
        assert_eq!(session.store().free_pages(), 512);
    }

    #[test]
    fn sharded_session_streams_match_single_device_bitwise() {
        let attn = AttentionConfig::gqa(8, 4, 16);
        let streams_at = |devices: usize, part: Partitioning| -> Vec<Vec<u32>> {
            let config = ServeConfig::new(128, 32, 1, 4).with_devices(devices, part);
            let mut session = ServeSession::new(decoder(attn), config);
            let ids: Vec<_> = (0..3)
                .map(|i| {
                    session
                        .submit(Box::new(SynthSequence::new(
                            attn,
                            i,
                            80 + 30 * i as usize,
                            3,
                        )))
                        .unwrap()
                })
                .collect();
            let summary = session.run_to_completion();
            assert_eq!(summary.completed, 3);
            assert_eq!(summary.devices, devices.min(attn.heads_kv));
            ids.iter()
                .map(|id| session.stream(*id).unwrap().to_vec())
                .collect()
        };
        let single = streams_at(1, Partitioning::HeadContiguous);
        for devices in [2usize, 3, 4] {
            for part in [Partitioning::HeadModulo, Partitioning::HeadContiguous] {
                assert_eq!(
                    single,
                    streams_at(devices, part),
                    "devices={devices} {part}"
                );
            }
        }
    }

    #[test]
    fn sharded_metrics_report_per_device_breakdown() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let config = ServeConfig::new(64, 32, 0, 4).with_devices(2, Partitioning::HeadModulo);
        let mut session = ServeSession::new(decoder(attn), config);
        session
            .submit(Box::new(SynthSequence::new(attn, 7, 50, 2)))
            .unwrap();
        let m = session.step().unwrap();
        assert_eq!(m.devices, 2);
        assert_eq!(m.per_device.len(), 2);
        // One head per device: perfectly balanced.
        for d in &m.per_device {
            assert_eq!(d.units, 1);
            assert_eq!(d.kv_tokens, 50);
            assert_eq!(d.utilization, 1.0);
            assert!(d.page_occupancy > 0.0);
        }
        assert_eq!(m.mean_device_utilization(), 1.0);
        // The all-reduce is priced: 2 devices move the full partial
        // payload once around the ring.
        // batch 1 × h_q 4 × (d 16 + m,l 2) × 4 bytes.
        let payload = (4 * (16 + 2) * 4) as f64;
        assert_eq!(m.allreduce_bytes_per_device, payload);
        assert!(m.modeled_interconnect_s > 0.0);

        // Single device: no communication.
        let mut solo = ServeSession::new(decoder(attn), ServeConfig::new(64, 32, 0, 4));
        solo.submit(Box::new(SynthSequence::new(attn, 7, 50, 2)))
            .unwrap();
        let ms = solo.step().unwrap();
        assert_eq!(ms.allreduce_bytes_per_device, 0.0);
        assert_eq!(ms.modeled_interconnect_s, 0.0);
    }

    #[test]
    fn uneven_head_split_shows_in_device_utilization() {
        // 3 KV heads over 2 devices (contiguous): device 0 takes 2 heads,
        // device 1 takes 1 — its utilization is half the critical path.
        let attn = AttentionConfig::gqa(3, 3, 16);
        let config = ServeConfig::new(64, 32, 0, 4).with_devices(2, Partitioning::HeadContiguous);
        let mut session = ServeSession::new(decoder(attn), config);
        session
            .submit(Box::new(SynthSequence::new(attn, 1, 40, 1)))
            .unwrap();
        let m = session.step().unwrap();
        assert_eq!(m.per_device[0].units, 2);
        assert_eq!(m.per_device[1].units, 1);
        assert_eq!(m.per_device[0].utilization, 1.0);
        assert_eq!(m.per_device[1].utilization, 0.5);
    }

    #[test]
    fn admission_respects_pool_and_batch_limits() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        // Pool fits exactly two resident requests (each needs 2 pages).
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(4, 64, 0, 8));
        for i in 0..5 {
            session
                .submit(Box::new(SynthSequence::new(attn, i, 100, 3)))
                .unwrap();
        }
        let m = session.step().unwrap();
        assert_eq!(m.batch, 2);
        assert_eq!(m.admitted, 2);
        assert_eq!(session.pending(), 3);
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 5);
        assert!(session.metrics().iter().all(|m| m.batch <= 2));

        // max_batch caps admission even with free pages.
        let mut capped = ServeSession::new(decoder(attn), ServeConfig::new(64, 64, 0, 3));
        for i in 0..5 {
            capped
                .submit(Box::new(SynthSequence::new(attn, i, 10, 2)))
                .unwrap();
        }
        assert_eq!(capped.step().unwrap().batch, 3);
    }

    #[test]
    fn trace_arrivals_join_mid_run() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(64, 32, 0, 8));
        let a = session
            .submit(Box::new(SynthSequence::new(attn, 0, 40, 4)))
            .unwrap();
        // Arrives at step 2 — must not decode earlier.
        let b = session
            .submit_at(2, Box::new(SynthSequence::new(attn, 1, 40, 3)))
            .unwrap();
        assert_eq!(session.future_arrivals(), 1);
        let m0 = session.step().unwrap();
        assert_eq!((m0.batch, m0.admitted), (1, 1));
        let m1 = session.step().unwrap();
        assert_eq!((m1.batch, m1.admitted), (1, 0));
        let m2 = session.step().unwrap();
        assert_eq!((m2.batch, m2.admitted), (2, 1), "arrival joins at step 2");
        assert_eq!(session.future_arrivals(), 0);
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 2);
        // Streams still match the per-sequence contiguous replay.
        for (id, seed, prompt, gen) in [(a, 0u64, 40usize, 4usize), (b, 1, 40, 3)] {
            let want = replay_contiguous(
                &decoder(attn),
                &mut SynthSequence::new(attn, seed, prompt, gen),
            );
            assert_eq!(session.stream(id).unwrap(), want);
        }
    }

    #[test]
    fn idle_session_fast_forwards_to_next_arrival() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(64, 32, 0, 8));
        session
            .submit_at(10, Box::new(SynthSequence::new(attn, 3, 20, 2)))
            .unwrap();
        // No work before step 10 — the session jumps there instead of
        // emitting empty steps.
        let m = session.step().unwrap();
        assert_eq!(m.step, 10);
        assert_eq!(m.batch, 1);
        assert!(session.step().is_some());
        assert!(session.step().is_none());
    }

    #[test]
    fn arrivals_wait_for_pages_to_free_up() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        // One page of 64 tokens: only one 40+3-token request fits at a
        // time.
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(1, 64, 0, 8));
        session
            .submit(Box::new(SynthSequence::new(attn, 0, 40, 3)))
            .unwrap();
        session
            .submit_at(1, Box::new(SynthSequence::new(attn, 1, 40, 2)))
            .unwrap();
        let m0 = session.step().unwrap();
        assert_eq!(m0.batch, 1);
        // Step 1: the arrival is due but the pool is full — it queues.
        let m1 = session.step().unwrap();
        assert_eq!(m1.admitted, 0);
        assert_eq!(session.pending(), 1);
        let summary = session.run_to_completion();
        // Both requests finish in the remaining steps: the first completes,
        // frees its page, and the queued arrival is finally admitted.
        assert_eq!(summary.completed, 2);
        assert_eq!(session.pending(), 0);
    }

    /// The head-of-line scenario: a big request owns the whole pool when a
    /// small one arrives. Returns each policy's session plus the two ids.
    fn oversubscribed_session(
        policy: impl crate::scheduler::SchedulerPolicy + 'static,
    ) -> (ServeSession, RequestId, RequestId) {
        let attn = AttentionConfig::gqa(2, 1, 16);
        // 4 pages × 32 tokens: request A (64 + 40 tokens) fills the pool.
        let mut session =
            ServeSession::new(decoder(attn), ServeConfig::new(4, 32, 0, 8)).with_policy(policy);
        let a = session
            .submit(Box::new(SynthSequence::new(attn, 0, 64, 40)))
            .unwrap();
        // B arrives at step 5: 16 + 3 tokens, a single page.
        let b = session
            .submit_at(5, Box::new(SynthSequence::new(attn, 1, 16, 3)))
            .unwrap();
        session.run_to_completion();
        (session, a, b)
    }

    #[test]
    fn preemption_unblocks_late_arrival_and_stays_bitwise() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let (fcfs, _, fcfs_b) = oversubscribed_session(super::Fcfs);
        let (pre, pre_a, pre_b) = oversubscribed_session(FcfsPreempt::default());

        // Acceptance: under page pressure FcfsPreempt completes the small
        // late request in strictly fewer steps than Fcfs.
        let fcfs_done = fcfs.completion_step(fcfs_b).unwrap();
        let pre_done = pre.completion_step(pre_b).unwrap();
        assert!(
            pre_done < fcfs_done,
            "preemption did not help: {pre_done} vs {fcfs_done}"
        );
        // B decodes immediately on arrival (steps 5..7), not after A.
        assert_eq!(pre_done, 7);

        // The preemption really happened and was priced.
        let s = |sess: &ServeSession| {
            let run = sess.metrics();
            (
                run.iter().map(|m| m.preempted).sum::<usize>(),
                run.iter().map(|m| m.resumed).sum::<usize>(),
                run.iter().map(|m| m.swap_bytes).sum::<f64>(),
                run.iter().map(|m| m.modeled_swap_s).sum::<f64>(),
            )
        };
        assert_eq!(s(&fcfs), (0, 0, 0.0, 0.0));
        let (preempted, resumed, bytes, swap_s) = s(&pre);
        assert_eq!((preempted, resumed), (1, 1));
        assert!(bytes > 0.0, "swap moved bytes");
        assert!(swap_s > 0.0, "swap was priced by the host link");

        // Every stream — preempted or not — is bitwise identical to the
        // uninterrupted contiguous replay, under both policies.
        for (sess, a, b) in [(&fcfs, 0, fcfs_b), (&pre, pre_a, pre_b)] {
            let want_a =
                replay_contiguous(&decoder(attn), &mut SynthSequence::new(attn, 0, 64, 40));
            let want_b = replay_contiguous(&decoder(attn), &mut SynthSequence::new(attn, 1, 16, 3));
            assert_eq!(sess.stream(a).unwrap(), want_a, "big stream diverged");
            assert_eq!(sess.stream(b).unwrap(), want_b, "small stream diverged");
        }
        // All pages recycled in both sessions.
        assert_eq!(pre.store().free_pages(), 4);
    }

    #[test]
    fn shortest_remaining_first_overtakes_without_swapping() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        // Pool fits one request at a time; both are pending from step 0.
        let build = |policy_is_srf: bool| {
            let session = ServeSession::new(decoder(attn), ServeConfig::new(4, 32, 0, 8));
            let mut session = if policy_is_srf {
                session.with_policy(ShortestRemainingFirst)
            } else {
                session
            };
            let long = session
                .submit(Box::new(SynthSequence::new(attn, 0, 64, 30)))
                .unwrap();
            let short = session
                .submit(Box::new(SynthSequence::new(attn, 1, 64, 4)))
                .unwrap();
            session.run_to_completion();
            (session, long, short)
        };
        let (fcfs, _, fcfs_short) = build(false);
        let (srf, srf_long, srf_short) = build(true);
        // SRF serves the short request first even though it was submitted
        // second…
        assert!(
            srf.completion_step(srf_short).unwrap() < fcfs.completion_step(fcfs_short).unwrap()
        );
        assert!(srf.completion_step(srf_short).unwrap() < srf.completion_step(srf_long).unwrap());
        // …without any swap traffic.
        assert!(srf.metrics().iter().all(|m| m.preempted == 0));
        // Streams are unaffected by the reordering.
        for (id, seed, gen) in [(srf_long, 0u64, 30usize), (srf_short, 1, 4)] {
            let want =
                replay_contiguous(&decoder(attn), &mut SynthSequence::new(attn, seed, 64, gen));
            assert_eq!(srf.stream(id).unwrap(), want);
        }
    }

    #[test]
    fn preempted_victims_resume_after_blocker_drains() {
        // Two sequences resident; a fresh arrival preempts the youngest
        // (and only the youngest); the victim swaps back in later and its
        // stream is intact.
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(4, 32, 0, 8))
            .with_policy(FcfsPreempt::default());
        // Two 2-page residents fill the 4-page pool.
        let a = session
            .submit(Box::new(SynthSequence::new(attn, 0, 40, 20)))
            .unwrap();
        let b = session
            .submit(Box::new(SynthSequence::new(attn, 1, 40, 20)))
            .unwrap();
        // C arrives at step 3 needing 2 pages: preempts B (youngest), not A.
        let c = session
            .submit_at(3, Box::new(SynthSequence::new(attn, 2, 40, 4)))
            .unwrap();
        session.run_to_completion();
        let m3 = session.metrics().iter().find(|m| m.step == 3).unwrap();
        assert_eq!(m3.preempted, 1);
        assert_eq!(m3.admitted, 1);
        assert!(session.completion_step(c).unwrap() < session.completion_step(b).unwrap());
        assert!(session.completion_step(a).unwrap() < session.completion_step(b).unwrap());
        for (id, seed, gen) in [(a, 0u64, 20usize), (b, 1, 20), (c, 2, 4)] {
            let want =
                replay_contiguous(&decoder(attn), &mut SynthSequence::new(attn, seed, 40, gen));
            assert_eq!(session.stream(id).unwrap(), want, "request {id}");
        }
    }

    #[test]
    fn futile_preemptions_are_not_attempted() {
        // A candidate that cannot fit even after preempting every eligible
        // victim must not swap anyone out: swapping A out just to swap it
        // back in the same step would pay two transfers for nothing.
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(5, 32, 0, 8))
            .with_policy(FcfsPreempt::default());
        let a = session
            .submit(Box::new(SynthSequence::new(attn, 0, 40, 20)))
            .unwrap(); // 2 pages
        let x = session
            .submit_at(3, Box::new(SynthSequence::new(attn, 1, 16, 2)))
            .unwrap(); // 1 page, fits free pool
        let f = session
            .submit_at(3, Box::new(SynthSequence::new(attn, 2, 100, 56)))
            .unwrap(); // 5 pages: needs the whole pool
        session.run_to_completion();
        // Step 3: X (same-step admit) is spared, so the most F could free
        // is A's 2 pages — 5 > free(2) + preemptible(2), futile. Without
        // the guard this step would swap A out and straight back in,
        // paying two transfers for nothing.
        let m3 = session.metrics().iter().find(|m| m.step == 3).unwrap();
        assert_eq!((m3.preempted, m3.resumed), (0, 0), "futile swap at step 3");
        // From step 4 X is preemptible too; evicting both residents is
        // enough, so F admits through two useful preemptions.
        let m4 = session.metrics().iter().find(|m| m.step == 4).unwrap();
        assert_eq!(m4.preempted, 2);
        let total: usize = session.metrics().iter().map(|m| m.preempted).sum();
        assert_eq!(total, 2);
        for (id, seed, prompt, gen) in [(a, 0u64, 40usize, 20usize), (x, 1, 16, 2), (f, 2, 100, 56)]
        {
            let want = replay_contiguous(
                &decoder(attn),
                &mut SynthSequence::new(attn, seed, prompt, gen),
            );
            assert_eq!(session.stream(id).unwrap(), want, "request {id}");
        }
    }

    #[test]
    fn blocked_swapped_head_does_not_stall_backfill() {
        // A swapped-out sequence parked at the queue head must not
        // re-create head-of-line blocking under FcfsPreempt: later
        // requests that fit the leftover pages admit right past it.
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(4, 32, 0, 8))
            .with_policy(FcfsPreempt::default());
        let a = session
            .submit(Box::new(SynthSequence::new(attn, 0, 64, 40)))
            .unwrap(); // 4 pages: the whole pool
        let b = session
            .submit_at(2, Box::new(SynthSequence::new(attn, 1, 64, 30)))
            .unwrap(); // 3 pages: preempts A, which then blocks at the head
        let c = session
            .submit_at(3, Box::new(SynthSequence::new(attn, 2, 16, 2)))
            .unwrap(); // 1 page: fits the leftover page while A is parked
        session.run_to_completion();
        let m3 = session.metrics().iter().find(|m| m.step == 3).unwrap();
        assert_eq!(
            (m3.admitted, m3.batch),
            (1, 2),
            "C admitted past the blocked swapped head"
        );
        assert_eq!(session.completion_step(c), Some(4));
        for (id, seed, prompt, gen) in [(a, 0u64, 64usize, 40usize), (b, 1, 64, 30), (c, 2, 16, 2)]
        {
            let want = replay_contiguous(
                &decoder(attn),
                &mut SynthSequence::new(attn, seed, prompt, gen),
            );
            assert_eq!(session.stream(id).unwrap(), want, "request {id}");
        }
    }

    #[test]
    fn aging_bounds_swapped_sequence_starvation_under_sustained_load() {
        // A parked swapped-out sequence must not starve behind an endless
        // stream of fresh arrivals that backfill past it: after its
        // patience runs out, admissions pause and it swaps back in.
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(4, 32, 0, 8))
            .with_policy(FcfsPreempt::with_patience(4));
        // A needs the whole 4-page pool.
        let a = session
            .submit(Box::new(SynthSequence::new(attn, 0, 100, 26)))
            .unwrap();
        // B preempts A at step 2; A parks, needing 4 pages.
        session
            .submit_at(2, Box::new(SynthSequence::new(attn, 1, 40, 6)))
            .unwrap(); // 2 pages
                       // Fresh 2-page requests arrive every other step through step 29 —
                       // without aging, each would backfill (or preempt its predecessor)
                       // past parked A for the whole stretch.
        let mut small = Vec::new();
        for (i, at) in (3..30).step_by(2).enumerate() {
            small.push(
                session
                    .submit_at(at, Box::new(SynthSequence::new(attn, 2 + i as u64, 40, 4)))
                    .unwrap(),
            );
        }
        session.run_to_completion();
        // A resumes within patience + drain of its preemption, not after
        // the arrival stream ends at step 29.
        let first_resume = session
            .metrics()
            .iter()
            .find(|m| m.resumed > 0)
            .map(|m| m.step)
            .expect("A resumed");
        assert!(
            first_resume < 20,
            "aging failed: first resume at step {first_resume}"
        );
        // Every stream — A's interrupted one and all the smalls — still
        // equals the uninterrupted contiguous replay.
        let want_a = replay_contiguous(&decoder(attn), &mut SynthSequence::new(attn, 0, 100, 26));
        assert_eq!(session.stream(a).unwrap(), want_a);
        for (i, id) in small.iter().enumerate() {
            assert!(session.is_finished(*id));
            let want = replay_contiguous(
                &decoder(attn),
                &mut SynthSequence::new(attn, 2 + i as u64, 40, 4),
            );
            assert_eq!(session.stream(*id).unwrap(), want, "small {i}");
        }
    }

    #[test]
    fn aging_survives_victim_churn() {
        // Every new preemption parks a fresh victim at the queue front,
        // and that newest victim blocks first each step. The aging
        // tracker must keep following the oldest parked sequence through
        // that churn — if each newcomer stole the tracker, the patience
        // bound would never fire and the first victim would starve for
        // the whole load duration.
        let attn = AttentionConfig::gqa(2, 1, 16);
        // 8-page pool; every request needs 4 pages.
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(8, 32, 0, 8))
            .with_policy(FcfsPreempt::default());
        let a = session
            .submit(Box::new(SynthSequence::new(attn, 0, 100, 26)))
            .unwrap();
        let b = session
            .submit(Box::new(SynthSequence::new(attn, 1, 100, 26)))
            .unwrap();
        let mut churn = Vec::new();
        for at in 1..30usize {
            churn.push(
                session
                    .submit_at(
                        at,
                        Box::new(SynthSequence::new(attn, 10 + at as u64, 100, 4)),
                    )
                    .unwrap(),
            );
        }
        session.run_to_completion();
        // B (preempted at step 1) must complete within a few aging/drain
        // cycles, not after the entire churn stream drains.
        let b_done = session.completion_step(b).unwrap();
        assert!(b_done < 150, "first victim starved until step {b_done}");
        for (id, seed, gen) in churn
            .iter()
            .enumerate()
            .map(|(i, id)| (*id, 11 + i as u64, 4usize))
            .chain([(a, 0u64, 26usize), (b, 1, 26)])
        {
            assert!(session.is_finished(id));
            let want = replay_contiguous(
                &decoder(attn),
                &mut SynthSequence::new(attn, seed, 100, gen),
            );
            assert_eq!(session.stream(id).unwrap(), want, "request {id}");
        }
    }

    #[test]
    fn aging_counts_blocked_steps_across_batch_full_gaps() {
        // With the batch cap pinned at 3, most steps never run an
        // admission pass at all, so the parked sequence is consulted only
        // in bursts when a slot opens. The patience bound must fire from
        // those consultations — inferring a resume from the silent
        // batch-full stretches would reset the count every burst and
        // starve the parked sequence until the arrival stream ends.
        let attn = AttentionConfig::gqa(2, 1, 16);
        let config = ServeConfig::new(12, 32, 0, 3);
        let mut session =
            ServeSession::new(decoder(attn), config).with_policy(FcfsPreempt::with_patience(3));
        // A long 5-page resident plus a 6-page victim.
        let a = session
            .submit(Box::new(SynthSequence::new(attn, 0, 100, 60)))
            .unwrap();
        let p = session
            .submit(Box::new(SynthSequence::new(attn, 1, 150, 42)))
            .unwrap();
        // 3-page arrivals: the first preempts P at step 2, the rest keep
        // the batch full in stretches.
        let mut small = Vec::new();
        for at in (2..40).step_by(4) {
            small.push(
                session
                    .submit_at(
                        at,
                        Box::new(SynthSequence::new(attn, 10 + at as u64, 76, 8)),
                    )
                    .unwrap(),
            );
        }
        session.run_to_completion();
        let first_resume = session
            .metrics()
            .iter()
            .find(|m| m.resumed > 0)
            .map(|m| m.step)
            .expect("P resumed");
        assert!(
            first_resume < 30,
            "batch-cap gaps reset aging: first resume at step {first_resume}"
        );
        for (id, seed, prompt, gen) in small
            .iter()
            .enumerate()
            .map(|(i, id)| (*id, 10 + (2 + 4 * i) as u64, 76usize, 8usize))
            .chain([(a, 0, 100, 60), (p, 1, 150, 42)])
        {
            assert!(session.is_finished(id));
            let want = replay_contiguous(
                &decoder(attn),
                &mut SynthSequence::new(attn, seed, prompt, gen),
            );
            assert_eq!(session.stream(id).unwrap(), want, "request {id}");
        }
    }

    #[test]
    fn same_step_arrivals_admit_in_submission_order() {
        // Stable FCFS among equal arrival steps: whatever order the sorted
        // insert saw them in, equal-step arrivals admit in submission
        // order.
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(8, 32, 0, 1));
        // Interleave inserts around the tied step so an unstable insert
        // would reorder them.
        let x = session
            .submit_at(4, Box::new(SynthSequence::new(attn, 0, 16, 2)))
            .unwrap();
        let early = session
            .submit_at(2, Box::new(SynthSequence::new(attn, 1, 16, 2)))
            .unwrap();
        let y = session
            .submit_at(4, Box::new(SynthSequence::new(attn, 2, 16, 2)))
            .unwrap();
        let z = session
            .submit_at(4, Box::new(SynthSequence::new(attn, 3, 16, 2)))
            .unwrap();
        session.run_to_completion();
        // max_batch = 1 serializes admission, so completion order is
        // admission order.
        let done = |id| session.completion_step(id).unwrap();
        assert!(done(early) < done(x));
        assert!(done(x) < done(y), "tied arrivals out of submission order");
        assert!(done(y) < done(z), "tied arrivals out of submission order");
    }

    #[test]
    fn occupancy_metrics_reflect_post_evict_state() {
        // A completing sequence is evicted within its final step; that
        // step's occupancy metrics must show the post-evict pool, not the
        // pre-evict snapshot.
        let attn = AttentionConfig::gqa(4, 2, 16);
        let config = ServeConfig::new(8, 32, 0, 4).with_devices(2, Partitioning::HeadModulo);
        let mut session = ServeSession::new(decoder(attn), config);
        session
            .submit(Box::new(SynthSequence::new(attn, 5, 40, 2)))
            .unwrap();
        let m0 = session.step().unwrap();
        assert!(m0.pool_utilization > 0.0);
        let m1 = session.step().unwrap();
        assert_eq!(m1.completed, 1);
        assert_eq!(m1.pool_utilization, 0.0, "post-evict occupancy");
        for d in &m1.per_device {
            assert_eq!(d.page_occupancy, 0.0, "post-evict device occupancy");
        }
        assert_eq!(session.store().free_pages(), 2 * 8);
    }

    #[test]
    fn oversized_requests_are_rejected_at_submit() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(4, 64, 0, 8));
        let err = session
            .submit(Box::new(SynthSequence::new(attn, 0, 64 * 5, 1)))
            .unwrap_err();
        assert_eq!(
            err,
            AdmissionError::TooLarge {
                needed_pages: 6,
                total_pages: 4
            }
        );
    }

    #[test]
    fn zero_generation_requests_are_rejected_at_submit() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(4, 64, 0, 8));
        let err = session
            .submit(Box::new(SynthSequence::new(attn, 0, 10, 0)))
            .unwrap_err();
        assert_eq!(err, AdmissionError::EmptyGeneration);
        assert!(session.step().is_none());
    }

    #[test]
    fn forked_requests_share_prompt_pages_and_stay_bitwise() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        // Prompt 128 = Nr: block-aligned, every prompt page shareable.
        let (prompt, gen) = (128usize, 6usize);
        let gen_seeds = [7u64, 100, 101, 102];
        let run = |forked: bool| {
            // Radix caching off: this test isolates *explicit* fork
            // sharing, so the unshared baseline must not dedup by content.
            let cfg = ServeConfig::new(64, 32, 0, 8).with_prefix_cache(false);
            let mut session = ServeSession::new(decoder(attn), cfg);
            let parent = session
                .submit(Box::new(SynthSequence::new(attn, 7, prompt, gen)))
                .unwrap();
            let mut ids = vec![parent];
            for &gs in &gen_seeds[1..] {
                let model = Box::new(SynthSequence::forked(attn, 7, gs, prompt, gen));
                ids.push(if forked {
                    session.submit_forked(parent, model).unwrap()
                } else {
                    session.submit(model).unwrap()
                });
            }
            let summary = session.run_to_completion();
            assert_eq!(summary.completed, 4);
            (session, ids, summary)
        };
        let (shared, shared_ids, ssum) = run(true);
        let (unshared, unshared_ids, usum) = run(false);
        assert_eq!(ssum.forks, 3);
        assert_eq!(usum.forks, 0);
        let m0 = &shared.metrics()[0];
        assert_eq!((m0.admitted, m0.forked), (4, 3));
        assert_eq!(m0.shared_pages, prompt / 32, "all 4 prompt pages shared");
        assert_eq!(m0.logical_pages - m0.physical_pages, 3 * (prompt / 32));
        assert!(m0.shared_bytes_saved > 0);
        // The acceptance bar: strictly fewer physical pages at equal
        // output.
        assert!(
            ssum.peak_physical_pages < usum.peak_physical_pages,
            "sharing did not shrink the footprint: {} vs {}",
            ssum.peak_physical_pages,
            usum.peak_physical_pages
        );
        // Every stream — parent and every forked child — is bitwise
        // identical to its unshared twin and to the contiguous replay.
        for (i, (sid, uid)) in shared_ids.iter().zip(&unshared_ids).enumerate() {
            assert_eq!(shared.stream(*sid), unshared.stream(*uid), "request {i}");
            let want = replay_contiguous(
                &decoder(attn),
                &mut SynthSequence::forked(attn, 7, gen_seeds[i], prompt, gen),
            );
            assert_eq!(shared.stream(*sid).unwrap(), want, "request {i}");
        }
        // Everything drained and every refcount returned to zero.
        assert_eq!(shared.store().free_pages(), shared.store().total_pages());
    }

    #[test]
    fn cascade_grouping_dedups_compute_and_stays_bitwise() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        // Prompt 128 = Nr = one packed block on 4 pages of 32 tokens.
        let (prompt, gen) = (128usize, 6usize);
        let gen_seeds = [7u64, 100, 101, 102];
        let run = |shared_attn: bool| {
            let cfg = ServeConfig::new(64, 32, 0, 8).with_shared_attn(shared_attn);
            let mut session = ServeSession::new(decoder(attn), cfg);
            let parent = session
                .submit(Box::new(SynthSequence::new(attn, 7, prompt, gen)))
                .unwrap();
            let mut ids = vec![parent];
            for &gs in &gen_seeds[1..] {
                let model = Box::new(SynthSequence::forked(attn, 7, gs, prompt, gen));
                ids.push(session.submit_forked(parent, model).unwrap());
            }
            let summary = session.run_to_completion();
            assert_eq!(summary.completed, 4);
            (session, ids, summary)
        };
        let (on, on_ids, on_sum) = run(true);
        let (off, off_ids, off_sum) = run(false);

        // Grouping is a pure optimization: identical streams, and both
        // match the uninterrupted contiguous replay.
        for (i, (a, b)) in on_ids.iter().zip(&off_ids).enumerate() {
            assert_eq!(on.stream(*a), off.stream(*b), "request {i}");
            let want = replay_contiguous(
                &decoder(attn),
                &mut SynthSequence::forked(attn, 7, gen_seeds[i], prompt, gen),
            );
            assert_eq!(on.stream(*a).unwrap(), want, "request {i}");
        }

        // The off run never groups; the on run groups every step (no
        // lineage flushes past the shared block during 6 gen tokens):
        // one cascade unit per kv head, all four sequences sharing.
        assert_eq!(off_sum.shared_attn_groups, 0);
        assert_eq!(off_sum.prefix_pages_walked_saved, 0);
        let m0 = &on.metrics()[0];
        assert_eq!(m0.shared_attn_groups, attn.heads_kv);
        // Saved walks reconcile with the storage-sharing stats: each of
        // heads_kv units skips (sharers − 1) × shared prompt pages.
        assert_eq!(m0.shared_pages, prompt / 32);
        assert_eq!(
            m0.prefix_pages_walked_saved,
            attn.heads_kv * (gen_seeds.len() - 1) * m0.shared_pages
        );
        assert_eq!(
            on_sum.shared_attn_groups,
            attn.heads_kv * on_sum.steps,
            "the group persists across every decode step"
        );

        // The whole point: strictly less dequant work for the same tokens.
        assert!(
            on_sum.dequant.total() < off_sum.dequant.total(),
            "cascade grouping must dedup dequant traffic ({} vs {})",
            on_sum.dequant.total(),
            off_sum.dequant.total()
        );
    }

    #[test]
    fn prefix_cache_dedups_identical_prompts_and_forms_cascade_groups() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        // Prompt 128 = Nr = one full page run (4 pages of 32 tokens).
        let (prompt, gen) = (128usize, 6usize);
        let gen_seeds = [7u64, 100, 101, 102];
        let run = |cache: bool| {
            let cfg = ServeConfig::new(64, 32, 0, 8).with_prefix_cache(cache);
            let mut session = ServeSession::new(decoder(attn), cfg);
            // Four *independent* submissions of the same prompt — no fork
            // lineage anywhere.
            let ids: Vec<RequestId> = gen_seeds
                .iter()
                .map(|&gs| {
                    session
                        .submit(Box::new(SynthSequence::forked(attn, 7, gs, prompt, gen)))
                        .unwrap()
                })
                .collect();
            let summary = session.run_to_completion();
            assert_eq!(summary.completed, 4);
            assert_eq!(summary.forks, 0, "no lineage anywhere");
            (session, ids, summary)
        };
        let (on, on_ids, on_sum) = run(true);
        let (off, off_ids, off_sum) = run(false);

        // The first tenant misses and registers; the other three adopt
        // its sealed prompt run zero-copy.
        assert_eq!(on_sum.prefix_cache_misses, 1);
        assert_eq!(on_sum.prefix_cache_hits, 3);
        assert_eq!(on_sum.prefix_pages_reused, 3 * (prompt / 32));
        assert!(on_sum.prefix_bytes_reused > 0);
        assert_eq!(off_sum.prefix_cache_hits + off_sum.prefix_cache_misses, 0);

        // Adopted pages read as shared exactly like forked ones...
        let m0 = &on.metrics()[0];
        assert_eq!(m0.shared_pages, prompt / 32);
        assert_eq!(m0.logical_pages - m0.physical_pages, 3 * (prompt / 32));
        // ...and feed the same cascade grouping an explicit fork would:
        // one multi-query unit per kv head, all four tenants sharing.
        assert_eq!(m0.shared_attn_groups, attn.heads_kv);
        assert!(on_sum.shared_attn_groups > 0);
        assert_eq!(
            off_sum.shared_attn_groups, 0,
            "nothing shared without the cache"
        );
        assert!(
            on_sum.peak_physical_pages < off_sum.peak_physical_pages,
            "content dedup did not shrink the footprint: {} vs {}",
            on_sum.peak_physical_pages,
            off_sum.peak_physical_pages
        );

        // The bitwise guarantee: every stream identical to its cache-off
        // twin and to the uninterrupted contiguous replay.
        for (i, (a, b)) in on_ids.iter().zip(&off_ids).enumerate() {
            assert_eq!(on.stream(*a), off.stream(*b), "request {i}");
            let want = replay_contiguous(
                &decoder(attn),
                &mut SynthSequence::forked(attn, 7, gen_seeds[i], prompt, gen),
            );
            assert_eq!(on.stream(*a).unwrap(), want, "request {i}");
        }
        // Drained: the cache may still pin the prompt run, but the
        // admission budget counts those pages free.
        assert_eq!(on.store().free_pages(), on.store().total_pages());
    }

    #[test]
    fn prefix_cache_matches_explicit_fork_page_footprint_at_8_tenants() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let (prompt, gen) = (128usize, 6usize);
        let tenants = 8usize;
        let model = |i: usize| -> Box<SynthSequence> {
            if i == 0 {
                Box::new(SynthSequence::new(attn, 7, prompt, gen))
            } else {
                Box::new(SynthSequence::forked(attn, 7, 100 + i as u64, prompt, gen))
            }
        };
        // Explicit-fork baseline: one parent, seven forked children,
        // radix caching off.
        let cfg = ServeConfig::new(64, 32, 0, tenants).with_prefix_cache(false);
        let mut forked = ServeSession::new(decoder(attn), cfg);
        let parent = forked.submit(model(0)).unwrap();
        let mut fork_ids = vec![parent];
        for i in 1..tenants {
            fork_ids.push(forked.submit_forked(parent, model(i)).unwrap());
        }
        let fsum = forked.run_to_completion();
        assert_eq!(fsum.completed, tenants);
        assert_eq!(fsum.forks, tenants - 1);

        // Radix run: the same eight requests submitted independently.
        let mut radix = ServeSession::new(decoder(attn), ServeConfig::new(64, 32, 0, tenants));
        let radix_ids: Vec<RequestId> = (0..tenants)
            .map(|i| radix.submit(model(i)).unwrap())
            .collect();
        let rsum = radix.run_to_completion();
        assert_eq!(rsum.completed, tenants);
        assert_eq!(rsum.forks, 0);
        assert_eq!(rsum.prefix_cache_hits, tenants - 1);
        assert_eq!(rsum.prefix_pages_reused, (tenants - 1) * (prompt / 32));
        assert!(rsum.shared_attn_groups > 0);

        // The acceptance bar: content dedup lands within one page run of
        // the explicit-fork footprint (here it matches exactly, but the
        // contract only promises the run).
        assert!(
            rsum.peak_physical_pages <= fsum.peak_physical_pages + prompt / 32,
            "radix {} vs fork {}",
            rsum.peak_physical_pages,
            fsum.peak_physical_pages
        );
        for (a, b) in radix_ids.iter().zip(&fork_ids) {
            assert_eq!(radix.stream(*a), forked.stream(*b));
        }
    }

    #[test]
    fn fork_falls_back_to_prefill_when_parent_is_gone() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(64, 32, 0, 8));
        let parent = session
            .submit(Box::new(SynthSequence::new(attn, 3, 96, 2)))
            .unwrap();
        // The child arrives long after the parent finished: no live
        // sequence to fork — admission must prefill instead, bitwise.
        let child = session
            .submit_forked_at(
                10,
                parent,
                Box::new(SynthSequence::forked(attn, 3, 55, 96, 3)),
            )
            .unwrap();
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 2);
        assert_eq!(summary.forks, 0, "nothing to fork off");
        let want = replay_contiguous(
            &decoder(attn),
            &mut SynthSequence::forked(attn, 3, 55, 96, 3),
        );
        assert_eq!(session.stream(child).unwrap(), want);
        // A boundary quantized away also falls back: prompt 100 < Nr, but
        // the parent decodes past the flush boundary before the child
        // arrives (100 + 40 > 128), so the residual rows are gone.
        let mut s2 = ServeSession::new(decoder(attn), ServeConfig::new(64, 32, 0, 8));
        let p2 = s2
            .submit(Box::new(SynthSequence::new(attn, 4, 100, 40)))
            .unwrap();
        let c2 = s2
            .submit_forked_at(35, p2, Box::new(SynthSequence::forked(attn, 4, 66, 100, 2)))
            .unwrap();
        let sum2 = s2.run_to_completion();
        assert_eq!(sum2.completed, 2);
        assert_eq!(sum2.forks, 0, "boundary out of reach");
        let want2 = replay_contiguous(
            &decoder(attn),
            &mut SynthSequence::forked(attn, 4, 66, 100, 2),
        );
        assert_eq!(s2.stream(c2).unwrap(), want2);
    }

    #[test]
    fn unknown_fork_parents_are_rejected_at_submit() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(4, 64, 0, 8));
        let err = session
            .submit_forked(42, Box::new(SynthSequence::new(attn, 0, 10, 2)))
            .unwrap_err();
        assert_eq!(err, AdmissionError::UnknownParent(42));
    }

    #[test]
    fn preempted_forked_child_resumes_into_reshared_pages() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        // 6 pages of 32 tokens. Parent: 64-prompt + 40 gen = 4 pages.
        // The child forks at 64 sharing both prompt pages, adding one
        // private page (5 physical, 1 free). The late fresh request needs
        // 2 pages → preempts the child (youngest), whose swap-out frees
        // only its private page (the prompt survives through the parent);
        // its blob later swaps back in re-sharing that resident prompt.
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(6, 32, 0, 8))
            .with_policy(FcfsPreempt::default());
        let parent = session
            .submit(Box::new(SynthSequence::new(attn, 9, 64, 40)))
            .unwrap();
        let child = session
            .submit_forked(parent, Box::new(SynthSequence::forked(attn, 9, 77, 64, 30)))
            .unwrap();
        let late = session
            .submit_at(4, Box::new(SynthSequence::new(attn, 5, 40, 4)))
            .unwrap();
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 3);
        assert_eq!(summary.forks, 1);
        assert_eq!(summary.preemptions, 1);
        assert_eq!(summary.resumes, 1);
        for (id, model) in [
            (parent, SynthSequence::new(attn, 9, 64, 40)),
            (child, SynthSequence::forked(attn, 9, 77, 64, 30)),
            (late, SynthSequence::new(attn, 5, 40, 4)),
        ] {
            let mut model = model;
            let want = replay_contiguous(&decoder(attn), &mut model);
            assert_eq!(session.stream(id).unwrap(), want, "request {id}");
        }
        assert_eq!(session.store().free_pages(), 6, "refcounts drained");
    }

    #[test]
    fn futility_guard_counts_pages_shared_only_among_victims() {
        // 5 pages of 32 tokens. Parent (64+2, 3 pages) forks two children
        // (64+30 each: 2 shared prompt pages + 1 private page apiece) and
        // finishes at step 2, leaving the prompt pages shared ONLY between
        // the two children (refcount 2) and 1 page free. A late request
        // needing 4 pages then arrives: per-victim exclusive pages sum to
        // just 2, but preempting BOTH children frees all 4 of their pages
        // (the second swap-out drops the shared pages' last references).
        // The futility guard must see that and let the preemptions happen
        // (regression: summing exclusively-held pages declared this futile
        // and the late request waited out the children's 30-token runs).
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(5, 32, 0, 8))
            .with_policy(FcfsPreempt::default());
        let parent = session
            .submit(Box::new(SynthSequence::new(attn, 1, 64, 2)))
            .unwrap();
        let kids: Vec<RequestId> = [30u64, 31]
            .iter()
            .map(|&gs| {
                session
                    .submit_forked(parent, Box::new(SynthSequence::forked(attn, 1, gs, 64, 30)))
                    .unwrap()
            })
            .collect();
        let late = session
            .submit_at(4, Box::new(SynthSequence::new(attn, 7, 100, 2)))
            .unwrap();
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 4);
        assert_eq!(summary.forks, 2);
        assert_eq!(
            summary.preemptions, 2,
            "guard declared a viable double preemption futile"
        );
        let late_done = session.completion_step(late).unwrap();
        for kid in &kids {
            assert!(
                late_done < session.completion_step(*kid).unwrap(),
                "late request waited out the children"
            );
        }
        for (id, model) in [
            (parent, SynthSequence::new(attn, 1, 64, 2)),
            (kids[0], SynthSequence::forked(attn, 1, 30, 64, 30)),
            (kids[1], SynthSequence::forked(attn, 1, 31, 64, 30)),
            (late, SynthSequence::new(attn, 7, 100, 2)),
        ] {
            let mut model = model;
            let want = replay_contiguous(&decoder(attn), &mut model);
            assert_eq!(session.stream(id).unwrap(), want, "request {id}");
        }
        assert_eq!(session.store().free_pages(), 5);
    }

    #[test]
    fn metrics_pair_measured_and_modeled_costs() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(256, 64, 1, 8));
        session
            .submit(Box::new(SynthSequence::new(attn, 3, 200, 2)))
            .unwrap();
        let m = session.step().unwrap();
        assert_eq!(m.batch, 1);
        assert_eq!(m.kv_tokens, 200);
        assert!(m.kv_tokens_per_s > 0.0);
        assert!(m.modeled_step_s > 0.0);
        assert!(m.dequant.total() > 0, "fused path streams dequant work");
        assert!(m.pool_utilization > 0.0);
        let m2 = session.step().unwrap();
        assert_eq!(m2.kv_tokens, 201);
        assert_eq!(m2.completed, 1);
        assert!(session.step().is_none());
    }

    #[test]
    fn device_loss_mid_run_recovers_all_streams_bitwise() {
        let attn = AttentionConfig::gqa(8, 4, 16);
        let dec = decoder(attn);
        let config = ServeConfig::new(64, 8, 2, 8).with_devices(4, Partitioning::HeadModulo);
        let plan = FaultPlan::new().device_loss(2, 1);
        let mut session = ServeSession::new(dec.clone(), config).with_faults(plan);
        let ids: Vec<RequestId> = (0..4)
            .map(|i| {
                session
                    .submit(Box::new(SynthSequence::new(
                        attn,
                        i,
                        20 + 8 * i as usize,
                        6,
                    )))
                    .unwrap()
            })
            .collect();
        let summary = session.run_to_completion();

        // The session did not abort: every request completed, on 3
        // surviving devices, and the summary reports the fault.
        assert_eq!(summary.completed, 4);
        assert_eq!(summary.faults_injected, 1);
        assert!(summary.recoveries >= 1, "actives at step 2 must recover");
        assert!(summary.degraded_steps >= 1);
        assert_eq!(summary.requests_failed, 0);
        assert_eq!(session.devices(), 3);
        assert_eq!(session.lost_devices(), &[1]);
        // Recovered streams are bitwise identical to uninterrupted
        // contiguous replays, and no pages leak.
        for (i, id) in ids.iter().enumerate() {
            let mut m = SynthSequence::new(attn, i as u64, 20 + 8 * i, 6);
            assert_eq!(
                session.stream(*id).unwrap(),
                replay_contiguous(&dec, &mut m).as_slice(),
                "request {i} diverged after device loss"
            );
        }
        assert_eq!(session.store().free_pages(), session.store().devices() * 64);
    }

    #[test]
    fn losing_every_device_still_serves_on_the_last_one() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let dec = decoder(attn);
        let config = ServeConfig::new(32, 8, 0, 4).with_devices(2, Partitioning::HeadModulo);
        let plan = FaultPlan::new().device_loss(1, 0).device_loss(3, 0);
        let mut session = ServeSession::new(dec.clone(), config).with_faults(plan);
        let id = session
            .submit(Box::new(SynthSequence::new(attn, 3, 30, 8)))
            .unwrap();
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 1);
        // The second loss lands on a 1-device session, which keeps its
        // only (fresh) device rather than dropping to zero.
        assert_eq!(session.devices(), 1);
        assert_eq!(summary.faults_injected, 2);
        let mut m = SynthSequence::new(attn, 3, 30, 8);
        assert_eq!(
            session.stream(id).unwrap(),
            replay_contiguous(&dec, &mut m).as_slice()
        );
    }

    #[test]
    fn permanent_page_seizure_drives_typed_backpressure() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(8, 32, 0, 8))
            .with_faults(FaultPlan::new().pool_exhaustion(0, 4, None));
        let first = session
            .submit(Box::new(SynthSequence::new(attn, 1, 40, 4)))
            .unwrap();
        // The seizure fires at the top of the first step.
        session.step();
        // 144 tokens → 5 pages: within the 8-page pool, but over the 4
        // pages that can ever free up under the permanent seizure.
        let err = session
            .submit(Box::new(SynthSequence::new(attn, 2, 140, 4)))
            .unwrap_err();
        assert_eq!(
            err,
            AdmissionError::Backpressure {
                needed_pages: 5,
                available_pages: 4,
            }
        );
        assert_eq!(err.shortfall_pages(), 1);
        // A request that fits the remainder is still admissible.
        let second = session
            .submit(Box::new(SynthSequence::new(attn, 3, 40, 4)))
            .unwrap();
        session.run_to_completion();
        // The seizure landed in the manually-stepped sample, before the
        // summary window opened.
        assert_eq!(session.metrics()[0].faults_injected, 1);
        assert!(session.is_finished(first) && session.is_finished(second));
        // Run over: hogs released, pool whole again.
        assert_eq!(session.store().free_pages(), 8);
    }

    #[test]
    fn timed_page_seizure_delays_admission_without_losing_work() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let dec = decoder(attn);
        let mut session = ServeSession::new(dec.clone(), ServeConfig::new(4, 32, 0, 8))
            .with_faults(FaultPlan::new().pool_exhaustion(0, 4, Some(5)));
        let id = session
            .submit(Box::new(SynthSequence::new(attn, 9, 40, 4)))
            .unwrap();
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.faults_injected, 1);
        let mut m = SynthSequence::new(attn, 9, 40, 4);
        assert_eq!(
            session.stream(id).unwrap(),
            replay_contiguous(&dec, &mut m).as_slice()
        );
        // Admission waited out the 5-step hold.
        assert!(session.completion_step(id).unwrap() >= 5);
    }

    #[test]
    fn corrupt_swap_blob_recovers_by_recompute_bitwise() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let dec = decoder(attn);
        // Tight pool + preempting policy: the late arrival forces a swap
        // out, and the armed corruption bit-flips the victim's blob so
        // its swap-in must fail the checksum and recompute instead.
        let mut session = ServeSession::new(dec.clone(), ServeConfig::new(4, 32, 0, 8))
            .with_policy(FcfsPreempt::default())
            .with_faults(FaultPlan::new().corrupt_swap(0, 0x00AB_CDEF));
        let early = session
            .submit(Box::new(SynthSequence::new(attn, 1, 70, 10)))
            .unwrap();
        let late = session
            .submit_at(3, Box::new(SynthSequence::new(attn, 2, 40, 3)))
            .unwrap();
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 2);
        assert!(summary.preemptions >= 1, "scenario must preempt");
        assert_eq!(summary.faults_injected, 1);
        assert!(summary.recoveries >= 1, "checksum must reject the blob");
        for (id, seed, prompt, gen) in [(early, 1, 70, 10), (late, 2, 40, 3)] {
            let mut m = SynthSequence::new(attn, seed, prompt, gen);
            assert_eq!(
                session.stream(id).unwrap(),
                replay_contiguous(&dec, &mut m).as_slice()
            );
        }
        assert_eq!(session.store().free_pages(), 4, "pages leaked");
    }

    #[test]
    fn transient_link_retries_price_latency_not_tokens() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let dec = decoder(attn);
        let submit = |session: &mut ServeSession| {
            session
                .submit(Box::new(SynthSequence::new(attn, 5, 30, 5)))
                .unwrap()
        };
        let config = || ServeConfig::new(64, 32, 0, 4).with_devices(2, Partitioning::HeadModulo);
        let mut clean = ServeSession::new(dec.clone(), config());
        let clean_id = submit(&mut clean);
        clean.run_to_completion();
        let mut faulty =
            ServeSession::new(dec, config()).with_faults(FaultPlan::new().transient_link(1, 3));
        let faulty_id = submit(&mut faulty);
        let summary = faulty.run_to_completion();
        assert_eq!(summary.retries, 3);
        assert_eq!(summary.faults_injected, 1);
        // Retries slow the modeled clock at the faulted step…
        assert!(
            faulty.metrics()[1].modeled_interconnect_s > clean.metrics()[1].modeled_interconnect_s
        );
        // …and change no tokens.
        assert_eq!(clean.stream(clean_id), faulty.stream(faulty_id));
    }

    #[test]
    fn misrouted_batches_fail_typed_without_poisoning_the_session() {
        // Direct API check of the failure surface: a request the session
        // cannot serve is reported via `failure`, not a panic.
        let attn = AttentionConfig::gqa(2, 1, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(8, 32, 0, 8));
        let id = session
            .submit(Box::new(SynthSequence::new(attn, 4, 20, 3)))
            .unwrap();
        session.run_to_completion();
        assert!(session.is_finished(id));
        assert!(!session.is_failed(id));
        assert_eq!(session.failure(id), None);
    }

    #[test]
    fn obs_disabled_by_default_records_nothing() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let mut session = ServeSession::new(decoder(attn), ServeConfig::new(64, 32, 0, 4));
        session
            .submit(Box::new(SynthSequence::new(attn, 1, 30, 4)))
            .unwrap();
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.slo, bd_obs::SloSummary::default());
        assert_eq!(session.tracer().recorded(), 0);
        assert_eq!(session.event_log().recorded(), 0);
        assert!(!session.lifecycle().is_enabled());
    }

    #[test]
    fn obs_spans_events_and_slo_reconcile_with_summary() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let dec = decoder(attn);
        let mut session = ServeSession::new(
            dec,
            ServeConfig::new(256, 32, 0, 8).with_devices(2, Partitioning::HeadModulo),
        )
        .with_obs(ObsConfig::all());
        let gens: [usize; 3] = [5, 4, 6];
        for (i, gen) in gens.iter().enumerate() {
            session
                .submit(Box::new(SynthSequence::new(attn, i as u64, 40, *gen)))
                .unwrap();
        }
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 3);

        let tokens: usize = gens.iter().sum();
        let slo = summary.slo;
        assert_eq!(slo.submitted, 3);
        assert_eq!(slo.admitted, 3);
        assert_eq!(slo.completed, 3);
        assert_eq!(slo.failed, 0);
        assert_eq!(slo.tokens, tokens as u64);
        // One TTFT sample per request that produced a token; every later
        // token is exactly one TBT gap.
        assert_eq!(slo.ttft_steps.count, 3);
        assert_eq!(slo.tbt_steps.count, (tokens - 3) as u64);
        assert_eq!(slo.queue_wait_steps.count, 3);
        assert_eq!(slo.goodput_tok_s.count, 3);
        assert!(slo.ttft_s.p99.is_finite());
        assert!(slo.aggregate_goodput_tok_s > 0.0);

        // Event log reconciles with the lifecycle counters.
        let events = session.event_log();
        assert_eq!(events.count_event("submit"), 3);
        assert_eq!(events.count_event("admit"), 3);
        assert_eq!(events.count_event("complete"), 3);
        assert_eq!(events.count_event("preempt"), 0);

        // Registry counters agree too.
        let reg = session.metrics_registry();
        assert_eq!(reg.counter("serve.submitted"), 3);
        assert_eq!(reg.counter("serve.admitted"), 3);
        assert_eq!(reg.counter("serve.completions"), 3);
        assert_eq!(reg.counter("serve.tokens"), tokens as u64);

        // Spans: one "step" wall span per summary step, an "execute"
        // modeled span per (step, device), and worker "execute" wall spans
        // for every work unit of every step.
        let spans = session.tracer().snapshot();
        let count = |name: &str, domain: ClockDomain| {
            spans
                .iter()
                .filter(|s| s.name == name && s.domain == domain)
                .count()
        };
        assert_eq!(count("step", ClockDomain::Wall), summary.steps);
        assert_eq!(count("merge", ClockDomain::Wall), summary.steps);
        assert_eq!(
            count("execute", ClockDomain::Modeled),
            summary.steps * session.devices()
        );
        assert!(count("execute", ClockDomain::Wall) >= summary.steps);
        assert_eq!(session.tracer().dropped(), 0);

        // The exported Chrome trace parses and carries every span.
        let trace = session.tracer().chrome_trace_json();
        let parsed = bd_obs::json::parse(&trace).expect("trace must be valid JSON");
        let n_x = parsed
            .get("traceEvents")
            .and_then(bd_obs::json::JsonValue::as_array)
            .expect("traceEvents array")
            .iter()
            .filter(|e| e.get("ph").and_then(bd_obs::json::JsonValue::as_str) == Some("X"))
            .count();
        assert_eq!(n_x, spans.len());
    }

    #[test]
    fn obs_attributes_preemptions_faults_and_recoveries() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let dec = decoder(attn);
        // Tight pool + preempting policy + a device loss: exercises the
        // preempt/resume and recovery attribution paths.
        let mut session = ServeSession::new(
            dec,
            ServeConfig::new(8, 32, 0, 4).with_devices(2, Partitioning::HeadModulo),
        )
        .with_policy(FcfsPreempt::default())
        .with_faults(FaultPlan::new().device_loss(3, 1))
        .with_obs(ObsConfig::all());
        session
            .submit(Box::new(SynthSequence::new(attn, 1, 70, 10)))
            .unwrap();
        session
            .submit_at(2, Box::new(SynthSequence::new(attn, 2, 40, 3)))
            .unwrap();
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, 2);
        assert!(summary.faults_injected >= 1);
        let slo = summary.slo;
        assert_eq!(slo.completed, 2);
        assert_eq!(slo.preemptions as usize, summary.preemptions);
        assert_eq!(slo.recoveries as usize, summary.recoveries);
        let events = session.event_log();
        assert_eq!(events.count_event("preempt") as usize, summary.preemptions);
        assert_eq!(events.count_event("recovery") as usize, summary.recoveries);
        assert_eq!(events.count_event("fault_device_loss"), 1);
        assert_eq!(events.count_event("complete"), 2);
        // Degraded steps: the summary counter is the number of degraded
        // step samples, and each sample's flag is visible per step.
        assert_eq!(
            summary.degraded_steps,
            session.metrics().iter().filter(|m| m.degraded).count()
        );
        assert!(summary.degraded_steps >= 1);
    }
}
