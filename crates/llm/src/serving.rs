//! Paged serving: the analytic maximum-throughput evaluation under a
//! memory budget (paper Fig. 13 and Table I), plus the **functional**
//! entry point that runs the same Page setting on the real batched decode
//! runtime (`bd-serve`) — concurrent sequences decoding actual values
//! through the fused kernel over paged packed storage.

use crate::batching::Request;
use crate::engine::{Engine, WeightPrecision};
use crate::memory::MemoryModel;
use crate::model::ModelConfig;
use bd_baselines::DecodeSystem;
use bd_core::{AttentionConfig, BitDecoder};
use bd_gpu_sim::GpuArch;
use bd_kvcache::{PagedPool, QuantScheme};
use bd_serve::{
    AdmissionError, FcfsPreempt, ObsConfig, ServeConfig, ServeSession, ShortestRemainingFirst,
    SloSummary, SynthSequence,
};

/// Scheduling-policy selector for the functional serve entry points — a
/// plain enum mirror of `bd_serve`'s policy structs so callers (benches,
/// CLIs) can pick one without touching trait objects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServePolicy {
    /// Strict FCFS, never preempts (the default).
    Fcfs,
    /// FCFS with last-in preemption (swap-out/swap-in) under page
    /// pressure.
    FcfsPreempt,
    /// Shortest-remaining-generation-first, never preempts.
    ShortestRemainingFirst,
}

impl ServePolicy {
    /// The policy's serve-layer label.
    pub fn label(self) -> &'static str {
        match self {
            ServePolicy::Fcfs => "fcfs",
            ServePolicy::FcfsPreempt => "fcfs-preempt",
            ServePolicy::ShortestRemainingFirst => "shortest-remaining-first",
        }
    }

    /// Installs the selected policy on a session (benches and CLIs share
    /// this instead of re-matching on policy structs).
    pub fn install(self, session: ServeSession) -> ServeSession {
        match self {
            ServePolicy::Fcfs => session,
            ServePolicy::FcfsPreempt => session.with_policy(FcfsPreempt::default()),
            ServePolicy::ShortestRemainingFirst => session.with_policy(ShortestRemainingFirst),
        }
    }
}

/// Result of a serving-throughput evaluation.
#[derive(Clone, Debug)]
pub struct ServingReport {
    /// System label.
    pub system: String,
    /// Model name.
    pub model: String,
    /// Batch size actually served (memory-limited).
    pub batch: usize,
    /// Decode-step latency at that batch (seconds).
    pub step_latency_s: f64,
    /// Sustained generated tokens per second.
    pub tokens_per_s: f64,
}

/// Evaluates the maximum-throughput serving point for a system: the largest
/// page-admissible batch at `seq_len`, then tokens/s at that batch
/// (the paper's "maximum throughput ... under the largest batch sizes
/// available within GPU memory").
pub fn max_throughput(
    model: ModelConfig,
    system: &dyn DecodeSystem,
    arch: GpuArch,
    weights: WeightPrecision,
    seq_len: usize,
) -> ServingReport {
    let mem = MemoryModel::new(&model, &arch, weights);
    let batch = mem.max_batch(&model, system, seq_len);

    // Paged admission: sequences allocate page-granular blocks, so the
    // usable batch is what the page pool actually admits.
    let bytes_per_token =
        system.kv_bytes_per_token(&model.attention()) * model.layers as f64 / model.gpus as f64;
    let mut pool = PagedPool::with_budget(mem.free_bytes(), 64, bytes_per_token);
    let mut admitted = 0usize;
    for _ in 0..batch {
        let seq = pool.admit();
        if pool.grow(seq, seq_len).is_ok() {
            admitted += 1;
        } else {
            pool.release(seq);
            break;
        }
    }

    if admitted == 0 {
        return ServingReport {
            system: system.label(),
            model: model.name.to_owned(),
            batch: 0,
            step_latency_s: f64::INFINITY,
            tokens_per_s: 0.0,
        };
    }

    let engine = Engine::new(model, system, arch).with_weights(weights);
    let step = engine.decode_step_latency(admitted, seq_len);
    ServingReport {
        system: system.label(),
        model: model.name.to_owned(),
        batch: admitted,
        step_latency_s: step,
        tokens_per_s: admitted as f64 / step,
    }
}

/// Outcome of a functional serve run ([`serve_functional`]).
#[derive(Clone, Debug)]
pub struct FunctionalServeReport {
    /// Requests submitted.
    pub sequences: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Decode steps the scheduler executed.
    pub steps: usize,
    /// Total KV tokens attended across all steps.
    pub kv_tokens: u64,
    /// Measured aggregate KV-tokens per second.
    pub kv_tokens_per_s: f64,
    /// Total fast-dequant instruction slots streamed by the fused kernels.
    pub dequant_slots: u64,
    /// Sequences preempted (swapped out) during the run.
    pub preemptions: usize,
    /// Preempted sequences swapped back in during the run.
    pub resumes: usize,
    /// Shared-prompt requests admitted by forking a live parent
    /// (copy-on-write page sharing instead of a fresh prefill).
    pub forks: usize,
    /// Highest physical page allocation any step ended on — the run's
    /// page footprint, which prefix sharing shrinks.
    pub peak_physical_pages: usize,
    /// Highest per-step packed-byte deduplication sharing achieved.
    pub peak_shared_bytes_saved: usize,
    /// Host bytes moved by swap traffic, both directions.
    pub swap_bytes: f64,
    /// Cascade shared-prefix attention units executed across the run
    /// (one per `(prefix-group, kv-head, device)` per step with ≥ 2
    /// sharers).
    pub shared_attn_groups: usize,
    /// Prefix pages the cascade units did not re-walk across the run —
    /// the compute-side dedup the memory-side `peak_shared_bytes_saved`
    /// column now finally buys throughput with.
    pub prefix_pages_walked_saved: usize,
    /// Fresh admissions that adopted cached prefix pages from the
    /// content-addressed radix cache (per device).
    pub prefix_cache_hits: usize,
    /// Fresh admissions that found nothing cached to adopt (per device).
    pub prefix_cache_misses: usize,
    /// Physical pages radix hits adopted instead of re-writing.
    pub prefix_pages_reused: usize,
    /// Packed bytes those adopted pages already held.
    pub prefix_bytes_reused: usize,
    /// The emitted token stream of every request, in submission order.
    pub token_streams: Vec<Vec<u32>>,
    /// The decode step at which each request completed, in submission
    /// order.
    pub completion_steps: Vec<usize>,
    /// Request-lifecycle SLO distributions (TTFT, TBT, queue wait,
    /// goodput). All-zero unless the run was started with lifecycle
    /// tracking enabled ([`serve_trace_policy_functional_obs`]).
    pub slo: SloSummary,
}

/// Runs the paper's Page serving setting **functionally**: `sequences`
/// synthetic requests (each `prompt_len` prompt tokens, `gen_tokens` to
/// generate) decode concurrently on the `bd-serve` runtime — real values
/// through the fused kernel over paged packed storage, scheduled per step,
/// fanned across `config.workers` persistent workers. The analytic
/// [`max_throughput`] above prices this setting; this executes it.
///
/// # Errors
///
/// Propagates [`AdmissionError`] when a request cannot be served under
/// `config` (page budget larger than the whole pool, or zero tokens to
/// generate).
pub fn serve_functional(
    arch: GpuArch,
    attn: AttentionConfig,
    scheme: QuantScheme,
    sequences: usize,
    prompt_len: usize,
    gen_tokens: usize,
    config: ServeConfig,
) -> Result<FunctionalServeReport, AdmissionError> {
    let decoder = BitDecoder::builder(arch)
        .attention(attn)
        .scheme(scheme)
        .paged(true)
        .build();
    let mut session = ServeSession::new(decoder, config);
    let ids = (0..sequences)
        .map(|i| {
            session.submit(Box::new(SynthSequence::new(
                attn, i as u64, prompt_len, gen_tokens,
            )))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let summary = session.run_to_completion();
    Ok(report_from(&session, &ids, &summary))
}

/// Collects the per-request streams/latencies and run totals into a
/// [`FunctionalServeReport`].
fn report_from(
    session: &ServeSession,
    ids: &[bd_serve::RequestId],
    summary: &bd_serve::ServeSummary,
) -> FunctionalServeReport {
    FunctionalServeReport {
        sequences: ids.len(),
        completed: summary.completed,
        steps: summary.steps,
        kv_tokens: summary.kv_tokens,
        kv_tokens_per_s: summary.kv_tokens_per_s,
        dequant_slots: u64::from(summary.dequant.total()),
        preemptions: summary.preemptions,
        resumes: summary.resumes,
        forks: summary.forks,
        peak_physical_pages: summary.peak_physical_pages,
        peak_shared_bytes_saved: summary.peak_shared_bytes_saved,
        swap_bytes: summary.swap_bytes,
        shared_attn_groups: summary.shared_attn_groups,
        prefix_pages_walked_saved: summary.prefix_pages_walked_saved,
        prefix_cache_hits: summary.prefix_cache_hits,
        prefix_cache_misses: summary.prefix_cache_misses,
        prefix_pages_reused: summary.prefix_pages_reused,
        prefix_bytes_reused: summary.prefix_bytes_reused,
        token_streams: ids
            .iter()
            .map(|id| session.stream(*id).expect("submitted").to_vec())
            .collect(),
        completion_steps: ids
            .iter()
            .map(|id| session.completion_step(*id).expect("completed"))
            .collect(),
        slo: summary.slo,
    }
}

/// Runs the dominant serving pattern **functionally**: `sequences`
/// requests all carrying the same `prompt_len`-token system prompt, each
/// generating `gen_tokens` of its own continuation (per-request values
/// seeded by position). With `share_prompt` the first request is submitted
/// normally and every later one through
/// [`ServeSession::submit_forked`], so admission aliases the shared
/// prompt's packed pages copy-on-write instead of re-prefilling and
/// re-storing them; without it every request prefills privately — the
/// baseline the report's `peak_physical_pages` column is compared
/// against (the radix prefix cache is forced off in that arm, since it
/// would otherwise dedup the identical prompts by content on its own).
/// Token streams are identical either way (sharing is a storage
/// optimization, bitwise invisible).
///
/// # Errors
///
/// Propagates [`AdmissionError`] when a request cannot be served under
/// `config`.
#[allow(clippy::too_many_arguments)]
pub fn serve_shared_prompt_functional(
    arch: GpuArch,
    attn: AttentionConfig,
    scheme: QuantScheme,
    sequences: usize,
    prompt_len: usize,
    gen_tokens: usize,
    share_prompt: bool,
    config: ServeConfig,
) -> Result<FunctionalServeReport, AdmissionError> {
    let decoder = BitDecoder::builder(arch)
        .attention(attn)
        .scheme(scheme)
        .paged(true)
        .build();
    let config = if share_prompt {
        config
    } else {
        // The private-prefill baseline must not content-dedup.
        config.with_prefix_cache(false)
    };
    let mut session = ServeSession::new(decoder, config);
    // One prompt seed for everyone, a distinct generation seed each.
    const PROMPT_SEED: u64 = 0xBD;
    let mut ids = Vec::with_capacity(sequences);
    for i in 0..sequences {
        let model = Box::new(SynthSequence::forked(
            attn,
            PROMPT_SEED,
            i as u64,
            prompt_len,
            gen_tokens,
        ));
        ids.push(if share_prompt && i > 0 {
            session.submit_forked(ids[0], model)?
        } else {
            session.submit(model)?
        });
    }
    let summary = session.run_to_completion();
    Ok(report_from(&session, &ids, &summary))
}

/// Runs the multi-tenant prompt-cache pattern **functionally**:
/// `sequences` *independent* requests all carrying the same
/// `prompt_len`-token system prompt (the same synthetic prompt
/// [`serve_shared_prompt_functional`] uses), each submitted through plain
/// [`ServeSession::submit`] — **no fork lineage anywhere**. With
/// `prefix_cache` on, the content-addressed radix index dedups the
/// identical prompts transparently: every tenant after the first adopts
/// the sealed prompt pages zero-copy, the adopted pages form cascade
/// shared-attention groups exactly like an explicit fork, and the report's
/// `prefix_cache_hits` / `prefix_pages_reused` columns account for it.
/// With it off every tenant prefills privately — the baseline. Token
/// streams are identical either way.
///
/// # Errors
///
/// Propagates [`AdmissionError`] when a request cannot be served under
/// `config`.
#[allow(clippy::too_many_arguments)]
pub fn serve_prefix_cache_functional(
    arch: GpuArch,
    attn: AttentionConfig,
    scheme: QuantScheme,
    sequences: usize,
    prompt_len: usize,
    gen_tokens: usize,
    prefix_cache: bool,
    config: ServeConfig,
) -> Result<FunctionalServeReport, AdmissionError> {
    let decoder = BitDecoder::builder(arch)
        .attention(attn)
        .scheme(scheme)
        .paged(true)
        .build();
    let mut session = ServeSession::new(decoder, config.with_prefix_cache(prefix_cache));
    const PROMPT_SEED: u64 = 0xBD;
    let mut ids = Vec::with_capacity(sequences);
    for i in 0..sequences {
        let model = Box::new(SynthSequence::forked(
            attn,
            PROMPT_SEED,
            i as u64,
            prompt_len,
            gen_tokens,
        ));
        ids.push(session.submit(model)?);
    }
    let summary = session.run_to_completion();
    Ok(report_from(&session, &ids, &summary))
}

/// Runs the Page serving setting functionally under a **trace-driven
/// arrival process**: the same [`Request`] traces the analytic
/// continuous-batching simulator ([`crate::batching`]) consumes drive the
/// real `bd-serve` runtime. Each request's `arrival_s` maps to a decode
/// step at `steps_per_s` and joins the session through
/// [`ServeSession::submit_at`], so sequences enter mid-run as pages free
/// up instead of draining a pre-filled queue; an idle session
/// fast-forwards to the next arrival. Per-request synthetic values are
/// seeded by trace position, so the emitted streams are reproducible and
/// bitwise-checkable against per-sequence contiguous replay.
///
/// # Errors
///
/// Propagates [`AdmissionError`] when any request cannot be served under
/// `config`.
///
/// # Panics
///
/// Panics if `steps_per_s` is not positive.
pub fn serve_trace_functional(
    arch: GpuArch,
    attn: AttentionConfig,
    scheme: QuantScheme,
    trace: &[Request],
    steps_per_s: f64,
    config: ServeConfig,
) -> Result<FunctionalServeReport, AdmissionError> {
    serve_trace_policy_functional(
        arch,
        attn,
        scheme,
        trace,
        steps_per_s,
        config,
        ServePolicy::Fcfs,
    )
}

/// [`serve_trace_functional`] under an explicit [`ServePolicy`]: the same
/// trace-driven Page setting, but admission (and, for
/// [`ServePolicy::FcfsPreempt`], swap-out/swap-in preemption under page
/// pressure) follows the chosen scheduling policy. Streams stay
/// bitwise-checkable against per-sequence contiguous replay under every
/// policy — preemption reorders *when* sequences decode, never *what*
/// they emit.
///
/// # Errors
///
/// Propagates [`AdmissionError`] when any request cannot be served under
/// `config`.
///
/// # Panics
///
/// Panics if `steps_per_s` is not positive.
pub fn serve_trace_policy_functional(
    arch: GpuArch,
    attn: AttentionConfig,
    scheme: QuantScheme,
    trace: &[Request],
    steps_per_s: f64,
    config: ServeConfig,
    policy: ServePolicy,
) -> Result<FunctionalServeReport, AdmissionError> {
    serve_trace_policy_functional_obs(
        arch,
        attn,
        scheme,
        trace,
        steps_per_s,
        config,
        policy,
        ObsConfig::default(),
    )
}

/// [`serve_trace_policy_functional`] with an explicit [`ObsConfig`]:
/// lifecycle tracking populates the report's [`SloSummary`] (TTFT, TBT,
/// queue-wait, goodput distributions) and span tracing/event logging can
/// be armed for timeline export. With `ObsConfig::default()` this is the
/// plain entry point — every instrument off, nothing measured.
///
/// # Errors
///
/// Propagates [`AdmissionError`] when any request cannot be served under
/// `config`.
///
/// # Panics
///
/// Panics if `steps_per_s` is not positive.
#[allow(clippy::too_many_arguments)]
pub fn serve_trace_policy_functional_obs(
    arch: GpuArch,
    attn: AttentionConfig,
    scheme: QuantScheme,
    trace: &[Request],
    steps_per_s: f64,
    config: ServeConfig,
    policy: ServePolicy,
    obs: ObsConfig,
) -> Result<FunctionalServeReport, AdmissionError> {
    assert!(steps_per_s > 0.0, "steps_per_s must be positive");
    let decoder = BitDecoder::builder(arch)
        .attention(attn)
        .scheme(scheme)
        .paged(true)
        .build();
    let mut session = policy.install(ServeSession::new(decoder, config).with_obs(obs));
    let ids = trace
        .iter()
        .enumerate()
        .map(|(i, req)| {
            let arrival_step = (req.arrival_s * steps_per_s).floor() as usize;
            session.submit_at(
                arrival_step,
                Box::new(SynthSequence::new(
                    attn,
                    i as u64,
                    req.prompt_tokens,
                    req.gen_tokens,
                )),
            )
        })
        .collect::<Result<Vec<_>, _>>()?;
    let summary = session.run_to_completion();
    Ok(report_from(&session, &ids, &summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batching::synth_trace;
    use bd_baselines::{BitDecodingSys, CudaOnly, FlashDecoding};
    use bd_serve::replay_contiguous;

    fn report(model: ModelConfig, sys: &dyn DecodeSystem, w: WeightPrecision) -> ServingReport {
        max_throughput(model, sys, GpuArch::a100(), w, 32768)
    }

    #[test]
    fn functional_serving_completes_and_matches_contiguous_replay() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let r = serve_functional(
            GpuArch::a100(),
            attn,
            QuantScheme::kc4(),
            3,
            140,
            3,
            ServeConfig::new(256, 64, 2, 8),
        )
        .unwrap();
        assert_eq!(r.completed, 3);
        assert_eq!(r.steps, 3);
        assert_eq!(r.kv_tokens, 3 * (140 + 141 + 142));
        assert!(r.kv_tokens_per_s > 0.0);
        assert!(r.dequant_slots > 0);
        let dec = BitDecoder::builder(GpuArch::a100())
            .attention(attn)
            .scheme(QuantScheme::kc4())
            .paged(true)
            .build();
        for (i, stream) in r.token_streams.iter().enumerate() {
            let want = replay_contiguous(&dec, &mut SynthSequence::new(attn, i as u64, 140, 3));
            assert_eq!(stream, &want, "sequence {i}");
        }
    }

    #[test]
    fn trace_driven_serving_admits_mid_run_and_matches_replay() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        // A tight pool: later arrivals must wait for earlier sequences'
        // pages.
        let trace = synth_trace(1.5, 8.0, (40, 120), 3, 7);
        assert!(trace.len() > 2, "trace has several arrivals");
        let config =
            ServeConfig::new(16, 32, 0, 4).with_devices(2, bd_kvcache::Partitioning::HeadModulo);
        let r = serve_trace_functional(
            GpuArch::a100(),
            attn,
            QuantScheme::kc4(),
            &trace,
            2.0,
            config,
        )
        .unwrap();
        assert_eq!(r.completed, trace.len(), "every arrival is served");
        let dec = BitDecoder::builder(GpuArch::a100())
            .attention(attn)
            .scheme(QuantScheme::kc4())
            .paged(true)
            .build();
        for (i, (req, stream)) in trace.iter().zip(&r.token_streams).enumerate() {
            let want = replay_contiguous(
                &dec,
                &mut SynthSequence::new(attn, i as u64, req.prompt_tokens, req.gen_tokens),
            );
            assert_eq!(stream, &want, "sequence {i}");
        }
    }

    #[test]
    fn preempting_policy_unblocks_late_arrivals_in_the_trace_setting() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        // A big request owns the whole 4-page pool; a small one arrives
        // while it decodes.
        let trace = [
            Request {
                arrival_s: 0.0,
                prompt_tokens: 64,
                gen_tokens: 40,
            },
            Request {
                arrival_s: 5.0,
                prompt_tokens: 16,
                gen_tokens: 3,
            },
        ];
        let config = ServeConfig::new(4, 32, 0, 8);
        let run = |policy| {
            serve_trace_policy_functional(
                GpuArch::a100(),
                attn,
                QuantScheme::kc4(),
                &trace,
                1.0,
                config.clone(),
                policy,
            )
            .unwrap()
        };
        let fcfs = run(ServePolicy::Fcfs);
        let pre = run(ServePolicy::FcfsPreempt);
        assert_eq!((fcfs.preemptions, fcfs.resumes), (0, 0));
        assert_eq!((pre.preemptions, pre.resumes), (1, 1));
        assert!(pre.swap_bytes > 0.0);
        // The late small request completes strictly earlier under
        // preemption…
        assert!(pre.completion_steps[1] < fcfs.completion_steps[1]);
        // …and every stream still equals the uninterrupted contiguous
        // replay under both policies.
        let dec = BitDecoder::builder(GpuArch::a100())
            .attention(attn)
            .scheme(QuantScheme::kc4())
            .paged(true)
            .build();
        for report in [&fcfs, &pre] {
            assert_eq!(report.completed, 2);
            for (i, (req, stream)) in trace.iter().zip(&report.token_streams).enumerate() {
                let want = replay_contiguous(
                    &dec,
                    &mut SynthSequence::new(attn, i as u64, req.prompt_tokens, req.gen_tokens),
                );
                assert_eq!(stream, &want, "sequence {i}");
            }
        }
    }

    #[test]
    fn shared_prompt_serving_saves_pages_and_is_bitwise_invisible() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let config = ServeConfig::new(256, 32, 0, 8);
        let run = |share: bool| {
            serve_shared_prompt_functional(
                GpuArch::a100(),
                attn,
                QuantScheme::kc4(),
                4,
                256,
                3,
                share,
                config.clone(),
            )
            .unwrap()
        };
        let shared = run(true);
        let unshared = run(false);
        assert_eq!(shared.completed, 4);
        assert_eq!((shared.forks, unshared.forks), (3, 0));
        // The page footprint shrinks at equal output…
        assert!(
            shared.peak_physical_pages < unshared.peak_physical_pages,
            "{} vs {}",
            shared.peak_physical_pages,
            unshared.peak_physical_pages
        );
        assert!(shared.peak_shared_bytes_saved > 0);
        assert_eq!(unshared.peak_shared_bytes_saved, 0);
        // …while every stream is identical to the unshared run and to the
        // per-sequence contiguous replay.
        assert_eq!(shared.token_streams, unshared.token_streams);
        let dec = BitDecoder::builder(GpuArch::a100())
            .attention(attn)
            .scheme(QuantScheme::kc4())
            .paged(true)
            .build();
        for (i, stream) in shared.token_streams.iter().enumerate() {
            let want = replay_contiguous(
                &dec,
                &mut SynthSequence::forked(attn, 0xBD, i as u64, 256, 3),
            );
            assert_eq!(stream, &want, "sequence {i}");
        }
    }

    #[test]
    fn prefix_cache_serving_dedups_identical_tenants_bitwise_invisibly() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let config = ServeConfig::new(256, 32, 0, 8);
        let run = |cache: bool| {
            serve_prefix_cache_functional(
                GpuArch::a100(),
                attn,
                QuantScheme::kc4(),
                4,
                256,
                3,
                cache,
                config.clone(),
            )
            .unwrap()
        };
        let cached = run(true);
        let cold = run(false);
        assert_eq!(cached.completed, 4);
        // No forks anywhere: the tenants are independent submissions and
        // the dedup is purely content-addressed.
        assert_eq!((cached.forks, cold.forks), (0, 0));
        assert_eq!(cached.prefix_cache_misses, 1);
        assert_eq!(cached.prefix_cache_hits, 3);
        assert!(cached.prefix_pages_reused > 0);
        assert!(cached.prefix_bytes_reused > 0);
        assert_eq!(cold.prefix_cache_hits + cold.prefix_pages_reused, 0);
        // Adopted pages shrink the footprint at equal output…
        assert!(
            cached.peak_physical_pages < cold.peak_physical_pages,
            "{} vs {}",
            cached.peak_physical_pages,
            cold.peak_physical_pages
        );
        // …and every stream is identical to the cache-off run and to the
        // per-sequence contiguous replay.
        assert_eq!(cached.token_streams, cold.token_streams);
        let dec = BitDecoder::builder(GpuArch::a100())
            .attention(attn)
            .scheme(QuantScheme::kc4())
            .paged(true)
            .build();
        for (i, stream) in cached.token_streams.iter().enumerate() {
            let want = replay_contiguous(
                &dec,
                &mut SynthSequence::forked(attn, 0xBD, i as u64, 256, 3),
            );
            assert_eq!(stream, &want, "sequence {i}");
        }
    }

    #[test]
    fn trace_serving_with_lifecycle_tracking_reports_slo() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let trace = synth_trace(2.0, 5.0, (30, 80), 2, 11);
        let config = ServeConfig::new(64, 32, 0, 4);
        let tracked = serve_trace_policy_functional_obs(
            GpuArch::a100(),
            attn,
            QuantScheme::kc4(),
            &trace,
            2.0,
            config.clone(),
            ServePolicy::Fcfs,
            ObsConfig::default().with_lifecycle(true),
        )
        .unwrap();
        assert_eq!(tracked.completed, trace.len());
        assert_eq!(tracked.slo.completed as usize, tracked.completed);
        assert_eq!(tracked.slo.submitted as usize, trace.len());
        assert_eq!(tracked.slo.ttft_steps.count as usize, trace.len());
        assert!(tracked.slo.ttft_s.p99.is_finite());
        assert!(tracked.slo.aggregate_goodput_tok_s > 0.0);
        // Observability is bitwise invisible: the plain entry point emits
        // the same streams and an all-zero SLO block.
        let plain = serve_trace_functional(
            GpuArch::a100(),
            attn,
            QuantScheme::kc4(),
            &trace,
            2.0,
            config,
        )
        .unwrap();
        assert_eq!(plain.slo, SloSummary::default());
        assert_eq!(plain.token_streams, tracked.token_streams);
    }

    #[test]
    fn trace_driven_serving_is_deterministic() {
        let attn = AttentionConfig::gqa(2, 1, 16);
        let trace = synth_trace(2.0, 5.0, (30, 80), 2, 11);
        let run = || {
            serve_trace_functional(
                GpuArch::a100(),
                attn,
                QuantScheme::kc2(),
                &trace,
                4.0,
                ServeConfig::new(8, 32, 1, 2),
            )
            .unwrap()
            .token_streams
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn functional_serving_is_deterministic_across_runs() {
        let attn = AttentionConfig::gqa(4, 2, 16);
        let run = || {
            serve_functional(
                GpuArch::a100(),
                attn,
                QuantScheme::kc2(),
                4,
                260,
                2,
                ServeConfig::new(256, 32, 3, 2), // batch-capped: two waves
            )
            .unwrap()
            .token_streams
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bitdecoding_beats_fp16_and_qserve_on_gqa_serving() {
        // Paper Fig. 13 (LLaMA-3.1-8B, 32K): BitDecoding > FlashDecoding-v2
        // > QServe.
        let model = ModelConfig::llama31_8b();
        let fp16 = report(model, &FlashDecoding::v2(), WeightPrecision::Fp16);
        let bd = report(model, &BitDecodingSys::kc4(), WeightPrecision::Fp16);
        let qserve = report(model, &CudaOnly::qserve(), WeightPrecision::Int4);
        assert!(
            bd.tokens_per_s > 2.0 * fp16.tokens_per_s,
            "bd {} vs fp16 {}",
            bd.tokens_per_s,
            fp16.tokens_per_s
        );
        assert!(
            qserve.tokens_per_s < fp16.tokens_per_s,
            "qserve {} should trail fp16 {} on GQA",
            qserve.tokens_per_s,
            fp16.tokens_per_s
        );
        assert!(
            bd.tokens_per_s > 2.0 * qserve.tokens_per_s,
            "paper: >2x over QServe"
        );
    }

    #[test]
    fn qserve_wins_on_mha_llama2() {
        // Paper Fig. 13: QServe does beat FP16 on the MHA LLaMA-2-7B.
        let model = ModelConfig::llama2_7b();
        let fp16 = report(model, &FlashDecoding::v2(), WeightPrecision::Fp16);
        let qserve = report(model, &CudaOnly::qserve(), WeightPrecision::Int4);
        assert!(
            qserve.tokens_per_s > fp16.tokens_per_s,
            "qserve {} vs fp16 {}",
            qserve.tokens_per_s,
            fp16.tokens_per_s
        );
    }

    #[test]
    fn batch_admission_respects_pages() {
        let model = ModelConfig::llama31_8b();
        let r = report(model, &BitDecodingSys::kc4(), WeightPrecision::Fp16);
        assert!(r.batch > 0);
        assert!(r.tokens_per_s.is_finite());
    }

    #[test]
    fn ratios_near_paper_fig13() {
        // Paper Fig. 13 at 32K on LLaMA-3.1-8B: BitDecoding/FlashDecoding
        // ≈ 3.0x (147.2 / 48.5). Our absolute tok/s run faster than the
        // paper's measured stack, but the ratio must match.
        let model = ModelConfig::llama31_8b();
        let fp16 = report(model, &FlashDecoding::v2(), WeightPrecision::Fp16);
        let bd = report(model, &BitDecodingSys::kc4(), WeightPrecision::Fp16);
        let ratio = bd.tokens_per_s / fp16.tokens_per_s;
        assert!(
            ratio > 2.0 && ratio < 5.0,
            "BD/FP16 throughput ratio {ratio}"
        );
        assert!(fp16.tokens_per_s > 10.0, "fp16 {}", fp16.tokens_per_s);
    }
}
