//! Paged serving simulation: maximum sustained decode throughput under a
//! memory budget (paper Fig. 13 and Table I).

use crate::engine::{Engine, WeightPrecision};
use crate::memory::MemoryModel;
use crate::model::ModelConfig;
use bd_baselines::DecodeSystem;
use bd_gpu_sim::GpuArch;
use bd_kvcache::PagedPool;

/// Result of a serving-throughput evaluation.
#[derive(Clone, Debug)]
pub struct ServingReport {
    /// System label.
    pub system: String,
    /// Model name.
    pub model: String,
    /// Batch size actually served (memory-limited).
    pub batch: usize,
    /// Decode-step latency at that batch (seconds).
    pub step_latency_s: f64,
    /// Sustained generated tokens per second.
    pub tokens_per_s: f64,
}

/// Evaluates the maximum-throughput serving point for a system: the largest
/// page-admissible batch at `seq_len`, then tokens/s at that batch
/// (the paper's "maximum throughput ... under the largest batch sizes
/// available within GPU memory").
pub fn max_throughput(
    model: ModelConfig,
    system: &dyn DecodeSystem,
    arch: GpuArch,
    weights: WeightPrecision,
    seq_len: usize,
) -> ServingReport {
    let mem = MemoryModel::new(&model, &arch, weights);
    let batch = mem.max_batch(&model, system, seq_len);

    // Paged admission: sequences allocate page-granular blocks, so the
    // usable batch is what the page pool actually admits.
    let bytes_per_token =
        system.kv_bytes_per_token(&model.attention()) * model.layers as f64 / model.gpus as f64;
    let mut pool = PagedPool::with_budget(mem.free_bytes(), 64, bytes_per_token);
    let mut admitted = 0usize;
    for _ in 0..batch {
        let seq = pool.admit();
        if pool.grow(seq, seq_len).is_ok() {
            admitted += 1;
        } else {
            pool.release(seq);
            break;
        }
    }

    if admitted == 0 {
        return ServingReport {
            system: system.label(),
            model: model.name.to_owned(),
            batch: 0,
            step_latency_s: f64::INFINITY,
            tokens_per_s: 0.0,
        };
    }

    let engine = Engine::new(model, system, arch).with_weights(weights);
    let step = engine.decode_step_latency(admitted, seq_len);
    ServingReport {
        system: system.label(),
        model: model.name.to_owned(),
        batch: admitted,
        step_latency_s: step,
        tokens_per_s: admitted as f64 / step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_baselines::{BitDecodingSys, CudaOnly, FlashDecoding};

    fn report(model: ModelConfig, sys: &dyn DecodeSystem, w: WeightPrecision) -> ServingReport {
        max_throughput(model, sys, GpuArch::a100(), w, 32768)
    }

    #[test]
    fn bitdecoding_beats_fp16_and_qserve_on_gqa_serving() {
        // Paper Fig. 13 (LLaMA-3.1-8B, 32K): BitDecoding > FlashDecoding-v2
        // > QServe.
        let model = ModelConfig::llama31_8b();
        let fp16 = report(model, &FlashDecoding::v2(), WeightPrecision::Fp16);
        let bd = report(model, &BitDecodingSys::kc4(), WeightPrecision::Fp16);
        let qserve = report(model, &CudaOnly::qserve(), WeightPrecision::Int4);
        assert!(
            bd.tokens_per_s > 2.0 * fp16.tokens_per_s,
            "bd {} vs fp16 {}",
            bd.tokens_per_s,
            fp16.tokens_per_s
        );
        assert!(
            qserve.tokens_per_s < fp16.tokens_per_s,
            "qserve {} should trail fp16 {} on GQA",
            qserve.tokens_per_s,
            fp16.tokens_per_s
        );
        assert!(
            bd.tokens_per_s > 2.0 * qserve.tokens_per_s,
            "paper: >2x over QServe"
        );
    }

    #[test]
    fn qserve_wins_on_mha_llama2() {
        // Paper Fig. 13: QServe does beat FP16 on the MHA LLaMA-2-7B.
        let model = ModelConfig::llama2_7b();
        let fp16 = report(model, &FlashDecoding::v2(), WeightPrecision::Fp16);
        let qserve = report(model, &CudaOnly::qserve(), WeightPrecision::Int4);
        assert!(
            qserve.tokens_per_s > fp16.tokens_per_s,
            "qserve {} vs fp16 {}",
            qserve.tokens_per_s,
            fp16.tokens_per_s
        );
    }

    #[test]
    fn batch_admission_respects_pages() {
        let model = ModelConfig::llama31_8b();
        let r = report(model, &BitDecodingSys::kc4(), WeightPrecision::Fp16);
        assert!(r.batch > 0);
        assert!(r.tokens_per_s.is_finite());
    }

    #[test]
    fn ratios_near_paper_fig13() {
        // Paper Fig. 13 at 32K on LLaMA-3.1-8B: BitDecoding/FlashDecoding
        // ≈ 3.0x (147.2 / 48.5). Our absolute tok/s run faster than the
        // paper's measured stack, but the ratio must match.
        let model = ModelConfig::llama31_8b();
        let fp16 = report(model, &FlashDecoding::v2(), WeightPrecision::Fp16);
        let bd = report(model, &BitDecodingSys::kc4(), WeightPrecision::Fp16);
        let ratio = bd.tokens_per_s / fp16.tokens_per_s;
        assert!(
            ratio > 2.0 && ratio < 5.0,
            "BD/FP16 throughput ratio {ratio}"
        );
        assert!(fp16.tokens_per_s > 10.0, "fp16 {}", fp16.tokens_per_s);
    }
}
