//! End-to-end decode-step simulation: attention kernels (from any
//! [`DecodeSystem`]) plus the projection/MLP GEMMs, per layer, per GPU.

use crate::model::ModelConfig;
use bd_baselines::DecodeSystem;
use bd_core::DecodeShape;
use bd_gpu_sim::{GpuArch, InterconnectModel, KernelProfile, OverlapSpec};

/// Weight precision of the serving stack (QServe runs W4, others FP16).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightPrecision {
    /// FP16 weights.
    Fp16,
    /// 4-bit weights with in-GEMM dequantization (QServe W4A8).
    Int4,
}

impl WeightPrecision {
    fn bytes_per_param(self) -> f64 {
        match self {
            WeightPrecision::Fp16 => 2.0,
            WeightPrecision::Int4 => 0.53, // 4-bit + group metadata
        }
    }
}

/// An end-to-end engine: a model served by an attention system on a GPU.
pub struct Engine<'a> {
    /// Model architecture.
    pub model: ModelConfig,
    /// Attention decode system.
    pub system: &'a dyn DecodeSystem,
    /// Target GPU (each of `model.gpus` identical).
    pub arch: GpuArch,
    /// Weight precision.
    pub weights: WeightPrecision,
    /// The link model pricing tensor-parallel all-reduces when
    /// `model.gpus > 1`.
    pub interconnect: InterconnectModel,
}

impl<'a> Engine<'a> {
    /// Creates an engine with FP16 weights and an NVLink-class (300 GB/s
    /// effective) interconnect.
    pub fn new(model: ModelConfig, system: &'a dyn DecodeSystem, arch: GpuArch) -> Self {
        Engine {
            model,
            system,
            arch,
            weights: WeightPrecision::Fp16,
            interconnect: InterconnectModel::new(300.0, 3.0),
        }
    }

    /// Sets the weight precision (builder style).
    pub fn with_weights(mut self, weights: WeightPrecision) -> Self {
        self.weights = weights;
        self
    }

    /// Overrides the interconnect link model (builder style).
    pub fn with_interconnect(mut self, interconnect: InterconnectModel) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// GEMM profile for all of one decode step's linear layers on one GPU
    /// (QKV/O projections + SwiGLU MLP for every layer + LM head), at batch
    /// size `batch`. Decode GEMMs are weight-traffic bound at practical
    /// batch sizes.
    pub fn linear_profile(&self, batch: usize) -> KernelProfile {
        let m = &self.model;
        let weight_bytes = m.param_count() * self.weights.bytes_per_param() / m.gpus as f64;
        let act_bytes = batch as f64 * m.hidden as f64 * 2.0 * (4.0 * m.layers as f64);
        let macs = m.param_count() * batch as f64 / m.gpus as f64;

        let mut p = KernelProfile::new("linear-layers");
        p.dram_read_bytes = weight_bytes + act_bytes;
        p.dram_write_bytes = act_bytes;
        p.tc_macs_fp16 = macs;
        if self.weights == WeightPrecision::Int4 {
            // In-GEMM weight dequantization on CUDA cores.
            p.cuda.dequant = m.param_count() / m.gpus as f64 * 1.5;
        }
        // One fused launch per layer segment (projection + MLP), plus head.
        p.launches = 2.0 * m.layers as f64 + 1.0;
        p.ctas = 8.0 * m.layers as f64;
        p.warps_per_cta = 8.0;
        p.overlap = OverlapSpec {
            tc_cuda: 0.9,
            mem_compute: 0.9,
        };
        p
    }

    /// Attention shape for one layer at `(batch, seq_len)` with a typical
    /// half-full residual region.
    pub fn attention_shape(&self, batch: usize, seq_len: usize) -> DecodeShape {
        let residual = 64.min(seq_len / 2);
        DecodeShape::new(batch, self.model.attention(), seq_len).with_residual(residual)
    }

    /// Fixed per-step serving-stack overhead (scheduler, sampling, python
    /// dispatch) — present in every measured system, roughly constant.
    pub const STACK_OVERHEAD_S: f64 = 4e-3;

    /// Latency of one decode step (seconds): per-layer attention + all
    /// linear GEMMs + stack overhead (+ a small tensor-parallel all-reduce
    /// cost per layer for multi-GPU models).
    pub fn decode_step_latency(&self, batch: usize, seq_len: usize) -> f64 {
        let linear = self.arch.evaluate(&self.linear_profile(batch)).total;
        self.attention_step_latency(batch, seq_len)
            + linear
            + self.tp_allreduce_s(batch)
            + Self::STACK_OVERHEAD_S
    }

    /// Tensor-parallel communication per decode step: a ring all-reduce of
    /// the hidden activations on the [`InterconnectModel`], twice per
    /// layer (after attention-out and after the MLP). Zero for a
    /// single-GPU model.
    pub fn tp_allreduce_s(&self, batch: usize) -> f64 {
        if self.model.gpus <= 1 {
            return 0.0;
        }
        let bytes = batch as f64 * self.model.hidden as f64 * 2.0;
        2.0 * self.model.layers as f64 * self.interconnect.allreduce_s(bytes, self.model.gpus)
    }

    /// Attention-only latency of one decode step across all layers —
    /// isolates the quantity BitDecoding accelerates (weight streaming and
    /// stack overheads are identical across attention systems).
    pub fn attention_step_latency(&self, batch: usize, seq_len: usize) -> f64 {
        let shape = self.attention_shape(batch, seq_len);
        self.system.latency_s(&shape, &self.arch) * self.model.layers as f64
    }

    /// Decode throughput in generated tokens per second at a batch size.
    pub fn throughput(&self, batch: usize, seq_len: usize) -> f64 {
        batch as f64 / self.decode_step_latency(batch, seq_len)
    }

    /// Prefill latency for a context of `seq_len` (compute-bound flash
    /// prefill + weight streaming), used by generation-latency figures.
    pub fn prefill_latency(&self, seq_len: usize) -> f64 {
        let m = &self.model;
        let flops = 2.0 * m.param_count() * seq_len as f64 / m.gpus as f64
            + 4.0 * m.layers as f64 * (m.heads_q * m.head_dim) as f64 * (seq_len as f64).powi(2)
                / m.gpus as f64;
        let t_compute = flops / (self.arch.tc_fp16_tflops * 1e12 * 0.6);
        let t_weights = m.param_count() * self.weights.bytes_per_param()
            / m.gpus as f64
            / self.arch.effective_bw_bytes();
        t_compute.max(t_weights)
    }

    /// Full generation latency: prefill of `seq_len` then `gen_tokens`
    /// decode steps as the context grows.
    pub fn generation_latency(&self, batch: usize, seq_len: usize, gen_tokens: usize) -> f64 {
        // The context grows negligibly relative to long prompts; sample the
        // step latency at the midpoint.
        let mid = seq_len + gen_tokens / 2;
        self.prefill_latency(seq_len) + gen_tokens as f64 * self.decode_step_latency(batch, mid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_baselines::{BitDecodingSys, FlashDecoding};

    #[test]
    fn weight_traffic_floors_small_batch_latency() {
        let fp16 = FlashDecoding::v2();
        let engine = Engine::new(ModelConfig::llama31_8b(), &fp16, GpuArch::a100());
        let t = engine.decode_step_latency(1, 1024);
        // 16 GB of weights over ~1.6 TB/s ≈ 9.6 ms floor.
        assert!(t > 8e-3, "step {t}");
        assert!(t < 25e-3, "step {t}");
    }

    #[test]
    fn long_context_grows_attention_share() {
        let fp16 = FlashDecoding::v2();
        let engine = Engine::new(ModelConfig::llama31_8b(), &fp16, GpuArch::a100());
        let short = engine.decode_step_latency(1, 1024);
        let long = engine.decode_step_latency(1, 131072);
        assert!(long > short * 1.3, "short {short} long {long}");
        // At 128K the attention share is roughly half the step.
        let attn = engine.attention_step_latency(1, 131072);
        assert!(attn > 0.3 * long, "attention {attn} of step {long}");
    }

    #[test]
    fn bitdecoding_speedup_at_128k() {
        // Paper §VI-B headline: 3x single-batch latency reduction at 128K.
        // Our weight-streaming model runs near roofline, so the e2e ratio
        // is smaller (see EXPERIMENTS.md); the attention-layer speedup
        // carries the 3-4x factor.
        let fp16 = FlashDecoding::v2();
        let bd = BitDecodingSys::kc4();
        let model = ModelConfig::llama31_8b();
        let arch = GpuArch::a100();
        let e_fp16 = Engine::new(model, &fp16, arch.clone());
        let e_bd = Engine::new(model, &bd, arch);
        let e2e = e_fp16.decode_step_latency(1, 131072) / e_bd.decode_step_latency(1, 131072);
        let attn =
            e_fp16.attention_step_latency(1, 131072) / e_bd.attention_step_latency(1, 131072);
        assert!(e2e > 1.25, "e2e 128K speedup {e2e}");
        assert!(attn > 2.5 && attn < 6.0, "attention 128K speedup {attn}");
        // Speedup must grow with context (the Fig. 12a shape).
        let e2e_32k = e_fp16.decode_step_latency(1, 32768) / e_bd.decode_step_latency(1, 32768);
        assert!(e2e > e2e_32k, "speedup must grow with context");
    }

    #[test]
    fn throughput_scales_with_batch_then_saturates() {
        let bd = BitDecodingSys::kc4();
        let engine = Engine::new(ModelConfig::llama31_8b(), &bd, GpuArch::a100());
        let t1 = engine.throughput(1, 4096);
        let t16 = engine.throughput(16, 4096);
        let t64 = engine.throughput(64, 4096);
        assert!(t16 > t1 * 6.0, "batching must help: {t1} -> {t16}");
        assert!(t64 > t16, "more batch, more throughput");
        assert!(t64 < t16 * 4.0, "sub-linear at scale");
    }

    #[test]
    fn multi_gpu_70b_steps_are_plausible() {
        let bd = BitDecodingSys::kc4();
        let engine = Engine::new(ModelConfig::llama31_70b(), &bd, GpuArch::a100());
        let t = engine.decode_step_latency(8, 32768);
        assert!(t > 5e-3 && t < 0.2, "70B step {t}");
    }

    #[test]
    fn tp_allreduce_is_charged_on_the_link_model() {
        let bd = BitDecodingSys::kc4();
        let single = Engine::new(ModelConfig::llama31_8b(), &bd, GpuArch::a100());
        assert_eq!(single.tp_allreduce_s(8), 0.0, "1 GPU = no communication");
        let fast = Engine::new(ModelConfig::llama31_70b(), &bd, GpuArch::a100());
        let slow = Engine::new(ModelConfig::llama31_70b(), &bd, GpuArch::a100())
            .with_interconnect(InterconnectModel::pcie_gen5());
        assert!(fast.tp_allreduce_s(8) > 0.0);
        assert!(
            slow.tp_allreduce_s(64) > fast.tp_allreduce_s(64),
            "a slower link must cost more"
        );
        assert!(
            slow.decode_step_latency(64, 32768) > fast.decode_step_latency(64, 32768),
            "the charge reaches the step latency"
        );
    }

    #[test]
    fn prefill_grows_superlinearly() {
        let fp16 = FlashDecoding::v2();
        let engine = Engine::new(ModelConfig::llama31_8b(), &fp16, GpuArch::a100());
        let p32 = engine.prefill_latency(32768);
        let p128 = engine.prefill_latency(131072);
        assert!(p128 > p32 * 4.0);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use bd_baselines::{BitDecodingSys, CudaOnly, FlashDecoding};

    #[test]
    fn int4_weights_cut_linear_time() {
        let sys = CudaOnly::qserve();
        let fp16 = Engine::new(ModelConfig::llama31_8b(), &sys, GpuArch::a100());
        let int4 = Engine::new(ModelConfig::llama31_8b(), &sys, GpuArch::a100())
            .with_weights(WeightPrecision::Int4);
        let t_fp16 = fp16.arch.evaluate(&fp16.linear_profile(4)).total;
        let t_int4 = int4.arch.evaluate(&int4.linear_profile(4)).total;
        assert!(t_int4 < t_fp16 * 0.5, "W4 linear {t_int4} vs FP16 {t_fp16}");
    }

    #[test]
    fn linear_profile_counts_all_layers() {
        let sys = FlashDecoding::v2();
        let engine = Engine::new(ModelConfig::llama31_8b(), &sys, GpuArch::a100());
        let p = engine.linear_profile(1);
        assert_eq!(p.launches, 2.0 * 32.0 + 1.0);
        // Weight bytes dominate reads at batch 1.
        assert!(p.dram_read_bytes > 15e9);
    }

    #[test]
    fn attention_share_grows_with_context() {
        let sys = BitDecodingSys::kc4();
        let engine = Engine::new(ModelConfig::llama31_8b(), &sys, GpuArch::a100());
        let share =
            |len: usize| engine.attention_step_latency(1, len) / engine.decode_step_latency(1, len);
        assert!(share(131072) > share(8192) * 2.0);
    }

    #[test]
    fn generation_latency_includes_prefill() {
        let sys = FlashDecoding::v2();
        let engine = Engine::new(ModelConfig::llama31_8b(), &sys, GpuArch::a100());
        let gen = engine.generation_latency(1, 32768, 16);
        let decode_only = 16.0 * engine.decode_step_latency(1, 32768 + 8);
        assert!(gen > decode_only, "prefill must be counted");
        assert!(gen > engine.prefill_latency(32768));
    }
}
