//! LLM architecture configurations for the end-to-end evaluation
//! (paper §VI-B: LLaMA-2-7B, LLaMA-3.1-8B/70B, Qwen3-8B/14B).

use bd_core::AttentionConfig;
use std::fmt;

/// A transformer decoder architecture (public config values).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelConfig {
    /// Model name.
    pub name: &'static str,
    /// Decoder layers.
    pub layers: usize,
    /// Model (hidden) dimension.
    pub hidden: usize,
    /// Query heads.
    pub heads_q: usize,
    /// KV heads.
    pub heads_kv: usize,
    /// Head dimension.
    pub head_dim: usize,
    /// FFN intermediate dimension (SwiGLU).
    pub intermediate: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Tensor-parallel GPUs used in the paper's evaluation.
    pub gpus: usize,
}

impl ModelConfig {
    /// LLaMA-2-7B (MHA).
    pub const fn llama2_7b() -> Self {
        ModelConfig {
            name: "llama-2-7B",
            layers: 32,
            hidden: 4096,
            heads_q: 32,
            heads_kv: 32,
            head_dim: 128,
            intermediate: 11008,
            vocab: 32000,
            gpus: 1,
        }
    }

    /// LLaMA-3.1-8B (GQA, g_q = 4).
    pub const fn llama31_8b() -> Self {
        ModelConfig {
            name: "llama-3.1-8B",
            layers: 32,
            hidden: 4096,
            heads_q: 32,
            heads_kv: 8,
            head_dim: 128,
            intermediate: 14336,
            vocab: 128256,
            gpus: 1,
        }
    }

    /// LLaMA-3.1-70B (GQA, g_q = 8, 8-way tensor parallel).
    pub const fn llama31_70b() -> Self {
        ModelConfig {
            name: "llama-3.1-70B",
            layers: 80,
            hidden: 8192,
            heads_q: 64,
            heads_kv: 8,
            head_dim: 128,
            intermediate: 28672,
            vocab: 128256,
            gpus: 8,
        }
    }

    /// Qwen3-8B (GQA).
    pub const fn qwen3_8b() -> Self {
        ModelConfig {
            name: "Qwen3-8B",
            layers: 36,
            hidden: 4096,
            heads_q: 32,
            heads_kv: 8,
            head_dim: 128,
            intermediate: 12288,
            vocab: 151936,
            gpus: 1,
        }
    }

    /// Qwen3-14B (GQA).
    pub const fn qwen3_14b() -> Self {
        ModelConfig {
            name: "Qwen3-14B",
            layers: 40,
            hidden: 5120,
            heads_q: 40,
            heads_kv: 8,
            head_dim: 128,
            intermediate: 17408,
            vocab: 151936,
            gpus: 1,
        }
    }

    /// The five evaluation models in paper order.
    pub fn all() -> Vec<ModelConfig> {
        vec![
            ModelConfig::llama2_7b(),
            ModelConfig::llama31_8b(),
            ModelConfig::llama31_70b(),
            ModelConfig::qwen3_8b(),
            ModelConfig::qwen3_14b(),
        ]
    }

    /// Attention head structure.
    pub fn attention(&self) -> AttentionConfig {
        AttentionConfig::new(self.heads_q, self.heads_kv, self.head_dim)
    }

    /// Total parameter count (attention + SwiGLU MLP + embeddings + head).
    pub fn param_count(&self) -> f64 {
        let d = self.hidden as f64;
        let attn = d * (self.heads_q + 2 * self.heads_kv) as f64 * self.head_dim as f64
            + (self.heads_q * self.head_dim) as f64 * d;
        let mlp = 3.0 * d * self.intermediate as f64;
        let per_layer = attn + mlp + 2.0 * d; // + norms
        self.layers as f64 * per_layer + 2.0 * d * self.vocab as f64
    }

    /// FP16 weight bytes per GPU (tensor-parallel shards split evenly).
    pub fn weight_bytes_fp16_per_gpu(&self) -> f64 {
        self.param_count() * 2.0 / self.gpus as f64
    }

    /// FP16 KV-cache bytes per token per sequence, all layers, per GPU.
    pub fn kv_bytes_per_token_fp16_per_gpu(&self) -> f64 {
        2.0 * self.layers as f64 * self.heads_kv as f64 * self.head_dim as f64 * 2.0
            / self.gpus as f64
    }
}

impl fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_core::AttentionVariant;

    #[test]
    fn param_counts_near_nameplates() {
        let cases = [
            (ModelConfig::llama2_7b(), 6.7e9),
            (ModelConfig::llama31_8b(), 8.0e9),
            (ModelConfig::llama31_70b(), 70.0e9),
            (ModelConfig::qwen3_8b(), 8.2e9),
            (ModelConfig::qwen3_14b(), 14.8e9),
        ];
        for (m, expect) in cases {
            let got = m.param_count();
            let ratio = got / expect;
            assert!(
                (0.8..1.2).contains(&ratio),
                "{}: {got:.2e} vs nameplate {expect:.2e}",
                m.name
            );
        }
    }

    #[test]
    fn only_llama2_is_mha() {
        assert_eq!(
            ModelConfig::llama2_7b().attention().variant(),
            AttentionVariant::Mha
        );
        for m in [
            ModelConfig::llama31_8b(),
            ModelConfig::llama31_70b(),
            ModelConfig::qwen3_8b(),
            ModelConfig::qwen3_14b(),
        ] {
            assert_eq!(m.attention().variant(), AttentionVariant::Gqa, "{}", m.name);
        }
    }

    #[test]
    fn kv_bytes_match_paper_formula() {
        // 2 · n_layers · h_kv · d · 2 bytes (the paper's §II formula).
        let m = ModelConfig::llama31_8b();
        assert_eq!(
            m.kv_bytes_per_token_fp16_per_gpu(),
            2.0 * 32.0 * 8.0 * 128.0 * 2.0
        );
    }

    #[test]
    fn tensor_parallel_divides_memory() {
        let m = ModelConfig::llama31_70b();
        assert!(m.weight_bytes_fp16_per_gpu() < 2.0 * m.param_count() / 4.0);
    }
}
