//! Trace-driven continuous-batching simulation.
//!
//! The paper's serving evaluation (Fig. 13) measures steady-state maximum
//! throughput. Production serving additionally cares about *latency under
//! load*: requests arrive over time, are admitted when the page pool has
//! room (PagedAttention-style), prefill, then decode inside a continuously
//! re-formed batch. This module simulates that pipeline at decode-step
//! granularity, so the KV-cache format's memory footprint and kernel speed
//! both shape the latency distribution — the regime where low-bit caches
//! pay off twice.

use crate::engine::{Engine, WeightPrecision};
use crate::memory::MemoryModel;
use crate::model::ModelConfig;
use bd_baselines::DecodeSystem;
use bd_gpu_sim::GpuArch;
use bd_kvcache::{PagedPool, SeqId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// One inference request in a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Prompt (prefill) length in tokens.
    pub prompt_tokens: usize,
    /// Tokens to generate.
    pub gen_tokens: usize,
}

/// Synthesizes a Poisson-arrival trace with log-uniform prompt lengths.
pub fn synth_trace(
    rate_rps: f64,
    duration_s: f64,
    prompt_range: (usize, usize),
    gen_tokens: usize,
    seed: u64,
) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    let mut out = Vec::new();
    let (lo, hi) = prompt_range;
    while t < duration_s {
        let u: f64 = rng.random::<f64>().max(1e-12);
        t += -u.ln() / rate_rps; // exponential inter-arrival
        if t >= duration_s {
            break;
        }
        let lu = (lo as f64).ln() + rng.random::<f64>() * ((hi as f64).ln() - (lo as f64).ln());
        out.push(Request {
            arrival_s: t,
            prompt_tokens: lu.exp().round() as usize,
            gen_tokens,
        });
    }
    out
}

/// Outcome of a continuous-batching simulation.
#[derive(Clone, Debug)]
pub struct BatchSimReport {
    /// Requests completed.
    pub completed: usize,
    /// Median end-to-end request latency (arrival → last token), seconds.
    pub p50_latency_s: f64,
    /// 95th-percentile latency, seconds.
    pub p95_latency_s: f64,
    /// Generated tokens per second over the simulated span.
    pub tokens_per_s: f64,
    /// Mean decode batch size while the system was busy.
    pub mean_batch: f64,
    /// Peak page-pool utilization observed.
    pub peak_pool_utilization: f64,
}

struct Running {
    seq: SeqId,
    arrival_s: f64,
    current_len: usize,
    remaining: usize,
}

/// Simulates continuous batching of `trace` on `(model, system, arch)`.
///
/// Admission: FCFS while the page pool can hold the request's prompt plus
/// its full generation and the running batch is below `max_batch` (real
/// servers cap batch size so early requests are not held hostage by one
/// giant batch). Prefill is charged serially at admission; decode advances
/// the whole running batch one token per step.
pub fn simulate_continuous_batching(
    model: ModelConfig,
    system: &dyn DecodeSystem,
    arch: GpuArch,
    weights: WeightPrecision,
    trace: &[Request],
    max_batch: usize,
) -> BatchSimReport {
    let engine = Engine::new(model, system, arch.clone()).with_weights(weights);
    let mem = MemoryModel::new(&model, &arch, weights);
    let bytes_per_token =
        system.kv_bytes_per_token(&model.attention()) * model.layers as f64 / model.gpus as f64;
    let mut pool = PagedPool::with_budget(mem.free_bytes(), 64, bytes_per_token);

    let mut queue: VecDeque<Request> = trace.to_vec().into();
    let mut running: Vec<Running> = Vec::new();
    let mut now = 0.0f64;
    let mut latencies: Vec<f64> = Vec::new();
    let mut generated = 0usize;
    let mut batch_samples: Vec<f64> = Vec::new();
    let mut peak_util = 0.0f64;

    while !queue.is_empty() || !running.is_empty() {
        // Admit arrived requests while pages allow prompt + generation.
        while let Some(req) = queue.front() {
            if req.arrival_s > now && running.is_empty() {
                now = req.arrival_s; // idle: jump to next arrival
            }
            if req.arrival_s > now || running.len() >= max_batch {
                break;
            }
            let seq = pool.admit();
            let total = req.prompt_tokens + req.gen_tokens;
            if pool.grow(seq, total).is_err() {
                pool.release(seq);
                break; // pool full: leave queued
            }
            now += engine.prefill_latency(req.prompt_tokens);
            running.push(Running {
                seq,
                arrival_s: req.arrival_s,
                current_len: req.prompt_tokens,
                remaining: req.gen_tokens,
            });
            queue.pop_front();
        }
        peak_util = peak_util.max(pool.utilization());

        if running.is_empty() {
            continue; // loop will jump to the next arrival
        }

        // One decode step for the whole batch at its mean context length.
        let batch = running.len();
        let mean_len = (running.iter().map(|r| r.current_len).sum::<usize>() / batch).max(1);
        now += engine.decode_step_latency(batch, mean_len);
        batch_samples.push(batch as f64);
        generated += batch;

        for r in &mut running {
            r.current_len += 1;
            r.remaining -= 1;
        }
        running.retain(|r| {
            if r.remaining == 0 {
                latencies.push(now - r.arrival_s);
                pool.release(r.seq);
                false
            } else {
                true
            }
        });
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            0.0
        } else {
            let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
            latencies[idx]
        }
    };
    BatchSimReport {
        completed: latencies.len(),
        p50_latency_s: pct(0.50),
        p95_latency_s: pct(0.95),
        tokens_per_s: if now > 0.0 {
            generated as f64 / now
        } else {
            0.0
        },
        mean_batch: if batch_samples.is_empty() {
            0.0
        } else {
            batch_samples.iter().sum::<f64>() / batch_samples.len() as f64
        },
        peak_pool_utilization: peak_util,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_baselines::{BitDecodingSys, FlashDecoding};

    fn trace(rate: f64) -> Vec<Request> {
        synth_trace(rate, 30.0, (2048, 16384), 64, 42)
    }

    #[test]
    fn trace_generation_is_deterministic_and_ordered() {
        let a = trace(1.0);
        let b = trace(1.0);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].arrival_s <= w[1].arrival_s);
        }
        for r in &a {
            assert!(r.prompt_tokens >= 2048 && r.prompt_tokens <= 16500);
        }
    }

    #[test]
    fn all_requests_complete_and_pages_are_returned() {
        let model = ModelConfig::llama31_8b();
        let sys = BitDecodingSys::kc4();
        let t = trace(0.5);
        let report = simulate_continuous_batching(
            model,
            &sys,
            GpuArch::a100(),
            WeightPrecision::Fp16,
            &t,
            64,
        );
        assert_eq!(report.completed, t.len());
        assert!(report.p50_latency_s > 0.0);
        assert!(report.p95_latency_s >= report.p50_latency_s);
        assert!(report.peak_pool_utilization <= 1.0);
    }

    #[test]
    fn higher_load_raises_tail_latency() {
        let model = ModelConfig::llama31_8b();
        let sys = BitDecodingSys::kc4();
        let light = simulate_continuous_batching(
            model,
            &sys,
            GpuArch::a100(),
            WeightPrecision::Fp16,
            &trace(0.2),
            64,
        );
        let heavy = simulate_continuous_batching(
            model,
            &sys,
            GpuArch::a100(),
            WeightPrecision::Fp16,
            &trace(4.0),
            64,
        );
        assert!(
            heavy.p95_latency_s > light.p95_latency_s,
            "heavy {} vs light {}",
            heavy.p95_latency_s,
            light.p95_latency_s
        );
        assert!(heavy.mean_batch > light.mean_batch);
    }

    #[test]
    fn low_bit_cache_sustains_load_better_than_fp16() {
        // Under the same offered load, the 4-bit cache admits more
        // sequences (memory) and decodes faster (bandwidth): its tail
        // latency must be clearly lower.
        let model = ModelConfig::llama31_8b();
        let t = trace(2.0);
        let fp16 = FlashDecoding::v2();
        let bd = BitDecodingSys::kc4();
        let r_fp16 = simulate_continuous_batching(
            model,
            &fp16,
            GpuArch::a100(),
            WeightPrecision::Fp16,
            &t,
            64,
        );
        let r_bd = simulate_continuous_batching(
            model,
            &bd,
            GpuArch::a100(),
            WeightPrecision::Fp16,
            &t,
            64,
        );
        assert!(
            r_bd.p95_latency_s < r_fp16.p95_latency_s,
            "bd {} vs fp16 {}",
            r_bd.p95_latency_s,
            r_fp16.p95_latency_s
        );
        assert!(r_bd.tokens_per_s >= r_fp16.tokens_per_s * 0.95);
    }
}
