//! GPU memory model: admission control and OOM detection for the
//! end-to-end experiments (paper Fig. 12's KIVI OOM, Fig. 13's
//! max-batch-under-memory throughput).

use crate::engine::WeightPrecision;
use crate::model::ModelConfig;
use bd_baselines::DecodeSystem;
use bd_core::DecodeShape;
use bd_gpu_sim::GpuArch;
use std::fmt;

/// Bytes reserved per GPU for the CUDA context, activations and allocator
/// slack.
pub const RESERVE_BYTES: f64 = 2.5e9;

/// Out-of-memory diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub struct OomError {
    /// Bytes required.
    pub required: f64,
    /// Bytes available.
    pub capacity: f64,
    /// What overflowed.
    pub what: String,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "OOM: {} needs {:.1} GB but only {:.1} GB available",
            self.what,
            self.required / 1e9,
            self.capacity / 1e9
        )
    }
}

impl std::error::Error for OomError {}

/// Per-GPU memory budget for a deployment.
#[derive(Clone, Debug)]
pub struct MemoryModel {
    /// Usable bytes per GPU.
    pub capacity: f64,
    /// Weight bytes per GPU.
    pub weights: f64,
}

impl MemoryModel {
    /// Budget for serving `model` on `arch` with the given weight
    /// precision.
    pub fn new(model: &ModelConfig, arch: &GpuArch, weights: WeightPrecision) -> Self {
        let wb = match weights {
            WeightPrecision::Fp16 => model.weight_bytes_fp16_per_gpu(),
            WeightPrecision::Int4 => model.weight_bytes_fp16_per_gpu() * 0.27,
        };
        MemoryModel {
            capacity: arch.dram_gb * 1e9,
            weights: wb,
        }
    }

    /// Bytes left for KV cache + scratch.
    pub fn free_bytes(&self) -> f64 {
        (self.capacity - self.weights - RESERVE_BYTES).max(0.0)
    }

    /// Per-GPU bytes one sequence of `seq_len` occupies under `system`'s
    /// cache format, all layers.
    pub fn seq_cache_bytes(
        &self,
        model: &ModelConfig,
        system: &dyn DecodeSystem,
        seq_len: usize,
    ) -> f64 {
        system.kv_bytes_per_token(&model.attention()) * seq_len as f64 * model.layers as f64
            / model.gpus as f64
    }

    /// Checks whether a `(batch, seq_len)` deployment fits, including the
    /// system's decode scratch and prefill scratch.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] naming the overflowing component.
    pub fn check(
        &self,
        model: &ModelConfig,
        system: &dyn DecodeSystem,
        batch: usize,
        seq_len: usize,
    ) -> Result<(), OomError> {
        let cache = batch as f64 * self.seq_cache_bytes(model, system, seq_len);
        let shape = DecodeShape::new(batch, model.attention(), seq_len);
        let scratch = system.scratch_bytes(&shape) / model.gpus as f64;
        let prefill = system.prefill_scratch_bytes(&model.attention(), seq_len) / model.gpus as f64;
        let need = cache + scratch.max(prefill);
        if need > self.free_bytes() {
            let what = if prefill > scratch && prefill > cache {
                format!("{} prefill scratch", system.label())
            } else {
                format!(
                    "{} KV cache (batch {batch}, {seq_len} tokens)",
                    system.label()
                )
            };
            return Err(OomError {
                required: self.weights + RESERVE_BYTES + need,
                capacity: self.capacity,
                what,
            });
        }
        Ok(())
    }

    /// Largest batch that fits at `seq_len` (0 if even batch 1 OOMs).
    pub fn max_batch(
        &self,
        model: &ModelConfig,
        system: &dyn DecodeSystem,
        seq_len: usize,
    ) -> usize {
        let mut lo = 0usize;
        let mut hi = 4096usize;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.check(model, system, mid, seq_len).is_ok() {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_baselines::{BitDecodingSys, FlashDecoding, Kivi};

    fn a100() -> GpuArch {
        GpuArch::a100()
    }

    #[test]
    fn kivi_ooms_at_128k_but_not_64k() {
        // Paper Fig. 12a: KIVI hits OOM at 128K on the A100.
        let model = ModelConfig::llama31_8b();
        let mem = MemoryModel::new(&model, &a100(), WeightPrecision::Fp16);
        let kivi = Kivi::int4();
        assert!(mem.check(&model, &kivi, 1, 65536).is_ok(), "64K should fit");
        let err = mem.check(&model, &kivi, 1, 131072).unwrap_err();
        assert!(err.what.contains("prefill scratch"), "{err}");
    }

    #[test]
    fn bitdecoding_fits_at_128k() {
        let model = ModelConfig::llama31_8b();
        let mem = MemoryModel::new(&model, &a100(), WeightPrecision::Fp16);
        assert!(mem.check(&model, &BitDecodingSys::kc4(), 1, 131072).is_ok());
        assert!(mem.check(&model, &BitDecodingSys::kc2(), 1, 131072).is_ok());
    }

    #[test]
    fn low_bit_admits_larger_batches() {
        let model = ModelConfig::llama31_8b();
        let mem = MemoryModel::new(&model, &a100(), WeightPrecision::Fp16);
        let b_fp16 = mem.max_batch(&model, &FlashDecoding::v2(), 32768);
        let b_int4 = mem.max_batch(&model, &BitDecodingSys::kc4(), 32768);
        let b_int2 = mem.max_batch(&model, &BitDecodingSys::kc2(), 32768);
        assert!(b_int4 > b_fp16 * 3, "fp16 {b_fp16} int4 {b_int4}");
        assert!(b_int2 > b_int4, "int4 {b_int4} int2 {b_int2}");
    }

    #[test]
    fn max_batch_monotone_in_context() {
        let model = ModelConfig::llama31_8b();
        let mem = MemoryModel::new(&model, &a100(), WeightPrecision::Fp16);
        let sys = BitDecodingSys::kc4();
        assert!(mem.max_batch(&model, &sys, 4096) > mem.max_batch(&model, &sys, 32768));
    }

    #[test]
    fn seventy_b_fits_on_eight_gpus() {
        let model = ModelConfig::llama31_70b();
        let mem = MemoryModel::new(&model, &a100(), WeightPrecision::Fp16);
        assert!(
            mem.free_bytes() > 10e9,
            "free {:.1} GB",
            mem.free_bytes() / 1e9
        );
        assert!(mem.check(&model, &BitDecodingSys::kc4(), 4, 32768).is_ok());
    }
}
