#![warn(missing_docs)]

//! # bd-llm — end-to-end LLM inference simulation
//!
//! Turns per-kernel attention costs into model-level numbers: decode-step
//! latency, generation latency, serving throughput under memory admission,
//! and OOM behaviour — everything paper §VI-B measures.
//!
//! * [`model`] — the five evaluation model architectures;
//! * [`engine`] — decode-step/prefill/generation latency (attention system
//!   + projection & MLP GEMMs + tensor-parallel all-reduce);
//! * [`memory`] — weight/KV/scratch budgeting and OOM detection;
//! * [`serving`] — paged max-batch throughput evaluation, both analytic
//!   and functional (driving the `bd-serve` batched decode runtime).

pub mod batching;
pub mod engine;
pub mod memory;
pub mod model;
pub mod serving;

pub use batching::{simulate_continuous_batching, synth_trace, BatchSimReport, Request};
pub use engine::{Engine, WeightPrecision};
pub use memory::{MemoryModel, OomError, RESERVE_BYTES};
pub use model::ModelConfig;
pub use serving::{
    max_throughput, serve_functional, serve_prefix_cache_functional,
    serve_shared_prompt_functional, serve_trace_functional, serve_trace_policy_functional,
    serve_trace_policy_functional_obs, FunctionalServeReport, ServePolicy, ServingReport,
};
