//! Synthetic KV tensors with realistic outlier structure.
//!
//! The paper's accuracy results (Table I) come from LongBench runs on real
//! models, which this environment cannot execute. The relevant statistical
//! property — established by KIVI, KVQuant and RotateKV — is that **Key
//! activations carry a few large-magnitude channels** (fixed per layer),
//! while Values are comparatively isotropic. This module generates tensors
//! with exactly that structure so quantization-scheme comparisons exercise
//! the same failure modes as real caches.

use bd_kvcache::TokenMatrix;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Generator for synthetic K/V token matrices.
///
/// Key outlier channels are modelled as **large fixed-mean** channels with
/// unit variance — the "massive activation" profile KVQuant and KIVI report
/// (per-channel magnitudes far above typical, but nearly constant across
/// tokens). This is precisely the structure that makes channel-wise scaling
/// accurate and per-token (tensor-wise) scaling lossy.
#[derive(Clone, Debug)]
pub struct KvDistribution {
    /// Channels per head.
    pub dim: usize,
    /// Fraction of Key channels that are outliers (~3% in published
    /// measurements).
    pub outlier_fraction: f64,
    /// Mean magnitude of outlier channels (in units of the typical σ).
    pub outlier_scale: f32,
    per_channel_mean: Vec<f32>,
    per_channel_scale: Vec<f32>,
}

impl KvDistribution {
    /// Builds a distribution with the published outlier profile.
    pub fn new(dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let outlier_fraction = 0.03;
        let outlier_scale = 25.0;
        let n_outliers = ((dim as f64 * outlier_fraction).round() as usize).max(1);
        let mut per_channel_scale = vec![1.0f32; dim];
        let mut per_channel_mean = vec![0.0f32; dim];
        // Mild variation on all channels.
        for s in &mut per_channel_scale {
            *s = (rng.random::<f32>() * 0.6 + 0.7).max(0.2);
        }
        // A few fixed hot channels with large constant means.
        let mut idx: Vec<usize> = (0..dim).collect();
        idx.shuffle(&mut rng);
        for &c in idx.iter().take(n_outliers) {
            let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
            per_channel_mean[c] = sign * outlier_scale;
        }
        KvDistribution {
            dim,
            outlier_fraction,
            outlier_scale,
            per_channel_mean,
            per_channel_scale,
        }
    }

    /// Samples a Key matrix (`tokens × dim`, flat) with channel outliers.
    pub fn sample_keys(&self, tokens: usize, rng: &mut StdRng) -> TokenMatrix {
        TokenMatrix::from_fn(tokens, self.dim, |_, c| {
            normal(rng) * self.per_channel_scale[c] + self.per_channel_mean[c]
        })
    }

    /// Samples a Value matrix (`tokens × dim`, flat), isotropic.
    pub fn sample_values(&self, tokens: usize, rng: &mut StdRng) -> TokenMatrix {
        TokenMatrix::from_fn(tokens, self.dim, |_, _| normal(rng))
    }

    /// Samples a query block (`rows × dim`, flat), isotropic.
    pub fn sample_queries(&self, rows: usize, rng: &mut StdRng) -> TokenMatrix {
        TokenMatrix::from_fn(rows, self.dim, |_, _| normal(rng))
    }

    /// Indices of the hot channels (for tests).
    pub fn outlier_channels(&self) -> Vec<usize> {
        let threshold = self.outlier_scale * 0.5;
        self.per_channel_mean
            .iter()
            .enumerate()
            .filter(|(_, &m)| m.abs() > threshold)
            .map(|(c, _)| c)
            .collect()
    }
}

/// Standard normal via Box–Muller.
fn normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.random::<f32>().max(1e-7);
    let u2: f32 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_have_hot_channels() {
        let dist = KvDistribution::new(128, 7);
        let mut rng = StdRng::seed_from_u64(1);
        let k = dist.sample_keys(256, &mut rng);
        let outliers = dist.outlier_channels();
        assert!(!outliers.is_empty() && outliers.len() < 16);
        // RMS of an outlier channel dwarfs a typical channel.
        let rms = |c: usize| -> f32 {
            (k.iter().map(|row| row[c] * row[c]).sum::<f32>() / k.len() as f32).sqrt()
        };
        let hot = rms(outliers[0]);
        let typical: f32 = (0..dist.dim)
            .filter(|c| !outliers.contains(c))
            .map(rms)
            .sum::<f32>()
            / (dist.dim - outliers.len()) as f32;
        assert!(hot > typical * 8.0, "hot {hot} vs typical {typical}");
    }

    #[test]
    fn values_are_isotropic() {
        let dist = KvDistribution::new(64, 7);
        let mut rng = StdRng::seed_from_u64(2);
        let v = dist.sample_values(512, &mut rng);
        let rms = |c: usize| -> f32 {
            (v.iter().map(|row| row[c] * row[c]).sum::<f32>() / v.len() as f32).sqrt()
        };
        let maxr = (0..64).map(rms).fold(0.0f32, f32::max);
        let minr = (0..64).map(rms).fold(f32::INFINITY, f32::min);
        assert!(maxr / minr < 2.0, "isotropy ratio {}", maxr / minr);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = KvDistribution::new(32, 42);
        let b = KvDistribution::new(32, 42);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(a.sample_keys(4, &mut r1), b.sample_keys(4, &mut r2));
    }
}
