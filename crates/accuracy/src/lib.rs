#![warn(missing_docs)]

//! # bd-accuracy — quantization fidelity evaluation
//!
//! The accuracy half of the paper's efficiency/accuracy trade-off
//! (Table I), on synthetic KV tensors whose channel-outlier structure
//! matches published LLM cache statistics (see `DESIGN.md` §1 for the
//! substitution rationale).
//!
//! Real metrics (relative RMSE, cosine, attention-weight KL) are reported
//! alongside a clearly-labelled [`eval::longbench_proxy`]
//! score calibrated to the paper's scale.

pub mod eval;
pub mod rotation;
pub mod synth;

pub use eval::{evaluate_scheme, longbench_proxy, AccuracyReport, FP16_LONGBENCH};
pub use rotation::{evaluate_scheme_rotated, fwht, rotate_rows};
pub use synth::KvDistribution;
