//! Accuracy evaluation: attention-output fidelity under cache quantization,
//! plus the documented LongBench-proxy mapping (paper Table I).

use crate::synth::KvDistribution;
use bd_core::reference_attention;
use bd_kvcache::{BlockCodec, QuantScheme, ReferenceCodec, TokenRows};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Fidelity metrics of quantized attention against the FP16 reference.
#[derive(Clone, Copy, Debug)]
pub struct AccuracyReport {
    /// Relative RMS error of the attention output.
    pub output_rel_rmse: f64,
    /// Mean cosine similarity of output rows.
    pub cosine: f64,
    /// Mean KL divergence of the attention-weight distributions.
    pub attn_kl: f64,
}

impl fmt::Display for AccuracyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rel-RMSE {:.4}, cosine {:.5}, attn-KL {:.5}",
            self.output_rel_rmse, self.cosine, self.attn_kl
        )
    }
}

fn softmax_weights<M: TokenRows + ?Sized>(q: &[f32], k: &M, scale: f32) -> Vec<f32> {
    let scores: Vec<f32> = (0..k.token_count())
        .map(|t| {
            k.token_row(t)
                .iter()
                .zip(q)
                .map(|(a, b)| a * b)
                .sum::<f32>()
                * scale
        })
        .collect();
    let m = scores.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let exps: Vec<f32> = scores.iter().map(|&s| (s - m).exp()).collect();
    let l: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / l).collect()
}

/// Evaluates one scheme on synthetic KV with channel-outlier structure.
///
/// `tokens` controls the context size; `trials` the number of independent
/// head samples averaged.
pub fn evaluate_scheme(
    scheme: QuantScheme,
    dim: usize,
    tokens: usize,
    trials: usize,
) -> AccuracyReport {
    let dist = KvDistribution::new(dim, 1234);
    let mut rng = StdRng::seed_from_u64(99);
    let scale = 1.0 / (dim as f32).sqrt();
    let codec = ReferenceCodec;

    let mut sq_err = 0.0f64;
    let mut sq_ref = 0.0f64;
    let mut cos_sum = 0.0f64;
    let mut kl_sum = 0.0f64;
    let mut rows = 0usize;

    for _ in 0..trials {
        let k = dist.sample_keys(tokens, &mut rng);
        let v = dist.sample_values(tokens, &mut rng);
        let q = dist.sample_queries(4, &mut rng);

        let block = codec.encode(&k, &v, scheme);
        let (dk, dv) = codec.decode(&block, scheme);

        let reference = reference_attention(&q, &k, &v, scale);
        let quantized = reference_attention(&q, &dk, &dv, scale);

        for (qrow, (r, z)) in q.iter().zip(reference.iter().zip(&quantized)) {
            let mut dot = 0.0f64;
            let mut nr = 0.0f64;
            let mut nz = 0.0f64;
            for (a, b) in r.iter().zip(z) {
                sq_err += f64::from(a - b) * f64::from(a - b);
                sq_ref += f64::from(*a) * f64::from(*a);
                dot += f64::from(*a) * f64::from(*b);
                nr += f64::from(*a) * f64::from(*a);
                nz += f64::from(*b) * f64::from(*b);
            }
            cos_sum += dot / (nr.sqrt() * nz.sqrt()).max(1e-12);

            let wr = softmax_weights(qrow, &k, scale);
            let wz = softmax_weights(qrow, &dk, scale);
            let kl: f64 = wr
                .iter()
                .zip(&wz)
                .map(|(&p, &s)| {
                    let p = f64::from(p).max(1e-12);
                    let s = f64::from(s).max(1e-12);
                    p * (p / s).ln()
                })
                .sum();
            kl_sum += kl;
            rows += 1;
        }
    }

    AccuracyReport {
        output_rel_rmse: (sq_err / sq_ref.max(1e-12)).sqrt(),
        cosine: cos_sum / rows as f64,
        attn_kl: kl_sum / rows as f64,
    }
}

/// LongBench score of the FP16 baseline in the paper (Table I).
pub const FP16_LONGBENCH: f64 = 48.25;

/// **LongBench-proxy** score: a documented, calibrated affine map from
/// measured attention fidelity to the paper's benchmark scale.
///
/// This is *not* a benchmark run — it exists so the Table I reproduction
/// can report a recognisable number. The mapping anchors FP16 at the
/// paper's 48.25 and degrades linearly in relative output error with a
/// slope calibrated once (on KC-4 synthetic error ↔ the paper's −0.2%
/// drop); KC-2 then lands wherever the measured error puts it.
pub fn longbench_proxy(report: &AccuracyReport) -> f64 {
    // Slope: paper KC-4 drop (0.09 points) per measured KC-4 rel-RMSE
    // (~0.137 on this generator with default settings, dim 64 / 256
    // tokens). Benchmark scores are far more robust than raw output RMSE —
    // a ~14% perturbation of attention outputs costs only ~0.1 points —
    // which this slope encodes.
    const POINTS_PER_RELRMSE: f64 = 0.09 / 0.137;
    (FP16_LONGBENCH - POINTS_PER_RELRMSE * report.output_rel_rmse).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(scheme: QuantScheme) -> AccuracyReport {
        evaluate_scheme(scheme, 64, 256, 2)
    }

    #[test]
    fn four_bit_is_near_lossless() {
        // ~3σ/15 per-element steps leave ≈10-15% raw output RMSE but
        // near-unity cosine — the regime where benchmark scores barely move.
        let r = quick(QuantScheme::kc4());
        assert!(
            r.output_rel_rmse < 0.2,
            "KC-4 rel-RMSE {}",
            r.output_rel_rmse
        );
        assert!(r.cosine > 0.98, "KC-4 cosine {}", r.cosine);
    }

    #[test]
    fn two_bit_degrades_but_stays_usable() {
        let r4 = quick(QuantScheme::kc4());
        let r2 = quick(QuantScheme::kc2());
        assert!(r2.output_rel_rmse > r4.output_rel_rmse * 2.0);
        assert!(r2.cosine > 0.7, "KC-2 cosine {}", r2.cosine);
        assert!(r2.attn_kl > r4.attn_kl);
    }

    #[test]
    fn channel_wise_beats_tensor_wise_under_outliers() {
        // The reason KIVI-style KC is the accuracy default (paper §VI-B).
        let kc = quick(QuantScheme::kc4());
        let kt = quick(QuantScheme::kt4());
        assert!(
            kc.output_rel_rmse < kt.output_rel_rmse,
            "KC {} should beat KT {}",
            kc.output_rel_rmse,
            kt.output_rel_rmse
        );
    }

    #[test]
    fn proxy_scores_ordered_like_table1() {
        let s4 = longbench_proxy(&quick(QuantScheme::kc4()));
        let s2 = longbench_proxy(&quick(QuantScheme::kc2()));
        assert!(s4 <= FP16_LONGBENCH);
        assert!(s2 < s4, "INT2 {s2} must trail INT4 {s4}");
        assert!(s4 > 47.5, "INT4 proxy {s4} should be near-lossless");
        assert!(s2 > 40.0, "INT2 proxy {s2} should remain usable");
    }

    #[test]
    fn fp4_schemes_evaluate() {
        // E2M1 keeps only ~2 mantissa levels per binade: raw output RMSE is
        // large; NVFP4's finer blocks must beat MXFP4's power-of-two scale.
        let mx = quick(QuantScheme::mxfp4());
        let nv = quick(QuantScheme::nvfp4());
        assert!(
            mx.output_rel_rmse < 1.0,
            "mxfp4 rel-RMSE {}",
            mx.output_rel_rmse
        );
        assert!(mx.attn_kl.is_finite());
        assert!(
            nv.output_rel_rmse <= mx.output_rel_rmse * 1.1,
            "nvfp4 {} vs mxfp4 {}",
            nv.output_rel_rmse,
            mx.output_rel_rmse
        );
    }
}
