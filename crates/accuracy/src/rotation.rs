//! Outlier-smoothing rotations (RotateKV / QuaRot style — paper §VII(a)).
//!
//! An orthogonal rotation applied to both Q and K leaves every attention
//! score invariant (`(RQ)·(RK)^T = Q·K^T`) while spreading the energy of
//! hot Key channels across the head dimension. After rotation, per-token
//! (tensor-wise) scaling — which channel outliers normally ruin — becomes
//! almost as accurate as channel-wise scaling. This module implements the
//! standard choice, a normalized Walsh–Hadamard transform, and an
//! evaluation that quantifies the effect on this crate's synthetic
//! outlier-structured caches.

use crate::eval::AccuracyReport;
use crate::synth::KvDistribution;
use bd_core::reference_attention;
use bd_kvcache::{BlockCodec, QuantScheme, ReferenceCodec, TokenMatrix, TokenRows};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// In-place fast Walsh–Hadamard transform with `1/√n` normalization
/// (orthogonal and self-inverse).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fwht(values: &mut [f32]) {
    let n = values.len();
    assert!(
        n.is_power_of_two(),
        "FWHT needs a power-of-two length, got {n}"
    );
    let mut h = 1;
    while h < n {
        for block in (0..n).step_by(h * 2) {
            for i in block..block + h {
                let (a, b) = (values[i], values[i + h]);
                values[i] = a + b;
                values[i + h] = a - b;
            }
        }
        h *= 2;
    }
    let norm = 1.0 / (n as f32).sqrt();
    for v in values {
        *v *= norm;
    }
}

/// Applies the normalized Hadamard rotation to every row of a matrix
/// (any representation in, flat [`TokenMatrix`] out).
pub fn rotate_rows<M: TokenRows + ?Sized>(m: &M) -> TokenMatrix {
    let mut out = TokenMatrix::with_capacity(m.token_count(), m.token_dim());
    for t in 0..m.token_count() {
        out.push_row(m.token_row(t));
        fwht(out.row_mut(t));
    }
    out
}

/// Evaluates a scheme with the Q/K rotation applied before quantization
/// (Values are quantized unrotated, as in RotateKV).
///
/// # Panics
///
/// Panics if `dim` is not a power of two.
pub fn evaluate_scheme_rotated(
    scheme: QuantScheme,
    dim: usize,
    tokens: usize,
    trials: usize,
) -> AccuracyReport {
    let dist = KvDistribution::new(dim, 1234);
    let mut rng = StdRng::seed_from_u64(99);
    let scale = 1.0 / (dim as f32).sqrt();
    let codec = ReferenceCodec;

    let mut sq_err = 0.0f64;
    let mut sq_ref = 0.0f64;
    let mut cos_sum = 0.0f64;
    let mut rows = 0usize;

    for _ in 0..trials {
        let k = dist.sample_keys(tokens, &mut rng);
        let v = dist.sample_values(tokens, &mut rng);
        let q = dist.sample_queries(4, &mut rng);

        // Rotate Q and K identically: scores are invariant, so the
        // unrotated reference is still the ground truth.
        let rk = rotate_rows(&k);
        let rq = rotate_rows(&q);

        let block = codec.encode(&rk, &v, scheme);
        let (drk, dv) = codec.decode(&block, scheme);

        let reference = reference_attention(&q, &k, &v, scale);
        let quantized = reference_attention(&rq, &drk, &dv, scale);

        for (r, z) in reference.iter().zip(&quantized) {
            let mut dot = 0.0f64;
            let mut nr = 0.0f64;
            let mut nz = 0.0f64;
            for (a, b) in r.iter().zip(z) {
                sq_err += f64::from(a - b) * f64::from(a - b);
                sq_ref += f64::from(*a) * f64::from(*a);
                dot += f64::from(*a) * f64::from(*b);
                nr += f64::from(*a) * f64::from(*a);
                nz += f64::from(*b) * f64::from(*b);
            }
            cos_sum += dot / (nr.sqrt() * nz.sqrt()).max(1e-12);
            rows += 1;
        }
    }

    AccuracyReport {
        output_rel_rmse: (sq_err / sq_ref.max(1e-12)).sqrt(),
        cosine: cos_sum / rows as f64,
        attn_kl: f64::NAN, // attention-weight KL not tracked for rotations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_scheme;

    #[test]
    fn fwht_is_self_inverse() {
        let original: Vec<f32> = (0..64).map(|i| (i as f32 * 0.7).sin() * 3.0).collect();
        let mut v = original.clone();
        fwht(&mut v);
        fwht(&mut v);
        for (a, b) in v.iter().zip(&original) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn fwht_preserves_energy() {
        let mut v: Vec<f32> = (0..128).map(|i| (i as f32 * 0.31).cos() * 2.0).collect();
        let before: f32 = v.iter().map(|x| x * x).sum();
        fwht(&mut v);
        let after: f32 = v.iter().map(|x| x * x).sum();
        assert!((before - after).abs() / before < 1e-5);
    }

    #[test]
    fn rotation_preserves_attention_scores() {
        let q = vec![vec![0.3, -0.1, 0.7, 0.2, -0.5, 0.9, 0.0, 0.4]];
        let k = vec![vec![1.0, 2.0, -1.0, 0.5, 0.0, -0.3, 0.8, -0.9]];
        let rq = rotate_rows(&q);
        let rk = rotate_rows(&k);
        let dot = |a: &[f32], b: &[f32]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>();
        assert!((dot(&q[0], &k[0]) - dot(&rq[0], &rk[0])).abs() < 1e-5);
    }

    #[test]
    fn fwht_smooths_channel_outliers() {
        // One hot channel becomes 1/√n everywhere.
        let mut v = vec![0.0f32; 64];
        v[7] = 32.0;
        fwht(&mut v);
        let max = v.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!(
            (max - 4.0).abs() < 1e-4,
            "peak should drop to 32/√64, got {max}"
        );
    }

    #[test]
    fn rotation_rescues_tensor_wise_quantization() {
        // The RotateKV claim: with rotated keys, KT-4 approaches KC-4
        // accuracy, because the outlier channels that ruin per-token
        // scaling are spread across the head dimension.
        let plain_kt = evaluate_scheme(QuantScheme::kt4(), 64, 256, 2);
        let rotated_kt = evaluate_scheme_rotated(QuantScheme::kt4(), 64, 256, 2);
        assert!(
            rotated_kt.output_rel_rmse < plain_kt.output_rel_rmse * 0.5,
            "rotation should cut KT-4 error: {} -> {}",
            plain_kt.output_rel_rmse,
            rotated_kt.output_rel_rmse
        );
    }

    #[test]
    fn rotation_leaves_channel_wise_roughly_unchanged() {
        let plain = evaluate_scheme(QuantScheme::kc4(), 64, 256, 2);
        let rotated = evaluate_scheme_rotated(QuantScheme::kc4(), 64, 256, 2);
        let ratio = rotated.output_rel_rmse / plain.output_rel_rmse;
        assert!(ratio > 0.4 && ratio < 2.5, "KC-4 ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn fwht_rejects_non_power_of_two() {
        fwht(&mut [0.0; 6]);
    }
}
