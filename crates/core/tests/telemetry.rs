//! Telemetry ↔ cost-model agreement: the fast-dequant instruction counts
//! the fused functional kernel actually streams must equal the CUDA-core
//! dequant slots the analytic packing-kernel profile charges for the same
//! shape — the wiring that keeps Fig. 15-style dequant fractions honest.

use bd_core::codec::FragmentCodec;
use bd_core::{
    attend_packed_blocks_fused, fast_dequant_slots_per_elem, packing_kernel_profile, ArchPath,
    AttentionConfig, DecodeShape, MatmulEngine, OnlineSoftmax, OptimizationFlags,
};
use bd_gpu_sim::GpuArch;
use bd_kvcache::{BlockCodec, PackLayout, PackedBlock, QuantScheme, TokenMatrix};
use bd_lowbit::BitWidth;

fn synth_blocks(
    codec: &FragmentCodec,
    scheme: QuantScheme,
    nr: usize,
    n_blocks: usize,
    d: usize,
) -> Vec<PackedBlock> {
    (0..n_blocks)
        .map(|b| {
            let k =
                TokenMatrix::from_fn(nr, d, |t, c| ((b * nr * d + t * d + c) as f32 * 0.37).sin());
            let v =
                TokenMatrix::from_fn(nr, d, |t, c| ((b * nr * d + t * d + c) as f32 * 0.53).cos());
            codec.encode(&k, &v, scheme)
        })
        .collect()
}

/// Runs the fused kernel over one KV group and checks its counted dequant
/// ops against the profile's `cuda.dequant` charge for the matching shape.
fn check_scheme(scheme: QuantScheme, width: BitWidth) {
    let layout = PackLayout::sm80_default();
    let codec = FragmentCodec::new(layout);
    let nr = layout.residual_block(width);
    let d = 64;
    let gq = 4;
    let n_blocks = 3;
    let blocks = synth_blocks(&codec, scheme, nr, n_blocks, d);
    let q: Vec<Vec<f32>> = (0..gq)
        .map(|g| (0..d).map(|c| ((g * d + c) as f32 * 0.71).sin()).collect())
        .collect();

    let mut state = OnlineSoftmax::new(gq, d);
    let counted = attend_packed_blocks_fused(
        &q,
        &blocks,
        &codec,
        scheme,
        1.0 / (d as f32).sqrt(),
        MatmulEngine::Mma,
        &mut state,
    );

    // One KV group (gq query heads sharing one KV head), all tokens packed.
    let attn = AttentionConfig::gqa(gq, 1, d);
    let shape = DecodeShape::new(1, attn, nr * n_blocks);
    let profile = packing_kernel_profile(
        &shape,
        scheme,
        &GpuArch::rtx4090(),
        ArchPath::Sm80,
        OptimizationFlags::ALL,
        false,
    );

    let counted_slots = f64::from(counted.total());
    assert!(
        (profile.cuda.dequant - counted_slots).abs() < 1e-6,
        "{scheme}: model charges {} dequant slots, fused kernel streamed {counted_slots}",
        profile.cuda.dequant
    );
    // Cross-check the per-element rate itself: K and V elements together.
    let elems = 2.0 * (nr * n_blocks * d) as f64;
    assert!((counted_slots - elems * fast_dequant_slots_per_elem(width)).abs() < 1e-6);
}

#[test]
fn kc4_dequant_telemetry_matches_cost_model() {
    check_scheme(QuantScheme::kc4(), BitWidth::B4);
}

#[test]
fn kc2_dequant_telemetry_matches_cost_model() {
    check_scheme(QuantScheme::kc2(), BitWidth::B2);
}

#[test]
fn int2_rate_differs_from_int4_rate() {
    // The pre-telemetry model charged the INT4 rate for every width; the
    // wired model must distinguish them (23/16 vs 11/8 slots per element).
    assert!(fast_dequant_slots_per_elem(BitWidth::B2) > fast_dequant_slots_per_elem(BitWidth::B4));
}
