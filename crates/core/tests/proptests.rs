//! Property-based tests for the BitDecoding engine: softmax equivalences,
//! codec layout coordination, split-KV invariance, and the fused
//! flat-layout decode path against its materializing reference.

use bd_core::codec::FragmentCodec;
use bd_core::softmax::{reference_attention, OnlineSoftmax};
use bd_core::{
    attend_packed_blocks, attend_packed_blocks_fused, attend_packed_blocks_multi,
    attend_packed_blocks_parallel, attend_packed_blocks_sharded, attend_residual, query_transform,
    ungroup_outputs, AttentionConfig, MatmulEngine, SharerBlocks,
};
use bd_gpu_sim::Tile;
use bd_kvcache::{BlockCodec, PackLayout, PackedBlock, QuantScheme, TokenMatrix};
use bd_lowbit::PackOrder;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut s = seed | 1;
    (0..rows)
        .map(|_| {
            (0..cols)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
                    ((s >> 40) as i32 % 1000) as f32 / 250.0 - 2.0
                })
                .collect()
        })
        .collect()
}

fn max_diff(a: &[Vec<f32>], b: &[Vec<f32>]) -> f32 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| x.iter().zip(y).map(|(p, q)| (p - q).abs()))
        .fold(0.0, f32::max)
}

fn arb_int_scheme() -> impl Strategy<Value = QuantScheme> {
    prop_oneof![
        Just(QuantScheme::kc4()),
        Just(QuantScheme::kt4()),
        Just(QuantScheme::kc2()),
        Just(QuantScheme::kt2()),
    ]
}

fn arb_engine() -> impl Strategy<Value = MatmulEngine> {
    prop_oneof![Just(MatmulEngine::Mma), Just(MatmulEngine::Wgmma)]
}

/// Encodes `n_blocks` full residual blocks of synthetic KV, returning the
/// logical matrices and the packed blocks.
fn synth_blocks(
    codec: &FragmentCodec,
    scheme: QuantScheme,
    n_blocks: usize,
    dim: usize,
    seed: u64,
) -> (TokenMatrix, TokenMatrix, Vec<PackedBlock>) {
    let nr = PackLayout::sm80_default().residual_block(scheme.int_width().unwrap());
    let k: TokenMatrix = matrix(nr * n_blocks, dim, seed).into();
    let v: TokenMatrix = matrix(nr * n_blocks, dim, seed ^ 0xBEEF).into();
    let blocks = (0..n_blocks)
        .map(|b| {
            codec.encode(
                &k.slice_rows(b * nr..(b + 1) * nr),
                &v.slice_rows(b * nr..(b + 1) * nr),
                scheme,
            )
        })
        .collect();
    (k, v, blocks)
}

proptest! {
    /// Online (tiled) softmax equals dense attention for any tiling.
    #[test]
    fn online_softmax_equals_dense(seed: u64, tiles in 1usize..6, tile_tokens in 4usize..24) {
        let rows = 3;
        let dim = 8;
        let total = tiles * tile_tokens;
        let q = matrix(rows, dim, seed);
        let k = matrix(total, dim, seed ^ 1);
        let v = matrix(total, dim, seed ^ 2);
        let scale = 0.3;

        let mut state = OnlineSoftmax::new(rows, dim);
        for i in 0..tiles {
            let range = i * tile_tokens..(i + 1) * tile_tokens;
            let s = Tile::from_fn(rows, tile_tokens, |r, c| {
                let t = range.start + c;
                q[r].iter().zip(&k[t]).map(|(a, b)| a * b).sum::<f32>() * scale
            });
            let vt = Tile::from_fn(tile_tokens, dim, |t, c| v[range.start + t][c]);
            state.step_tile(&s, &vt);
        }
        let got = state.finish();
        let want = reference_attention(&q, &k, &v, scale);
        prop_assert!(max_diff(&got, &want) < 1e-4);
    }

    /// Split-KV merge is invariant to the split point.
    #[test]
    fn split_point_does_not_matter(seed: u64, split_at in 1usize..7) {
        let rows = 2;
        let dim = 8;
        let tile_tokens = 8;
        let tiles = 8;
        let q = matrix(rows, dim, seed);
        let k = matrix(tiles * tile_tokens, dim, seed ^ 3);
        let v = matrix(tiles * tile_tokens, dim, seed ^ 4);
        let scale = 0.25;

        let run = |tile_range: std::ops::Range<usize>| {
            let mut st = OnlineSoftmax::new(rows, dim);
            for i in tile_range {
                let base = i * tile_tokens;
                let s = Tile::from_fn(rows, tile_tokens, |r, c| {
                    q[r].iter().zip(&k[base + c]).map(|(a, b)| a * b).sum::<f32>() * scale
                });
                let vt = Tile::from_fn(tile_tokens, dim, |t, c| v[base + t][c]);
                st.step_tile(&s, &vt);
            }
            st
        };
        let full = run(0..tiles).finish();
        let merged = OnlineSoftmax::merge(vec![run(0..split_at), run(split_at..tiles)]).finish();
        prop_assert!(max_diff(&full, &merged) < 1e-4);
    }

    /// N-way merge of disjoint partials equals the single-state pass for
    /// any shard count — the invariant the thread-parallel decode relies
    /// on (1-shard vs N-shard equivalence of `OnlineSoftmax::merge`).
    #[test]
    fn merge_is_shard_count_invariant(seed: u64, shards in 2usize..6) {
        let rows = 3;
        let dim = 8;
        let tiles = 12;
        let tile_tokens = 8;
        let q = matrix(rows, dim, seed);
        let k = matrix(tiles * tile_tokens, dim, seed ^ 5);
        let v = matrix(tiles * tile_tokens, dim, seed ^ 6);
        let scale = 0.2;

        let step = |st: &mut OnlineSoftmax, i: usize| {
            let base = i * tile_tokens;
            let s = Tile::from_fn(rows, tile_tokens, |r, c| {
                q[r].iter().zip(&k[base + c]).map(|(a, b)| a * b).sum::<f32>() * scale
            });
            let vt = Tile::from_fn(tile_tokens, dim, |t, c| v[base + t][c]);
            st.step_tile(&s, &vt);
        };
        let mut single = OnlineSoftmax::new(rows, dim);
        for i in 0..tiles {
            step(&mut single, i);
        }
        let chunk = tiles.div_ceil(shards);
        let partials: Vec<OnlineSoftmax> = (0..tiles)
            .step_by(chunk)
            .map(|start| {
                let mut st = OnlineSoftmax::new(rows, dim);
                for i in start..(start + chunk).min(tiles) {
                    step(&mut st, i);
                }
                st
            })
            .collect();
        let merged = OnlineSoftmax::merge(partials).finish();
        prop_assert!(max_diff(&single.finish(), &merged) < 1e-4);
    }

    /// Cooperative warped softmax equals the reference for every Wn that
    /// divides the tile.
    #[test]
    fn cooperative_softmax_wn_invariant(seed: u64, wn in 1usize..5) {
        let rows = 4;
        let dim = 8;
        let tokens = 32;
        let s_vals = matrix(rows, tokens, seed);
        let v_vals = matrix(tokens, dim, seed ^ 5);
        let s = Tile::from_fn(rows, tokens, |r, c| s_vals[r][c] * 2.0);
        let v = Tile::from_fn(tokens, dim, |t, c| v_vals[t][c]);
        if tokens % wn != 0 {
            return Ok(());
        }
        let mut reference = OnlineSoftmax::new(rows, dim);
        reference.step_tile(&s, &v);
        let mut warped = OnlineSoftmax::new(rows, dim);
        warped.step_tile_warped(&s, &v, wn, true);
        prop_assert!(max_diff(&reference.finish(), &warped.finish()) < 1e-5);
    }

    /// Query transform and ungroup are mutual inverses for any valid GQA
    /// configuration.
    #[test]
    fn query_transform_round_trips(hkv in 1usize..8, gq in 1usize..8, dim in 1usize..32, seed: u64) {
        let attn = AttentionConfig::new(hkv * gq, hkv, dim);
        let q = matrix(attn.heads_q, dim, seed);
        let grouped = query_transform(&q, &attn);
        prop_assert_eq!(grouped.len(), hkv);
        for block in &grouped {
            prop_assert_eq!(block.len(), gq);
        }
        prop_assert_eq!(ungroup_outputs(&grouped, &attn), q);
    }

    /// Fragment codec: same-layout decode reconstructs, any mismatched
    /// layout corrupts (for blocks large enough to span warps).
    #[test]
    fn fragment_codec_layout_coordination(seed: u64, mismatch_kind in 0usize..2) {
        let scheme = QuantScheme::kc4();
        let layout = PackLayout::sm80_default();
        let nr = layout.residual_block(bd_lowbit::BitWidth::B4);
        let k: TokenMatrix = matrix(nr, 32, seed).into();
        let v: TokenMatrix = matrix(nr, 32, seed ^ 9).into();
        let good = FragmentCodec::new(layout);
        let block = good.encode(&k, &v, scheme);
        let (dk, _) = good.decode(&block, scheme);
        prop_assert!(max_diff(&dk.to_rows(), &k.to_rows()) < 0.4, "same layout must reconstruct");

        let bad_layout = match mismatch_kind {
            0 => PackLayout { order: PackOrder::Linear, ..layout },
            _ => PackLayout { warps_n: 2, ..layout },
        };
        let bad = FragmentCodec::new(bad_layout);
        let (wrong, _) = bad.decode(&block, scheme);
        prop_assert!(max_diff(&wrong.to_rows(), &k.to_rows()) > 0.4, "mismatch must corrupt");
    }

    /// The fused flat-layout decode path matches the materializing path
    /// within f32 accumulation-order noise (1e-4 max-abs-diff) for every
    /// integer scheme and both MMA engines, and both track the dense FP32
    /// reference within quantization error. Row sums of the normalized
    /// attention weights are checked implicitly: identical `l` means
    /// identical normalization.
    #[test]
    fn fused_decode_matches_materializing_and_reference(
        seed: u64,
        scheme in arb_int_scheme(),
        engine in arb_engine(),
        n_blocks in 1usize..4,
    ) {
        let codec = FragmentCodec::new(PackLayout::sm80_default());
        let dim = 32;
        let gq = 4;
        let (k, v, blocks) = synth_blocks(&codec, scheme, n_blocks, dim, seed);
        let q = matrix(gq, dim, seed ^ 77);
        let scale = 1.0 / (dim as f32).sqrt();

        let mut materializing = OnlineSoftmax::new(gq, dim);
        attend_packed_blocks(
            &q, &blocks, &codec, scheme, scale, 4, true, engine, &mut materializing,
        );
        let mut fused = OnlineSoftmax::new(gq, dim);
        let ops = attend_packed_blocks_fused(&q, &blocks, &codec, scheme, scale, engine, &mut fused);
        prop_assert!(ops.total() > 0, "dequant work must be accounted");

        let a = materializing.finish();
        let b = fused.finish();
        prop_assert!(
            max_diff(&a, &b) < 1e-4,
            "fused vs materializing diff {} ({scheme}, {engine:?})",
            max_diff(&a, &b)
        );

        // Both paths attend over the *decoded* values; compare against the
        // dense reference on those values (exact up to f16/engine noise).
        let (dk, dv) = codec.decode(&blocks[0], scheme);
        let mut dk_all = dk;
        let mut dv_all = dv;
        for block in &blocks[1..] {
            let (bk, bv) = codec.decode(block, scheme);
            dk_all.extend_rows(&bk);
            dv_all.extend_rows(&bv);
        }
        prop_assert_eq!(dk_all.tokens(), k.tokens());
        prop_assert_eq!(dv_all.tokens(), v.tokens());
        let want = reference_attention(&q, &dk_all, &dv_all, scale);
        prop_assert!(
            max_diff(&b, &want) < 2e-2,
            "fused vs dense-reference diff {}",
            max_diff(&b, &want)
        );
    }

    /// Thread-sharded split-K equals the sequential fused walk for any
    /// shard count (1-thread vs N-thread equivalence through
    /// `OnlineSoftmax::merge`).
    #[test]
    fn sharded_decode_is_shard_count_invariant(
        seed: u64,
        scheme in arb_int_scheme(),
        shards in 1usize..6,
        n_blocks in 1usize..5,
    ) {
        let codec = FragmentCodec::new(PackLayout::sm80_default());
        let dim = 16;
        let gq = 2;
        let (_, _, blocks) = synth_blocks(&codec, scheme, n_blocks, dim, seed);
        let q = matrix(gq, dim, seed ^ 31);
        let scale = 1.0 / (dim as f32).sqrt();

        let mut sequential = OnlineSoftmax::new(gq, dim);
        attend_packed_blocks_fused(
            &q, &blocks, &codec, scheme, scale, MatmulEngine::Mma, &mut sequential,
        );
        let mut sharded = OnlineSoftmax::new(gq, dim);
        attend_packed_blocks_sharded(
            &q, &blocks, &codec, scheme, scale, MatmulEngine::Mma, shards, &mut sharded,
        );
        prop_assert!(
            max_diff(&sequential.finish(), &sharded.finish()) < 1e-5,
            "shards = {shards}"
        );
    }

    /// Edge cases of the fused path: an empty block list leaves the state
    /// untouched, and a lone residual tail (partial block, down to a
    /// single token) still matches the dense reference.
    #[test]
    fn fused_edges_empty_and_partial_tail(seed: u64, tail in 1usize..17) {
        let codec = FragmentCodec::new(PackLayout::sm80_default());
        let dim = 16;
        let gq = 2;
        let q = matrix(gq, dim, seed ^ 13);
        let scale = 1.0 / (dim as f32).sqrt();

        // Empty packed region: identity on the state.
        let mut state = OnlineSoftmax::new(gq, dim);
        let none: &[PackedBlock] = &[];
        let ops = attend_packed_blocks_fused(
            &q, none, &codec, QuantScheme::kc4(), scale, MatmulEngine::Mma, &mut state,
        );
        prop_assert_eq!(ops.total(), 0);

        // Partial tail (1..=16 tokens, including single-token decode) runs
        // through the residual kernel on the same state.
        let res_k: TokenMatrix = matrix(tail, dim, seed ^ 14).into();
        let res_v: TokenMatrix = matrix(tail, dim, seed ^ 15).into();
        attend_residual(&q, &res_k, &res_v, scale, 4, true, MatmulEngine::Mma, &mut state);
        let got = state.finish();
        let want = reference_attention(&q, &res_k, &res_v, scale);
        prop_assert!(max_diff(&got, &want) < 2e-2, "tail = {tail}");
    }

    /// Full pipeline: packed blocks + ragged residual through the fused
    /// path equal the dense reference over the logically decoded KV.
    #[test]
    fn fused_pipeline_with_tail_matches_reference(
        seed: u64,
        scheme in arb_int_scheme(),
        n_blocks in 1usize..3,
        tail in 0usize..9,
    ) {
        let codec = FragmentCodec::new(PackLayout::sm80_default());
        let dim = 32;
        let gq = 2;
        let (k, v, blocks) = synth_blocks(&codec, scheme, n_blocks, dim, seed);
        let res_k: TokenMatrix = matrix(tail, dim, seed ^ 21).into();
        let res_v: TokenMatrix = matrix(tail, dim, seed ^ 22).into();
        let q = matrix(gq, dim, seed ^ 23);
        let scale = 1.0 / (dim as f32).sqrt();

        let mut state = OnlineSoftmax::new(gq, dim);
        attend_packed_blocks_sharded(
            &q, &blocks, &codec, scheme, scale, MatmulEngine::Mma, 2, &mut state,
        );
        if tail > 0 {
            attend_residual(&q, &res_k, &res_v, scale, 4, true, MatmulEngine::Mma, &mut state);
        }
        let got = state.finish();

        // Dense reference over decoded packed values + the FP16 residual.
        let (mut dk, mut dv) = codec.decode(&blocks[0], scheme);
        for block in &blocks[1..] {
            let (bk, bv) = codec.decode(block, scheme);
            dk.extend_rows(&bk);
            dv.extend_rows(&bv);
        }
        dk.extend_rows(&res_k);
        dv.extend_rows(&res_v);
        prop_assert_eq!(dk.tokens(), k.tokens() + tail);
        prop_assert_eq!(dv.tokens(), v.tokens() + tail);
        let want = reference_attention(&q, &dk, &dv, scale);
        prop_assert!(
            max_diff(&got, &want) < 2e-2,
            "pipeline diff {} ({scheme}, blocks {n_blocks}, tail {tail})",
            max_diff(&got, &want)
        );
    }

    /// Cascade multi-query walk: each sharer's partial is **bitwise**
    /// identical to the independent per-sequence parallel walk over its
    /// full `prefix ++ suffix` block list, for any prefix length, sharer
    /// count, ragged suffix lengths, scheme, and engine — and the deduped
    /// dequant-op count is strictly below the per-sequence sum whenever a
    /// prefix is actually shared.
    #[test]
    fn multi_query_walk_is_bitwise_per_sharer(
        seed: u64,
        scheme in arb_int_scheme(),
        engine in arb_engine(),
        p in 0usize..4,
        n_sharers in 1usize..5,
    ) {
        let codec = FragmentCodec::new(PackLayout::sm80_default());
        let dim = 16;
        let gq = 2;
        let (_, _, prefix) = synth_blocks(&codec, scheme, p.max(1), dim, seed);
        let prefix = &prefix[..p];
        let suffixes: Vec<Vec<PackedBlock>> = (0..n_sharers)
            .map(|i| {
                let n = (seed as usize >> (i * 2)) % 3;
                let (_, _, b) = synth_blocks(&codec, scheme, n.max(1), dim, seed ^ (i as u64 + 7));
                b.into_iter().take(n).collect()
            })
            .collect();
        let qs: Vec<Vec<Vec<f32>>> = (0..n_sharers)
            .map(|i| matrix(gq, dim, seed ^ (0x51 + i as u64)))
            .collect();
        let scale = 1.0 / (dim as f32).sqrt();

        let sharers: Vec<SharerBlocks<'_, PackedBlock>> = qs
            .iter()
            .zip(&suffixes)
            .map(|(q, suffix)| SharerBlocks { q, suffix })
            .collect();
        let (partials, multi_ops) =
            attend_packed_blocks_multi(prefix, &sharers, dim, &codec, scheme, scale, engine);
        prop_assert_eq!(partials.len(), n_sharers);

        let mut solo_ops_total = 0u32;
        for ((q, suffix), got) in qs.iter().zip(&suffixes).zip(&partials) {
            let all: Vec<&PackedBlock> = prefix.iter().chain(suffix.iter()).collect();
            let mut want = OnlineSoftmax::new(gq, dim);
            let solo_ops = attend_packed_blocks_parallel(
                q, &all, &codec, scheme, scale, engine, &mut want,
            );
            solo_ops_total += solo_ops.total();
            let got_rows = got.clone().finish();
            let want_rows = want.finish();
            for (gr, wr) in got_rows.iter().zip(&want_rows) {
                for (g, w) in gr.iter().zip(wr) {
                    prop_assert_eq!(
                        g.to_bits(), w.to_bits(),
                        "multi partial must be bitwise (p={}, sharers={})", p, n_sharers
                    );
                }
            }
        }
        if p > 0 && n_sharers > 1 {
            prop_assert!(
                multi_ops.total() < solo_ops_total,
                "shared prefix must dedup dequant work ({} vs {})",
                multi_ops.total(), solo_ops_total
            );
        } else {
            prop_assert_eq!(multi_ops.total(), solo_ops_total);
        }
    }
}
