//! Property-based tests for the BitDecoding engine: softmax equivalences,
//! codec layout coordination, and split-KV invariance.

use bd_core::codec::FragmentCodec;
use bd_core::softmax::{reference_attention, OnlineSoftmax};
use bd_core::{query_transform, ungroup_outputs, AttentionConfig};
use bd_gpu_sim::Tile;
use bd_kvcache::{BlockCodec, PackLayout, QuantScheme, TokenMatrix};
use bd_lowbit::PackOrder;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut s = seed | 1;
    (0..rows)
        .map(|_| {
            (0..cols)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
                    ((s >> 40) as i32 % 1000) as f32 / 250.0 - 2.0
                })
                .collect()
        })
        .collect()
}

fn max_diff(a: &[Vec<f32>], b: &[Vec<f32>]) -> f32 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| x.iter().zip(y).map(|(p, q)| (p - q).abs()))
        .fold(0.0, f32::max)
}

proptest! {
    /// Online (tiled) softmax equals dense attention for any tiling.
    #[test]
    fn online_softmax_equals_dense(seed: u64, tiles in 1usize..6, tile_tokens in 4usize..24) {
        let rows = 3;
        let dim = 8;
        let total = tiles * tile_tokens;
        let q = matrix(rows, dim, seed);
        let k = matrix(total, dim, seed ^ 1);
        let v = matrix(total, dim, seed ^ 2);
        let scale = 0.3;

        let mut state = OnlineSoftmax::new(rows, dim);
        for i in 0..tiles {
            let range = i * tile_tokens..(i + 1) * tile_tokens;
            let s = Tile::from_fn(rows, tile_tokens, |r, c| {
                let t = range.start + c;
                q[r].iter().zip(&k[t]).map(|(a, b)| a * b).sum::<f32>() * scale
            });
            let vt = Tile::from_fn(tile_tokens, dim, |t, c| v[range.start + t][c]);
            state.step_tile(&s, &vt);
        }
        let got = state.finish();
        let want = reference_attention(&q, &k, &v, scale);
        prop_assert!(max_diff(&got, &want) < 1e-4);
    }

    /// Split-KV merge is invariant to the split point.
    #[test]
    fn split_point_does_not_matter(seed: u64, split_at in 1usize..7) {
        let rows = 2;
        let dim = 8;
        let tile_tokens = 8;
        let tiles = 8;
        let q = matrix(rows, dim, seed);
        let k = matrix(tiles * tile_tokens, dim, seed ^ 3);
        let v = matrix(tiles * tile_tokens, dim, seed ^ 4);
        let scale = 0.25;

        let run = |tile_range: std::ops::Range<usize>| {
            let mut st = OnlineSoftmax::new(rows, dim);
            for i in tile_range {
                let base = i * tile_tokens;
                let s = Tile::from_fn(rows, tile_tokens, |r, c| {
                    q[r].iter().zip(&k[base + c]).map(|(a, b)| a * b).sum::<f32>() * scale
                });
                let vt = Tile::from_fn(tile_tokens, dim, |t, c| v[base + t][c]);
                st.step_tile(&s, &vt);
            }
            st
        };
        let full = run(0..tiles).finish();
        let merged = OnlineSoftmax::merge(vec![run(0..split_at), run(split_at..tiles)]).finish();
        prop_assert!(max_diff(&full, &merged) < 1e-4);
    }

    /// Cooperative warped softmax equals the reference for every Wn that
    /// divides the tile.
    #[test]
    fn cooperative_softmax_wn_invariant(seed: u64, wn in 1usize..5) {
        let rows = 4;
        let dim = 8;
        let tokens = 32;
        let s_vals = matrix(rows, tokens, seed);
        let v_vals = matrix(tokens, dim, seed ^ 5);
        let s = Tile::from_fn(rows, tokens, |r, c| s_vals[r][c] * 2.0);
        let v = Tile::from_fn(tokens, dim, |t, c| v_vals[t][c]);
        if tokens % wn != 0 {
            return Ok(());
        }
        let mut reference = OnlineSoftmax::new(rows, dim);
        reference.step_tile(&s, &v);
        let mut warped = OnlineSoftmax::new(rows, dim);
        warped.step_tile_warped(&s, &v, wn, true);
        prop_assert!(max_diff(&reference.finish(), &warped.finish()) < 1e-5);
    }

    /// Query transform and ungroup are mutual inverses for any valid GQA
    /// configuration.
    #[test]
    fn query_transform_round_trips(hkv in 1usize..8, gq in 1usize..8, dim in 1usize..32, seed: u64) {
        let attn = AttentionConfig::new(hkv * gq, hkv, dim);
        let q = matrix(attn.heads_q, dim, seed);
        let grouped = query_transform(&q, &attn);
        prop_assert_eq!(grouped.len(), hkv);
        for block in &grouped {
            prop_assert_eq!(block.len(), gq);
        }
        prop_assert_eq!(ungroup_outputs(&grouped, &attn), q);
    }

    /// Fragment codec: same-layout decode reconstructs, any mismatched
    /// layout corrupts (for blocks large enough to span warps).
    #[test]
    fn fragment_codec_layout_coordination(seed: u64, mismatch_kind in 0usize..2) {
        let scheme = QuantScheme::kc4();
        let layout = PackLayout::sm80_default();
        let nr = layout.residual_block(bd_lowbit::BitWidth::B4);
        let k: TokenMatrix = matrix(nr, 32, seed);
        let v: TokenMatrix = matrix(nr, 32, seed ^ 9);
        let good = FragmentCodec::new(layout);
        let block = good.encode(&k, &v, scheme);
        let (dk, _) = good.decode(&block, scheme);
        prop_assert!(max_diff(&dk, &k) < 0.4, "same layout must reconstruct");

        let bad_layout = match mismatch_kind {
            0 => PackLayout { order: PackOrder::Linear, ..layout },
            _ => PackLayout { warps_n: 2, ..layout },
        };
        let bad = FragmentCodec::new(bad_layout);
        let (wrong, _) = bad.decode(&block, scheme);
        prop_assert!(max_diff(&wrong, &k) > 0.4, "mismatch must corrupt");
    }
}
