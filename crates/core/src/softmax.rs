//! Online (flash-style) softmax, split-KV merging, and the multi-warp
//! cooperative softmax of paper Algorithm 1.
//!
//! BitDecoding's warp layout puts `Wn` warps side by side along the token
//! dimension, so one score tile `S ∈ R^{Tm×Tn}` is distributed across warps
//! as column slices. The row-wise max/sum then *must* be reduced across
//! warps (via the `sTMP` shared buffer) before any warp exponentiates —
//! otherwise each warp normalizes against a stale/local maximum and the
//! shared accumulator is rescaled inconsistently. [`OnlineSoftmax::step_tile_warped`]
//! models both the cooperative protocol and, when disabled, the exact
//! inconsistency (Table III's "Valid ✗" row).

use bd_gpu_sim::Tile;
use bd_kvcache::TokenRows;

/// Running flash-attention state for a block of query rows.
///
/// The output accumulator is stored **flat** (`rows × dim` row-major in one
/// `Vec<f32>`) — the same flat-layout discipline as
/// [`bd_kvcache::TokenMatrix`], so per-tile rescale/accumulate loops run
/// over contiguous slices with no per-row indirection.
#[derive(Clone, Debug)]
pub struct OnlineSoftmax {
    /// Running row maxima `m_i`.
    pub m: Vec<f32>,
    /// Running row denominators `l_i`.
    pub l: Vec<f32>,
    /// Unnormalized output accumulator `O_i`, flat row-major `rows × dim`.
    acc: Vec<f32>,
    dim: usize,
}

impl OnlineSoftmax {
    /// Fresh state for `rows` query rows and `dim` output channels.
    pub fn new(rows: usize, dim: usize) -> Self {
        OnlineSoftmax {
            m: vec![f32::NEG_INFINITY; rows],
            l: vec![0.0; rows],
            acc: vec![0.0; rows * dim],
            dim,
        }
    }

    /// Query rows tracked.
    pub fn rows(&self) -> usize {
        self.m.len()
    }

    /// Output channels tracked.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One query row's unnormalized accumulator.
    pub fn acc_row(&self, r: usize) -> &[f32] {
        &self.acc[r * self.dim..(r + 1) * self.dim]
    }

    /// One query row's unnormalized accumulator, mutably.
    pub fn acc_row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.acc[r * self.dim..(r + 1) * self.dim]
    }

    /// Folds one `rows × Tn` score tile and its `Tn × dim` value tile into
    /// the state (the single-warp / reference path).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn step_tile(&mut self, s: &Tile, v: &Tile) {
        self.step_rows(s, v);
    }

    /// [`OnlineSoftmax::step_tile`] over any token-matrix value
    /// representation — the fused decode kernel feeds flat
    /// [`bd_kvcache::TokenMatrix`] buffers here without copying them into
    /// a [`Tile`].
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn step_rows<V: TokenRows + ?Sized>(&mut self, s: &Tile, v: &V) {
        assert_eq!(s.rows(), self.rows(), "score tile rows");
        assert_eq!(s.cols(), v.token_count(), "score/value token mismatch");
        assert_eq!(v.token_dim(), self.dim, "value dim mismatch");
        let dim = self.dim;
        for i in 0..s.rows() {
            let row_max = s.row(i).iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let m_new = self.m[i].max(row_max);
            let correction = (self.m[i] - m_new).exp();
            let mut l_new = self.l[i] * correction;
            let acc = &mut self.acc[i * dim..(i + 1) * dim];
            for a in acc.iter_mut() {
                *a *= correction;
            }
            for t in 0..s.cols() {
                let p = (s[(i, t)] - m_new).exp();
                l_new += p;
                for (a, &vv) in acc.iter_mut().zip(v.token_row(t)) {
                    *a += p * vv;
                }
            }
            self.m[i] = m_new;
            self.l[i] = l_new;
        }
    }

    /// The multi-warp path: the score tile is split into `wn` column
    /// slices, one per warp.
    ///
    /// With `cooperative` set, warps reduce their row maxima and sums
    /// through shared memory (`sTMP`) before exponentiating — numerically
    /// identical to [`OnlineSoftmax::step_tile`]. Without it, each warp
    /// uses its *local* max and rescales the shared accumulator
    /// independently, reproducing the data race that makes `Wn > 1` invalid
    /// without Algorithm 1 (paper Table III).
    ///
    /// # Panics
    ///
    /// Panics if `wn` does not divide the tile width, or on shape mismatch.
    pub fn step_tile_warped(&mut self, s: &Tile, v: &Tile, wn: usize, cooperative: bool) {
        assert!(
            wn > 0 && s.cols().is_multiple_of(wn),
            "Wn must divide the tile width"
        );
        if wn == 1 || cooperative {
            // Cooperative protocol: intra-warp register reduction, then an
            // sTMP round-trip, yields the exact global row max/sum. The
            // arithmetic is identical to the reference path.
            self.step_tile(s, v);
            return;
        }
        // Non-cooperative Wn > 1: without the sTMP reduction, each warp
        // only sees the row maximum of its own column slice. It
        // exponentiates against that *local* max and accumulates into the
        // shared buffers without rescaling anyone else's contribution —
        // mixing incompatible normalizations. The stored running max ends
        // up as whichever warp wrote last.
        let slice = s.cols() / wn;
        let dim = self.dim;
        for w in 0..wn {
            let t0 = w * slice;
            for i in 0..s.rows() {
                let mut local_max = f32::NEG_INFINITY;
                for t in t0..t0 + slice {
                    local_max = local_max.max(s[(i, t)]);
                }
                let acc = &mut self.acc[i * dim..(i + 1) * dim];
                for t in t0..t0 + slice {
                    let p = (s[(i, t)] - local_max).exp();
                    self.l[i] += p;
                    for (a, &vv) in acc.iter_mut().zip(v.row(t)) {
                        *a += p * vv;
                    }
                }
                self.m[i] = local_max; // last writer wins
            }
        }
    }

    /// Normalizes and returns the attention output (`rows × dim`).
    pub fn finish(self) -> Vec<Vec<f32>> {
        let dim = self.dim;
        self.acc
            .chunks_exact(dim.max(1))
            .zip(self.l)
            .map(|(row, l)| {
                let inv = if l > 0.0 { 1.0 / l } else { 0.0 };
                row.iter().map(|x| x * inv).collect()
            })
            .collect()
    }

    /// Merges split-KV partial states (log-sum-exp combine): each partial
    /// covered a disjoint token range; the merge is exact. This is the
    /// combine step of the paper's cooperative split-K softmax, and the
    /// reduction the parallel decode path uses to fold per-shard partials.
    ///
    /// # Panics
    ///
    /// Panics if `partials` is empty or shapes differ.
    pub fn merge(partials: Vec<OnlineSoftmax>) -> OnlineSoftmax {
        let mut iter = partials.into_iter();
        let mut out = iter.next().expect("at least one partial");
        let dim = out.dim;
        for p in iter {
            assert_eq!(p.rows(), out.rows(), "partial shape mismatch");
            assert_eq!(p.dim, out.dim, "partial dim mismatch");
            for i in 0..out.rows() {
                let m_new = out.m[i].max(p.m[i]);
                let c_out = (out.m[i] - m_new).exp();
                let c_p = (p.m[i] - m_new).exp();
                let acc = &mut out.acc[i * dim..(i + 1) * dim];
                for (a, b) in acc.iter_mut().zip(&p.acc[i * dim..(i + 1) * dim]) {
                    *a = *a * c_out + b * c_p;
                }
                out.l[i] = out.l[i] * c_out + p.l[i] * c_p;
                out.m[i] = m_new;
            }
        }
        out
    }
}

/// Dense reference attention `softmax(Q K^T · scale) V` for testing.
///
/// `q` is `rows × d`, `k`/`v` are `tokens × d`. Accepts any token-matrix
/// representation (flat [`bd_kvcache::TokenMatrix`] or nested
/// `Vec<Vec<f32>>`) through [`TokenRows`].
pub fn reference_attention<Q, K, V>(q: &Q, k: &K, v: &V, scale: f32) -> Vec<Vec<f32>>
where
    Q: TokenRows + ?Sized,
    K: TokenRows + ?Sized,
    V: TokenRows + ?Sized,
{
    let rows = q.token_count();
    let tokens = k.token_count();
    let dim = v.token_dim();
    let mut out = vec![vec![0.0f32; dim]; rows];
    for (i, out_row) in out.iter_mut().enumerate() {
        let q_row = q.token_row(i);
        let scores: Vec<f32> = (0..tokens)
            .map(|t| {
                q_row
                    .iter()
                    .zip(k.token_row(t))
                    .map(|(a, b)| a * b)
                    .sum::<f32>()
                    * scale
            })
            .collect();
        let m = scores.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let exps: Vec<f32> = scores.iter().map(|&s| (s - m).exp()).collect();
        let l: f32 = exps.iter().sum();
        for (t, &p) in exps.iter().enumerate() {
            for (o, &vv) in out_row.iter_mut().zip(v.token_row(t)) {
                *o += p / l * vv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score_tile(rows: usize, cols: usize, seed: f32) -> Tile {
        Tile::from_fn(rows, cols, |r, c| {
            ((r * cols + c) as f32 * 0.61 + seed).sin() * 3.0
        })
    }

    fn value_tile(tokens: usize, dim: usize) -> Tile {
        Tile::from_fn(tokens, dim, |t, c| ((t * dim + c) as f32 * 0.37).cos())
    }

    fn run_tiled(s_tiles: &[Tile], v_tiles: &[Tile], rows: usize, dim: usize) -> Vec<Vec<f32>> {
        let mut state = OnlineSoftmax::new(rows, dim);
        for (s, v) in s_tiles.iter().zip(v_tiles) {
            state.step_tile(s, v);
        }
        state.finish()
    }

    fn dense_reference(
        s_tiles: &[Tile],
        v_tiles: &[Tile],
        rows: usize,
        dim: usize,
    ) -> Vec<Vec<f32>> {
        // Concatenate tiles along tokens and run a dense softmax.
        let mut scores: Vec<Vec<f32>> = vec![Vec::new(); rows];
        let mut values: Vec<Vec<f32>> = Vec::new();
        for (s, v) in s_tiles.iter().zip(v_tiles) {
            for (i, row_scores) in scores.iter_mut().enumerate() {
                row_scores.extend(s.row(i));
            }
            for t in 0..v.rows() {
                values.push(v.row(t).to_vec());
            }
        }
        let mut out = vec![vec![0.0f32; dim]; rows];
        for (row_scores, out_row) in scores.iter().zip(out.iter_mut()) {
            let m = row_scores.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let exps: Vec<f32> = row_scores.iter().map(|&x| (x - m).exp()).collect();
            let l: f32 = exps.iter().sum();
            for (t, &p) in exps.iter().enumerate() {
                for c in 0..dim {
                    out_row[c] += p / l * values[t][c];
                }
            }
        }
        out
    }

    fn max_diff(a: &[Vec<f32>], b: &[Vec<f32>]) -> f32 {
        a.iter()
            .zip(b)
            .flat_map(|(x, y)| x.iter().zip(y).map(|(p, q)| (p - q).abs()))
            .fold(0.0, f32::max)
    }

    #[test]
    fn online_matches_dense_softmax() {
        let (rows, dim) = (4, 8);
        let s_tiles: Vec<Tile> = (0..5).map(|i| score_tile(rows, 16, i as f32)).collect();
        let v_tiles: Vec<Tile> = (0..5).map(|_| value_tile(16, dim)).collect();
        let online = run_tiled(&s_tiles, &v_tiles, rows, dim);
        let dense = dense_reference(&s_tiles, &v_tiles, rows, dim);
        assert!(max_diff(&online, &dense) < 1e-5);
    }

    #[test]
    fn split_merge_is_exact() {
        let (rows, dim) = (4, 8);
        let s_tiles: Vec<Tile> = (0..6)
            .map(|i| score_tile(rows, 16, i as f32 * 1.3))
            .collect();
        let v_tiles: Vec<Tile> = (0..6).map(|_| value_tile(16, dim)).collect();

        // Full pass.
        let full = run_tiled(&s_tiles, &v_tiles, rows, dim);

        // Two splits of three tiles each, merged.
        let mut a = OnlineSoftmax::new(rows, dim);
        let mut b = OnlineSoftmax::new(rows, dim);
        for i in 0..3 {
            a.step_tile(&s_tiles[i], &v_tiles[i]);
            b.step_tile(&s_tiles[i + 3], &v_tiles[i + 3]);
        }
        let merged = OnlineSoftmax::merge(vec![a, b]).finish();
        assert!(max_diff(&full, &merged) < 1e-5);
    }

    #[test]
    fn cooperative_warped_matches_reference() {
        let (rows, dim) = (4, 8);
        let s = score_tile(rows, 32, 0.5);
        let v = value_tile(32, dim);
        let mut reference = OnlineSoftmax::new(rows, dim);
        reference.step_tile(&s, &v);
        for wn in [1, 2, 4] {
            let mut warped = OnlineSoftmax::new(rows, dim);
            warped.step_tile_warped(&s, &v, wn, true);
            assert!(
                max_diff(&warped.clone().finish(), &reference.clone().finish()) < 1e-6,
                "Wn={wn}"
            );
        }
    }

    #[test]
    fn non_cooperative_multi_warp_is_wrong() {
        // Table III: Wn=4 without cooperative softmax → invalid results.
        let (rows, dim) = (4, 8);
        let s = score_tile(rows, 32, 0.5);
        let v = value_tile(32, dim);
        let mut good = OnlineSoftmax::new(rows, dim);
        good.step_tile_warped(&s, &v, 4, true);
        let mut bad = OnlineSoftmax::new(rows, dim);
        bad.step_tile_warped(&s, &v, 4, false);
        let diff = max_diff(&good.finish(), &bad.finish());
        assert!(diff > 1e-3, "race must corrupt output, diff {diff}");
    }

    #[test]
    fn non_cooperative_single_warp_is_still_correct() {
        let (rows, dim) = (2, 4);
        let s = score_tile(rows, 16, 0.1);
        let v = value_tile(16, dim);
        let mut a = OnlineSoftmax::new(rows, dim);
        a.step_tile_warped(&s, &v, 1, false);
        let mut b = OnlineSoftmax::new(rows, dim);
        b.step_tile(&s, &v);
        assert!(max_diff(&a.finish(), &b.finish()) < 1e-7);
    }

    #[test]
    fn reference_attention_rows_sum_properly() {
        // With identical V rows, attention output equals that row.
        let q = vec![vec![0.3f32; 8]; 2];
        let k: Vec<Vec<f32>> = (0..10).map(|t| vec![t as f32 * 0.1; 8]).collect();
        let v = vec![vec![2.5f32; 4]; 10];
        let out = reference_attention(&q, &k, &v, 0.35);
        for row in out {
            for x in row {
                assert!((x - 2.5).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn merge_single_partial_is_identity() {
        let (rows, dim) = (3, 4);
        let s = score_tile(rows, 8, 0.0);
        let v = value_tile(8, dim);
        let mut state = OnlineSoftmax::new(rows, dim);
        state.step_tile(&s, &v);
        let direct = state.clone().finish();
        let merged = OnlineSoftmax::merge(vec![state]).finish();
        assert!(max_diff(&direct, &merged) < 1e-9);
    }
}
