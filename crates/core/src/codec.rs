//! The fragment-true block codec: layout induction in executable form
//! (paper §IV-A(1), Fig. 5).
//!
//! The Residual Kernel loads KV values with `ldmatrix`, which scatters them
//! across lanes in the MMA B-operand fragment layout. Each lane then
//! quantizes **its own registers** and packs them — so the physical word
//! stream is ordered by `(warp, lane, k-tile, tile-in-warp, register)`,
//! with the 75316420 interleave applied at 32-bit register granularity and
//! each lane's register stream chunked densely across its k-tiles (a
//! register may span tiles; none is ever padded for a realistic shape).
//! Unpacking with the *same* [`PackLayout`] lands every value back in its
//! fragment slot with zero reshuffling; unpacking with a different
//! configuration silently permutes values, which is the paper's
//! "invalid layout" failure (Fig. 3b).
//!
//! Keys pack in the `Q·K^T` B-operand orientation (contraction over
//! channels), Values in the `P·V` orientation (contraction over tokens) —
//! mirroring how the Packing Kernel consumes them.

use bd_gpu_sim::{FragmentLayout, Operand};
use bd_kvcache::{
    dequantize_int_codes, quantize_int_codes, BlockCodec, KeyGranularity, PackLayout, PackedBlock,
    PackedPayload, PackedTensor, QuantScheme, ReferenceCodec, SchemeKind, TokenMatrix,
};
use bd_lowbit::fastpath::{register_ops, FastDequantOps};
use bd_lowbit::{
    codes_per_u32, fuse_words, pack_u32, split_register, unpack_u32_into, BitWidth, QuantParams,
};

/// The codec used by BitDecoding's Residual and Packing kernels.
///
/// Both kernels must be constructed with the *same* layout — this is the
/// "unified instruction configuration" of paper §IV-A(4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragmentCodec {
    /// The shared instruction configuration.
    pub layout: PackLayout,
}

impl FragmentCodec {
    /// Builds the codec from an instruction configuration.
    pub const fn new(layout: PackLayout) -> Self {
        FragmentCodec { layout }
    }

    /// Effective warp count along N for a tensor with `nt` N-tiles: the
    /// configured `Wn` shrunk (deterministically, on both kernels) until it
    /// divides the tile count — narrow tensors simply idle the spare warps.
    fn effective_wn(&self, nt: usize) -> usize {
        let mut wn = self.layout.warps_n.min(nt).max(1);
        while !nt.is_multiple_of(wn) {
            wn -= 1;
        }
        wn
    }

    /// Packs a B-operand-oriented code matrix (`k_total × n_total`,
    /// accessed through `code_at(k, n)`) into the physical word stream.
    ///
    /// # Panics
    ///
    /// Panics if the matrix does not tile evenly under the layout.
    fn pack_b_operand(
        &self,
        code_at: impl Fn(usize, usize) -> u8,
        k_total: usize,
        n_total: usize,
        width: BitWidth,
    ) -> Vec<u16> {
        let shape = self.layout.shape;
        let blayout = FragmentLayout::new(shape, Operand::B);
        assert_eq!(k_total % shape.k(), 0, "K dim must tile by {}", shape.k());
        assert_eq!(n_total % shape.n(), 0, "N dim must tile by {}", shape.n());
        let kt = k_total / shape.k();
        let nt = n_total / shape.n();
        let wn = self.effective_wn(nt);
        let tiles_per_warp = nt / wn;
        let regs = blayout.regs_per_lane();
        let per_reg32 = codes_per_u32(width);

        let mut words = Vec::new();
        for w in 0..wn {
            for lane in 0..32 {
                // The lane's register stream across ALL of its k-tiles and
                // its warp's n-tiles. Chunking the whole stream (rather
                // than per k-tile) keeps 32-bit registers densely filled
                // even when one tile contributes fewer codes than a
                // register holds (e.g. INT2's 16 codes/register vs 4
                // B-fragment registers per tile) — no padding, no wasted
                // storage, and the streamed register count matches the
                // ideal `elems / codes_per_u32` the cost model charges.
                let mut stream = Vec::with_capacity(kt * tiles_per_warp * regs);
                for ki in 0..kt {
                    for tw in 0..tiles_per_warp {
                        let nj = w * tiles_per_warp + tw;
                        for reg in 0..regs {
                            let (kl, nl) = blayout.coords(lane, reg);
                            stream.push(code_at(ki * shape.k() + kl, nj * shape.n() + nl));
                        }
                    }
                }
                // Pack into 32-bit registers with the configured
                // interleave, then split to 16-bit storage words.
                for chunk in stream.chunks(per_reg32) {
                    let mut buf = chunk.to_vec();
                    buf.resize(per_reg32, 0);
                    let reg32 = pack_u32(&buf, width, self.layout.order);
                    let (lo, hi) = split_register(reg32);
                    words.push(lo);
                    words.push(hi);
                }
            }
        }
        words
    }

    /// Inverse of [`FragmentCodec::pack_b_operand`]: scatters codes back to
    /// `(k, n)` positions via `store(k, n, code)`.
    fn unpack_b_operand(
        &self,
        words: &[u16],
        mut store: impl FnMut(usize, usize, u8),
        k_total: usize,
        n_total: usize,
        width: BitWidth,
    ) {
        let shape = self.layout.shape;
        let blayout = FragmentLayout::new(shape, Operand::B);
        let kt = k_total / shape.k();
        let nt = n_total / shape.n();
        let wn = self.effective_wn(nt);
        let tiles_per_warp = nt / wn;
        let regs = blayout.regs_per_lane();
        let per_reg32 = codes_per_u32(width);
        let stream_len = kt * tiles_per_warp * regs;
        let regs32_per_lane = stream_len.div_ceil(per_reg32);

        // One reusable register-stream buffer for the whole walk — the hot
        // fused decode runs through here, so no per-lane allocation. The
        // stream spans all of a lane's k-tiles, mirroring the dense
        // cross-tile chunking of `pack_b_operand`.
        let mut stream = vec![0u8; regs32_per_lane * per_reg32];
        let mut widx = 0usize;
        for w in 0..wn {
            for lane in 0..32 {
                for r32 in 0..regs32_per_lane {
                    let reg32 = fuse_words(words[widx], words[widx + 1]);
                    widx += 2;
                    unpack_u32_into(
                        reg32,
                        width,
                        self.layout.order,
                        &mut stream[r32 * per_reg32..(r32 + 1) * per_reg32],
                    );
                }
                for ki in 0..kt {
                    for tw in 0..tiles_per_warp {
                        let nj = w * tiles_per_warp + tw;
                        for reg in 0..regs {
                            let (kl, nl) = blayout.coords(lane, reg);
                            store(
                                ki * shape.k() + kl,
                                nj * shape.n() + nl,
                                stream[(ki * tiles_per_warp + tw) * regs + reg],
                            );
                        }
                    }
                }
            }
        }
    }

    fn encode_int(
        &self,
        values: &TokenMatrix,
        width: BitWidth,
        granularity: KeyGranularity,
        group: usize,
        key_orientation: bool,
    ) -> PackedTensor {
        let tokens = values.len();
        let dim = values[0].len();
        let (codes, params) = quantize_int_codes(values, width, granularity, group);
        let words = if key_orientation {
            // K^T: B(k = channel, n = token).
            self.pack_b_operand(|k, n| codes[n * dim + k], dim, tokens, width)
        } else {
            // V: B(k = token, n = channel).
            self.pack_b_operand(|k, n| codes[k * dim + n], tokens, dim, width)
        };
        PackedTensor {
            tokens,
            dim,
            payload: PackedPayload::Int { words, params },
        }
    }

    fn decode_int(
        &self,
        tensor: &PackedTensor,
        width: BitWidth,
        granularity: KeyGranularity,
        group: usize,
        key_orientation: bool,
    ) -> TokenMatrix {
        let (tokens, dim) = (tensor.tokens, tensor.dim);
        let PackedPayload::Int { words, params } = &tensor.payload else {
            panic!("integer decode of FP4 payload");
        };
        let mut codes = vec![0u8; tokens * dim];
        if key_orientation {
            self.unpack_b_operand(words, |k, n, c| codes[n * dim + k] = c, dim, tokens, width);
        } else {
            self.unpack_b_operand(words, |k, n, c| codes[k * dim + n] = c, tokens, dim, width);
        }
        dequantize_int_codes(&codes, params, tokens, dim, width, granularity, group)
    }

    /// Fused unpack **and** dequantize: walks the packed word stream exactly
    /// like `decode`, but converts each code to its FP16 value inline (the
    /// same per-group FMA as [`bd_kvcache::dequantize_int_codes`], hardware-
    /// realised by the `lop3` fast path) and scatters it token-major into
    /// `out` — no intermediate code matrix, no second pass, no transpose.
    /// Values are bit-identical to `decode`'s.
    ///
    /// Returns the modelled fast-dequant instruction counts for the words
    /// streamed (two 16-bit storage words per 32-bit register conversion).
    fn decode_int_fused(
        &self,
        tensor: &PackedTensor,
        width: BitWidth,
        granularity: KeyGranularity,
        group: usize,
        key_orientation: bool,
        out: &mut TokenMatrix,
    ) -> FastDequantOps {
        let (tokens, dim) = (tensor.tokens, tensor.dim);
        let PackedPayload::Int { words, params } = &tensor.payload else {
            panic!("integer decode of FP4 payload");
        };
        out.resize_tokens(tokens, dim);
        let flat = out.as_mut_slice();

        // Per-group dequantization LUT: `2^β` values per metadata group,
        // produced by the exact FMA of the reference dequantizer — the
        // value-level equivalent of precomputing the fast path's FusedScale
        // constants once per group instead of re-deriving them per element.
        let levels = width.levels() as usize;
        let mut lut = Vec::with_capacity(params.len() * levels);
        for &h in params {
            let p = QuantParams::from_half2(h);
            for code in 0..levels {
                lut.push(p.dequantize(code as u8).to_f32());
            }
        }
        let cgroups = dim.div_ceil(group);
        let group_of = |t: usize, c: usize| -> usize {
            match granularity {
                KeyGranularity::ChannelWise => (t / group) * dim + c,
                KeyGranularity::TensorWise => t * cgroups + c / group,
            }
        };

        // Share the one allocation-free physical walk with `decode`; the
        // scatter closure converts codes through the LUT straight into
        // `out`, so no intermediate code matrix ever exists.
        if key_orientation {
            // K is stored B-oriented as (k = channel, n = token).
            self.unpack_b_operand(
                words,
                |k, n, code| flat[n * dim + k] = lut[group_of(n, k) * levels + code as usize],
                dim,
                tokens,
                width,
            );
        } else {
            // V is stored B-oriented as (k = token, n = channel).
            self.unpack_b_operand(
                words,
                |k, n, code| flat[k * dim + n] = lut[group_of(k, n) * levels + code as usize],
                tokens,
                dim,
                width,
            );
        }

        let regs32 = words.len() as u32 / 2;
        let per_reg = register_ops(width);
        FastDequantOps {
            lop3: per_reg.lop3 * regs32,
            shifts: per_reg.shifts * regs32,
            hfma2: per_reg.hfma2 * regs32,
        }
    }

    /// Decodes one packed block straight into reusable flat buffers in the
    /// orientation the fused attention kernel consumes (`k_out`/`v_out`
    /// token-major). Integer schemes stream through the fused int decode
    /// path (`FragmentCodec::decode_int_fused`); FP4 blocks (hardware
    /// block-scale layout) decode through the reference nibble walk, which
    /// is already flat token-major.
    pub fn decode_block_fused(
        &self,
        block: &PackedBlock,
        scheme: QuantScheme,
        k_out: &mut TokenMatrix,
        v_out: &mut TokenMatrix,
    ) -> FastDequantOps {
        match scheme.kind() {
            SchemeKind::Int {
                width,
                key_granularity,
                group,
            } => {
                let k_ops =
                    self.decode_int_fused(&block.k, width, key_granularity, group, true, k_out);
                let v_ops = self.decode_int_fused(
                    &block.v,
                    width,
                    KeyGranularity::TensorWise,
                    QuantScheme::DEFAULT_CHANNEL_GROUP,
                    false,
                    v_out,
                );
                k_ops + v_ops
            }
            SchemeKind::Fp4(_) => {
                let (k, v) = ReferenceCodec.decode(block, scheme);
                *k_out = k;
                *v_out = v;
                FastDequantOps::default()
            }
        }
    }
}

impl BlockCodec for FragmentCodec {
    fn encode(&self, k: &TokenMatrix, v: &TokenMatrix, scheme: QuantScheme) -> PackedBlock {
        match scheme.kind() {
            SchemeKind::Int {
                width,
                key_granularity,
                group,
            } => PackedBlock {
                k: self.encode_int(k, width, key_granularity, group, true),
                v: self.encode_int(
                    v,
                    width,
                    KeyGranularity::TensorWise,
                    QuantScheme::DEFAULT_CHANNEL_GROUP,
                    false,
                ),
            },
            // Blackwell native FP4 blocks follow the hardware-mandated
            // block-scale layout, which the layout-agnostic transform maps
            // to directly (paper §V-D(2)); physically it matches the
            // reference nibble layout.
            SchemeKind::Fp4(_) => ReferenceCodec.encode(k, v, scheme),
        }
    }

    fn decode(&self, block: &PackedBlock, scheme: QuantScheme) -> (TokenMatrix, TokenMatrix) {
        match scheme.kind() {
            SchemeKind::Int {
                width,
                key_granularity,
                group,
            } => (
                self.decode_int(&block.k, width, key_granularity, group, true),
                self.decode_int(
                    &block.v,
                    width,
                    KeyGranularity::TensorWise,
                    QuantScheme::DEFAULT_CHANNEL_GROUP,
                    false,
                ),
            ),
            SchemeKind::Fp4(_) => ReferenceCodec.decode(block, scheme),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_lowbit::PackOrder;

    fn test_matrix(tokens: usize, dim: usize, seed: f32) -> TokenMatrix {
        (0..tokens)
            .map(|t| {
                (0..dim)
                    .map(|c| ((t * dim + c) as f32 * 0.619 + seed).sin() * 2.0)
                    .collect()
            })
            .collect()
    }

    fn max_err(a: &TokenMatrix, b: &TokenMatrix) -> f32 {
        a.iter()
            .zip(b)
            .flat_map(|(x, y)| x.iter().zip(y).map(|(p, q)| (p - q).abs()))
            .fold(0.0, f32::max)
    }

    #[test]
    fn fragment_codec_round_trips() {
        let layout = PackLayout::sm80_default();
        let codec = FragmentCodec::new(layout);
        for scheme in [QuantScheme::kc4(), QuantScheme::kt4(), QuantScheme::kc2()] {
            let width = scheme.int_width().unwrap();
            let nr = layout.residual_block(width);
            let k = test_matrix(nr, 64, 0.0);
            let v = test_matrix(nr, 64, 1.0);
            let block = codec.encode(&k, &v, scheme);
            let (dk, dv) = codec.decode(&block, scheme);
            // Half a quantization step over a ±2 value range, plus slack.
            let tol = 4.0 / (width.levels() - 1) as f32 * 0.6 + 0.05;
            assert!(max_err(&k, &dk) < tol, "{scheme} K: {}", max_err(&k, &dk));
            assert!(max_err(&v, &dv) < tol, "{scheme} V: {}", max_err(&v, &dv));
        }
    }

    #[test]
    fn fragment_and_reference_decode_to_same_values() {
        // Same quantization, different physical layout: logical values are
        // identical after each codec's own round trip.
        let layout = PackLayout::sm80_default();
        let codec = FragmentCodec::new(layout);
        let scheme = QuantScheme::kc4();
        let nr = layout.residual_block(BitWidth::B4);
        let k = test_matrix(nr, 32, 0.2);
        let v = test_matrix(nr, 32, 0.9);
        let (fk, fv) = codec.decode(&codec.encode(&k, &v, scheme), scheme);
        let (rk, rv) = ReferenceCodec.decode(&ReferenceCodec.encode(&k, &v, scheme), scheme);
        assert!(max_err(&fk, &rk) < 1e-6);
        assert!(max_err(&fv, &rv) < 1e-6);
    }

    #[test]
    fn physical_words_differ_from_reference_layout() {
        let layout = PackLayout::sm80_default();
        let codec = FragmentCodec::new(layout);
        let scheme = QuantScheme::kc4();
        let nr = layout.residual_block(BitWidth::B4);
        let k = test_matrix(nr, 32, 0.2);
        let v = test_matrix(nr, 32, 0.9);
        let frag = codec.encode(&k, &v, scheme);
        let reference = ReferenceCodec.encode(&k, &v, scheme);
        let words = |t: &PackedTensor| match &t.payload {
            PackedPayload::Int { words, .. } => words.clone(),
            _ => unreachable!(),
        };
        assert_eq!(words(&frag.k).len(), words(&reference.k).len());
        assert_ne!(
            words(&frag.k),
            words(&reference.k),
            "layouts must differ physically"
        );
    }

    #[test]
    fn mismatched_pack_order_decodes_garbage() {
        // Residual Kernel packs 75316420; a Packing Kernel configured with
        // a linear unpack reads permuted codes — invalid layout (Fig. 3).
        let scheme = QuantScheme::kc4();
        let encode_layout = PackLayout::sm80_default();
        let decode_layout = PackLayout {
            order: PackOrder::Linear,
            ..encode_layout
        };
        let nr = encode_layout.residual_block(BitWidth::B4);
        let k = test_matrix(nr, 32, 0.2);
        let v = test_matrix(nr, 32, 0.9);
        let block = FragmentCodec::new(encode_layout).encode(&k, &v, scheme);
        let (dk, _) = FragmentCodec::new(decode_layout).decode(&block, scheme);
        assert!(max_err(&k, &dk) > 0.5, "mismatch must corrupt values");
    }

    #[test]
    fn mismatched_warp_count_decodes_garbage() {
        // Same instruction, different Wn tiling: still invalid.
        let scheme = QuantScheme::kc4();
        let encode_layout = PackLayout::sm80_default(); // Wn = 4
        let decode_layout = PackLayout {
            warps_n: 2,
            ..encode_layout
        };
        let nr = encode_layout.residual_block(BitWidth::B4);
        let k = test_matrix(nr, 32, 0.2);
        let v = test_matrix(nr, 32, 0.9);
        let block = FragmentCodec::new(encode_layout).encode(&k, &v, scheme);
        let (dk, _) = FragmentCodec::new(decode_layout).decode(&block, scheme);
        assert!(max_err(&k, &dk) > 0.5, "Wn mismatch must corrupt values");
    }

    #[test]
    fn fused_decode_is_bit_identical_to_decode() {
        let layout = PackLayout::sm80_default();
        let codec = FragmentCodec::new(layout);
        for scheme in [
            QuantScheme::kc4(),
            QuantScheme::kt4(),
            QuantScheme::kc2(),
            QuantScheme::mxfp4(),
        ] {
            let nr = layout.residual_block(scheme.int_width().unwrap_or(BitWidth::B4));
            let k = test_matrix(nr, 32, 0.4);
            let v = test_matrix(nr, 32, 1.1);
            let block = codec.encode(&k, &v, scheme);
            let (dk, dv) = codec.decode(&block, scheme);
            let mut fk = TokenMatrix::new(0);
            let mut fv = TokenMatrix::new(0);
            let ops = codec.decode_block_fused(&block, scheme, &mut fk, &mut fv);
            assert_eq!(dk, fk, "{scheme}: fused K decode must be bit-identical");
            assert_eq!(dv, fv, "{scheme}: fused V decode must be bit-identical");
            if scheme.int_width().is_some() {
                assert!(ops.total() > 0, "{scheme}: dequant work must be charged");
            }
        }
    }

    #[test]
    fn int2_blocks_round_trip() {
        let layout = PackLayout::sm80_default();
        let codec = FragmentCodec::new(layout);
        let scheme = QuantScheme::kc2();
        let nr = layout.residual_block(BitWidth::B2);
        assert_eq!(nr, 256);
        let k = test_matrix(nr, 16, 0.0);
        let v = test_matrix(nr, 16, 1.0);
        let block = codec.encode(&k, &v, scheme);
        let (dk, dv) = codec.decode(&block, scheme);
        // 2-bit is coarse: bound by a couple of quantization steps.
        assert!(max_err(&k, &dk) < 1.5);
        assert!(max_err(&v, &dv) < 1.5);
    }

    #[test]
    fn fp4_delegates_to_hardware_layout() {
        let codec = FragmentCodec::new(PackLayout::sm80_default());
        let scheme = QuantScheme::mxfp4();
        let k = test_matrix(64, 32, 0.3);
        let v = test_matrix(64, 32, 0.8);
        let block = codec.encode(&k, &v, scheme);
        let (dk, dv) = codec.decode(&block, scheme);
        assert!(max_err(&k, &dk) < 1.0);
        assert!(max_err(&v, &dv) < 1.0);
    }
}
