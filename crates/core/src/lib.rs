#![warn(missing_docs)]

//! # bd-core — the BitDecoding engine
//!
//! The paper's primary contribution, reproduced on the `bd-gpu-sim`
//! substrate: cooperative use of (simulated) Tensor Cores and CUDA cores
//! for decoding with a low-bit KV cache.
//!
//! * [`config`] — attention variants (MHA/GQA/MQA) and the query
//!   transformation (§V-A);
//! * [`codec`] — the fragment-true pack/unpack codec implementing layout
//!   induction (§IV-A);
//! * [`softmax`] — online softmax, split-KV merge, and the multi-warp
//!   cooperative softmax of Algorithm 1 (§IV-B);
//! * [`kernels`] — functional Residual/Packing kernel bodies executing on
//!   the simulated Tensor Core ISA (§V-B, §V-C);
//! * [`profiles`] — analytic event-count profiles for the same kernels,
//!   including the SM80/SM90/SM100 paths and ablation flags (§V-D);
//! * [`api`] — the [`BitDecoder`] front end.
//!
//! ## Quickstart
//!
//! ```
//! use bd_core::{AttentionConfig, BitDecoder};
//! use bd_gpu_sim::GpuArch;
//! use bd_kvcache::QuantScheme;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dec = BitDecoder::builder(GpuArch::rtx4090())
//!     .attention(AttentionConfig::gqa(8, 2, 32))
//!     .scheme(QuantScheme::kc4())
//!     .build();
//! let mut cache = dec.new_cache(1);
//! let codec = dec.codec();
//! // Prefill 200 tokens, then decode one step.
//! let kv: Vec<Vec<f32>> = (0..200).map(|t| vec![0.01 * t as f32; 32]).collect();
//! for head in 0..cache.heads() {
//!     cache.prefill(head, &kv, &kv, &codec)?;
//! }
//! let q = vec![vec![vec![0.1; 32]; 8]];
//! let out = dec.decode(&q, &cache)?;
//! println!("step latency: {:.3} ms", out.report.total_s * 1e3);
//! # Ok(())
//! # }
//! ```

pub mod api;
pub mod codec;
pub mod config;
pub mod kernels;
pub mod profiles;
pub mod shape;
pub mod softmax;

pub use api::{
    BitDecoder, BitDecoderBuilder, DecodeError, DecodeOutput, DecodeReport, PrefixSharer,
};
pub use codec::FragmentCodec;
pub use config::{query_transform, ungroup_outputs, AttentionConfig, AttentionVariant, QueryHeads};
pub use kernels::{
    attend_packed_blocks, attend_packed_blocks_fused, attend_packed_blocks_multi,
    attend_packed_blocks_parallel, attend_packed_blocks_sharded, attend_residual,
    attend_residual_fused, matmul, matmul_via_mma, matmul_via_wgmma, MatmulEngine, SharerBlocks,
};
pub use profiles::{
    choose_splits, combine_kernel_profile, decode_plan, fast_dequant_slots_per_elem, overlap_for,
    packing_kernel_profile, residual_kernel_profile, ArchPath, OptimizationFlags,
};
pub use shape::DecodeShape;
pub use softmax::{reference_attention, OnlineSoftmax};
