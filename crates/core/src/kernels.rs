//! Functional kernel implementations: attention executed through the
//! simulated Tensor Core ISA.
//!
//! These routines compute *real values* — every matrix product goes through
//! [`bd_gpu_sim::mma`] tile by tile, so fragment-layout bugs corrupt the
//! output exactly as they would on hardware. The analytic twin of this code
//! lives in [`crate::profiles`].
//!
//! Two functional decode paths exist:
//!
//! * [`attend_packed_blocks`] — the **materializing** reference path: each
//!   block is decoded to a full [`TokenMatrix`], round-tripped through
//!   [`Tile`]s and transposes, and multiplied tile-by-tile on the simulated
//!   MMA fragments. It also models the non-cooperative multi-warp softmax
//!   race (paper Table III), which requires the explicit warp-sliced walk.
//! * [`attend_packed_blocks_fused`] / [`attend_packed_blocks_parallel`] —
//!   the **fused flat-layout** hot path (paper §IV): packed words stream
//!   through the fast-dequant model straight into flat token-major buffers
//!   in the orientation the `Q·Kᵀ` row-dot and `P·V` accumulation consume —
//!   no intermediate K/V materialization, no per-block `transposed()`
//!   round-trips. The parallel variant shards the block list across threads
//!   with per-shard [`OnlineSoftmax`] partials combined by
//!   [`OnlineSoftmax::merge`], mirroring the paper's cooperative split-K
//!   softmax, and falls back to the sequential fused walk for small
//!   contexts. Both are numerically equivalent to the materializing path
//!   within f32 accumulation-order noise (see `tests/proptests.rs`).

use crate::codec::FragmentCodec;
use crate::softmax::OnlineSoftmax;
use bd_gpu_sim::{
    ldmatrix, mma, mma_block_scaled_fp4, wgmma_ss, AccFragment, FragmentLayout, MmaShape, Operand,
    Tile,
};
use bd_kvcache::{BlockCodec, PackedBlock, QuantScheme, TokenMatrix};
use bd_lowbit::fastpath::FastDequantOps;
use bd_lowbit::fp4::{quantize_fp4_block, E2M1};
use bd_lowbit::{Fp4Kind, F16};
use std::borrow::Borrow;

/// Which Tensor Core instruction family executes the attention GEMMs in
/// the functional simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatmulEngine {
    /// `mma.m16n8k16` warp tiles (SM80/SM89 path).
    Mma,
    /// `wgmma.m64n64k16` warpgroup tiles with B in shared memory
    /// (SM90 path; paper §V-D(1)).
    Wgmma,
}

/// Multiplies `a (m × k)` by `b (k × n)` using `mma.m16n8k16` warp tiles,
/// padding every dimension to the tile grid (the padding models Tensor
/// Core tile underfill — partial query groups still issue full tiles).
pub fn matmul_via_mma(a: &Tile, b: &Tile) -> Tile {
    let shape = MmaShape::M16N8K16;
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "inner dimension mismatch");
    let mt = m.div_ceil(shape.m());
    let nt = n.div_ceil(shape.n());
    let kt = k.div_ceil(shape.k());

    let mut out = Tile::zeros(m, n);
    let la = FragmentLayout::new(shape, Operand::A);
    let lb = FragmentLayout::new(shape, Operand::B);
    for mi in 0..mt {
        for ni in 0..nt {
            let mut acc = AccFragment::zeroed(shape);
            for ki in 0..kt {
                let a_tile = Tile::from_fn(shape.m(), shape.k(), |r, c| {
                    let (gr, gc) = (mi * shape.m() + r, ki * shape.k() + c);
                    if gr < m && gc < k {
                        a[(gr, gc)]
                    } else {
                        0.0
                    }
                });
                let b_tile = Tile::from_fn(shape.k(), shape.n(), |r, c| {
                    let (gr, gc) = (ki * shape.k() + r, ni * shape.n() + c);
                    if gr < k && gc < n {
                        b[(gr, gc)]
                    } else {
                        0.0
                    }
                });
                let fa = ldmatrix(&a_tile, la);
                let fb = ldmatrix(&b_tile, lb);
                mma(shape, &fa, &fb, &mut acc);
            }
            let acc_tile = acc.to_tile();
            for r in 0..shape.m() {
                for c in 0..shape.n() {
                    let (gr, gc) = (mi * shape.m() + r, ni * shape.n() + c);
                    if gr < m && gc < n {
                        out[(gr, gc)] = acc_tile[(r, c)];
                    }
                }
            }
        }
    }
    out
}

/// Multiplies `a (m × k)` by `b (k × n)` using `wgmma.m64n64k16` warpgroup
/// tiles. The B operand is consumed from (simulated) shared memory — on
/// Hopper, dequantized values reach it via `STSM` without register-layout
/// correction, which is exactly why the `_SS` form matters to BitDecoding.
pub fn matmul_via_wgmma(a: &Tile, b: &Tile) -> Tile {
    const M: usize = 64;
    const N: usize = 64;
    const K: usize = 16;
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "inner dimension mismatch");
    let mut out = Tile::zeros(m, n);
    for mi in 0..m.div_ceil(M) {
        for ni in 0..n.div_ceil(N) {
            let mut acc = Tile::zeros(M, N);
            for ki in 0..k.div_ceil(K) {
                let a_tile = Tile::from_fn(M, K, |r, c| {
                    let (gr, gc) = (mi * M + r, ki * K + c);
                    if gr < m && gc < k {
                        a[(gr, gc)]
                    } else {
                        0.0
                    }
                });
                let b_tile = Tile::from_fn(K, N, |r, c| {
                    let (gr, gc) = (ki * K + r, ni * N + c);
                    if gr < k && gc < n {
                        b[(gr, gc)]
                    } else {
                        0.0
                    }
                });
                wgmma_ss(&a_tile, &b_tile, &mut acc);
            }
            for r in 0..M {
                for c in 0..N {
                    let (gr, gc) = (mi * M + r, ni * N + c);
                    if gr < m && gc < n {
                        out[(gr, gc)] = acc[(r, c)];
                    }
                }
            }
        }
    }
    out
}

/// Dispatches a matrix product to the configured instruction family.
pub fn matmul(engine: MatmulEngine, a: &Tile, b: &Tile) -> Tile {
    match engine {
        MatmulEngine::Mma => matmul_via_mma(a, b),
        MatmulEngine::Wgmma => matmul_via_wgmma(a, b),
    }
}

fn rows_to_tile(rows: &[Vec<f32>]) -> Tile {
    Tile::from_fn(rows.len(), rows[0].len(), |r, c| rows[r][c])
}

fn matrix_to_tile(m: &TokenMatrix) -> Tile {
    Tile::from_rows(m.tokens(), m.dim(), m.as_slice().to_vec())
}

/// The functional **Packing Kernel** body for one KV group — the
/// materializing reference path: unpacks each packed block through the
/// codec into a full [`TokenMatrix`], builds and transposes per-block
/// [`Tile`]s, computes `S = (Q·scale)·K^T` and `P·V` on the simulated
/// Tensor Cores, and folds results into the online-softmax state with the
/// configured warp layout.
///
/// The fused flat-layout path ([`attend_packed_blocks_fused`]) avoids all
/// of the intermediate materialization; this path remains the ground truth
/// it is tested against, and the only path that can model the
/// non-cooperative `Wn > 1` softmax race.
///
/// Like every packed-attention kernel here, the block list is generic over
/// [`Borrow<PackedBlock>`]: a contiguous cache passes its `&[PackedBlock]`
/// slice, the paged store passes the `Vec<&PackedBlock>` it gathered
/// through its page table — the kernel walk is identical either way.
#[allow(clippy::too_many_arguments)]
pub fn attend_packed_blocks<B: Borrow<PackedBlock>>(
    q: &[Vec<f32>],
    blocks: &[B],
    codec: &FragmentCodec,
    scheme: QuantScheme,
    scale: f32,
    wn: usize,
    cooperative: bool,
    engine: MatmulEngine,
    state: &mut OnlineSoftmax,
) {
    if blocks.is_empty() {
        return;
    }
    let q_scaled: Vec<Vec<f32>> = q
        .iter()
        .map(|row| row.iter().map(|&x| x * scale).collect())
        .collect();
    let q_tile = rows_to_tile(&q_scaled);
    for block in blocks {
        let (k, v) = codec.decode(block.borrow(), scheme);
        let kt_tile = matrix_to_tile(&k).transposed();
        let s = matmul(engine, &q_tile, &kt_tile);
        let v_tile = matrix_to_tile(&v);
        state.step_tile_warped(&s, &v_tile, wn, cooperative);
    }
}

/// The fused flat-layout decode-and-attend kernel (paper §IV): for each
/// block, packed u16 words stream through the fast-dequant model straight
/// into flat token-major K/V buffers — decoded K lands directly in the
/// layout the `Q·Kᵀ` row-dot consumes and V in the layout the `P·V`
/// accumulation consumes, so no intermediate K/V matrices are built and no
/// per-block `transposed()` round-trips happen. The K/V value buffers are
/// allocated once and reused across blocks; only the small per-group
/// dequantization LUT is rebuilt per tensor, because its values depend on
/// that block's quantization parameters.
///
/// Operand precision mirrors the engine: the MMA path rounds both GEMM
/// operands through FP16 fragments (`ldmatrix`), the WGMMA `_SS` path
/// consumes shared-memory tiles unrounded — so results match
/// [`attend_packed_blocks`] (with `cooperative` softmax) to f32
/// accumulation-order noise.
///
/// Returns the modelled fast-dequant instruction counts streamed.
pub fn attend_packed_blocks_fused<B: Borrow<PackedBlock>>(
    q: &[Vec<f32>],
    blocks: &[B],
    codec: &FragmentCodec,
    scheme: QuantScheme,
    scale: f32,
    engine: MatmulEngine,
    state: &mut OnlineSoftmax,
) -> FastDequantOps {
    let mut ops = FastDequantOps::default();
    if blocks.is_empty() {
        return ops;
    }
    let rows = q.len();
    let q_eff: Vec<Vec<f32>> = q
        .iter()
        .map(|row| {
            row.iter()
                .map(|&x| match engine {
                    MatmulEngine::Mma => F16::from_f32(x * scale).to_f32(),
                    MatmulEngine::Wgmma => x * scale,
                })
                .collect()
        })
        .collect();

    let mut k_buf = TokenMatrix::new(0);
    let mut v_buf = TokenMatrix::new(0);
    for block in blocks {
        ops += codec.decode_block_fused(block.borrow(), scheme, &mut k_buf, &mut v_buf);
        let tokens = k_buf.tokens();
        let mut s = Tile::zeros(rows, tokens);
        for (r, q_row) in q_eff.iter().enumerate() {
            for t in 0..tokens {
                // Contiguous row-dot: decoded K is token-major, exactly the
                // B-operand column this score needs.
                let mut acc = 0.0f32;
                for (a, b) in q_row.iter().zip(k_buf.row(t)) {
                    acc += a * b;
                }
                s[(r, t)] = acc;
            }
        }
        state.step_rows(&s, &v_buf);
    }
    ops
}

/// Smallest shard worth a thread: below ~8 blocks (≥1K tokens at INT4
/// `Nr = 128`) the merge and spawn overhead outweighs the win, so the
/// parallel path falls back to the sequential fused walk.
const MIN_BLOCKS_PER_SHARD: usize = 8;

fn default_shards(blocks: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    hw.min(blocks / MIN_BLOCKS_PER_SHARD).max(1)
}

/// [`attend_packed_blocks_fused`] sharded across `shards` OS threads: each
/// shard runs the fused kernel over a contiguous block range into its own
/// [`OnlineSoftmax`] partial, and the partials are combined with
/// [`OnlineSoftmax::merge`] — the exact log-sum-exp reduction of the
/// paper's cooperative split-K softmax (`shards = 1` is the sequential
/// fused path, bit-for-bit).
#[allow(clippy::too_many_arguments)]
pub fn attend_packed_blocks_sharded<B: Borrow<PackedBlock> + Sync>(
    q: &[Vec<f32>],
    blocks: &[B],
    codec: &FragmentCodec,
    scheme: QuantScheme,
    scale: f32,
    engine: MatmulEngine,
    shards: usize,
    state: &mut OnlineSoftmax,
) -> FastDequantOps {
    if blocks.is_empty() {
        return FastDequantOps::default();
    }
    let shards = shards.clamp(1, blocks.len());
    if shards == 1 {
        return attend_packed_blocks_fused(q, blocks, codec, scheme, scale, engine, state);
    }
    let rows = state.rows();
    let dim = state.dim();
    let chunk = blocks.len().div_ceil(shards);
    let results: Vec<(OnlineSoftmax, FastDequantOps)> = std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move || {
                    let mut partial = OnlineSoftmax::new(rows, dim);
                    let ops = attend_packed_blocks_fused(
                        q,
                        shard,
                        codec,
                        scheme,
                        scale,
                        engine,
                        &mut partial,
                    );
                    (partial, ops)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("split-K shard panicked"))
            .collect()
    });
    let mut ops = FastDequantOps::default();
    let mut partials = Vec::with_capacity(results.len() + 1);
    partials.push(std::mem::replace(state, OnlineSoftmax::new(rows, dim)));
    for (partial, shard_ops) in results {
        partials.push(partial);
        ops += shard_ops;
    }
    *state = OnlineSoftmax::merge(partials);
    ops
}

/// The parallel fused decode path: shards the block list across the
/// machine's available threads (sequential fused fallback for small
/// contexts) and merges per-shard softmax partials. This is what
/// [`crate::BitDecoder::decode`] runs for every valid (cooperative or
/// single-warp) configuration.
pub fn attend_packed_blocks_parallel<B: Borrow<PackedBlock> + Sync>(
    q: &[Vec<f32>],
    blocks: &[B],
    codec: &FragmentCodec,
    scheme: QuantScheme,
    scale: f32,
    engine: MatmulEngine,
    state: &mut OnlineSoftmax,
) -> FastDequantOps {
    attend_packed_blocks_sharded(
        q,
        blocks,
        codec,
        scheme,
        scale,
        engine,
        default_shards(blocks.len()),
        state,
    )
}

/// One sharer's view of a cascade multi-query walk: its query block plus
/// the packed blocks that are private to it (everything past the shared
/// prefix run). The sharer's full logical block list is
/// `prefix ++ suffix`, exactly what the independent per-sequence path
/// would hand [`attend_packed_blocks_parallel`].
pub struct SharerBlocks<'a, B> {
    /// The sharer's per-head query rows (un-scaled, as for the solo path).
    pub q: &'a [Vec<f32>],
    /// Packed blocks past the shared prefix, in logical order.
    pub suffix: &'a [B],
}

/// Cascade multi-query fused walk (Hydragen-style shared-prefix
/// attention): decodes each shared `prefix` block through the dequant
/// LUTs **once** and applies the decoded K/V to every sharer's query
/// block, then walks each sharer's private `suffix` individually. Each
/// sharer gets its own un-normalized [`OnlineSoftmax`] partial built by
/// replaying that sharer's canonical split-K plan — the same
/// `default_shards` chunking, fresh per-chunk partials, and
/// [`OnlineSoftmax::merge`] order [`attend_packed_blocks_parallel`] would
/// use for `prefix ++ suffix` — so every returned partial is bitwise
/// identical to the independent per-sequence walk. The walk itself is
/// block-major and single-threaded: the compute saving is the deduped
/// decode, reflected in the returned [`FastDequantOps`], which counts
/// only work actually performed (shared prefix blocks once, not once per
/// sharer).
#[allow(clippy::too_many_arguments)]
pub fn attend_packed_blocks_multi<B: Borrow<PackedBlock>>(
    prefix: &[B],
    sharers: &[SharerBlocks<'_, B>],
    dim: usize,
    codec: &FragmentCodec,
    scheme: QuantScheme,
    scale: f32,
    engine: MatmulEngine,
) -> (Vec<OnlineSoftmax>, FastDequantOps) {
    struct Plan {
        rows: usize,
        q_eff: Vec<Vec<f32>>,
        n: usize,
        chunk: usize,
        chunks: Vec<OnlineSoftmax>,
    }
    let p = prefix.len();
    let mut ops = FastDequantOps::default();
    let mut plans: Vec<Plan> = sharers
        .iter()
        .map(|s| {
            let n = p + s.suffix.len();
            let rows = s.q.len();
            // Same operand rounding as `attend_packed_blocks_fused`.
            let q_eff: Vec<Vec<f32>> =
                s.q.iter()
                    .map(|row| {
                        row.iter()
                            .map(|&x| match engine {
                                MatmulEngine::Mma => F16::from_f32(x * scale).to_f32(),
                                MatmulEngine::Wgmma => x * scale,
                            })
                            .collect()
                    })
                    .collect();
            // Replicate the sharer's canonical split-K chunking exactly.
            let shards = default_shards(n).clamp(1, n.max(1));
            let chunk = n.div_ceil(shards).max(1);
            let chunks = (0..n.div_ceil(chunk))
                .map(|_| OnlineSoftmax::new(rows, dim))
                .collect();
            Plan {
                rows,
                q_eff,
                n,
                chunk,
                chunks,
            }
        })
        .collect();

    fn apply(plan: &mut Plan, b: usize, k_buf: &TokenMatrix, v_buf: &TokenMatrix) {
        let tokens = k_buf.tokens();
        let mut s = Tile::zeros(plan.rows, tokens);
        for (r, q_row) in plan.q_eff.iter().enumerate() {
            for t in 0..tokens {
                let mut acc = 0.0f32;
                for (a, b) in q_row.iter().zip(k_buf.row(t)) {
                    acc += a * b;
                }
                s[(r, t)] = acc;
            }
        }
        plan.chunks[b / plan.chunk].step_rows(&s, v_buf);
    }

    let max_n = plans.iter().map(|pl| pl.n).max().unwrap_or(0);
    let mut k_buf = TokenMatrix::new(0);
    let mut v_buf = TokenMatrix::new(0);
    // Shared prefix blocks: one decode each, every sharer consumes it.
    for (b, block) in prefix.iter().take(max_n).enumerate() {
        ops += codec.decode_block_fused(block.borrow(), scheme, &mut k_buf, &mut v_buf);
        for plan in plans.iter_mut() {
            apply(plan, b, &k_buf, &v_buf);
        }
    }
    // Private suffix blocks: decoded per owner, as today.
    for b in p..max_n {
        for (plan, sharer) in plans.iter_mut().zip(sharers) {
            if b < plan.n {
                ops += codec.decode_block_fused(
                    sharer.suffix[b - p].borrow(),
                    scheme,
                    &mut k_buf,
                    &mut v_buf,
                );
                apply(plan, b, &k_buf, &v_buf);
            }
        }
    }

    let partials = plans
        .into_iter()
        .map(|pl| match pl.chunks.len() {
            // No packed blocks at all: the canonical path leaves the fresh
            // state untouched.
            0 => OnlineSoftmax::new(pl.rows, dim),
            // Single shard: the fused walk ran straight into the (fresh)
            // state — the chunk partial *is* the state, no merge.
            1 => pl.chunks.into_iter().next().expect("one chunk"),
            // Split-K: merge [original fresh state] ++ chunk partials, the
            // exact list `attend_packed_blocks_sharded` builds.
            _ => {
                let mut all = Vec::with_capacity(pl.chunks.len() + 1);
                all.push(OnlineSoftmax::new(pl.rows, dim));
                all.extend(pl.chunks);
                OnlineSoftmax::merge(all)
            }
        })
        .collect();
    (partials, ops)
}

/// Quantizes an `rows × cols` value generator to block-scaled FP4 along
/// its columns (`block`-sized groups), returning codes and per-(row,
/// block) scales.
fn quantize_fp4_operand(
    rows: usize,
    cols: usize,
    at: impl Fn(usize, usize) -> f32,
    kind: Fp4Kind,
) -> (Vec<Vec<E2M1>>, Vec<Vec<f32>>) {
    let block = kind.block_size();
    let mut codes = vec![vec![E2M1::from_bits(0); cols]; rows];
    let mut scales = vec![vec![0.0f32; cols.div_ceil(block)]; rows];
    for r in 0..rows {
        for b0 in (0..cols).step_by(block) {
            let b1 = (b0 + block).min(cols);
            let vals: Vec<f32> = (b0..b1).map(|c| at(r, c)).collect();
            let q = quantize_fp4_block(&vals, kind);
            scales[r][b0 / block] = q.scale.to_f32();
            for (i, code) in q.codes.iter().enumerate() {
                codes[r][b0 + i] = *code;
            }
        }
    }
    (codes, scales)
}

/// The Blackwell-native functional path: `S = Q_fp4 · K_fp4^T` and
/// `O += Quant(P)_fp4 · V_fp4` through the block-scaled MMA — no software
/// dequantization, but `P` is re-quantized after every softmax tile
/// (paper Challenge 2 / §V-D(2)).
///
/// With flat decoded blocks, each operand is quantized in a **single
/// pass** straight into its MMA orientation: K along channels scattered to
/// `(channel, token)`, V along tokens (the P·V contraction dimension) read
/// column-strided — the transpose → quantize → transpose round-trips of
/// the earlier nested-`Vec` implementation are gone.
pub fn attend_packed_blocks_fp4<B: Borrow<PackedBlock>>(
    q: &[Vec<f32>],
    blocks: &[B],
    codec: &FragmentCodec,
    scheme: QuantScheme,
    kind: Fp4Kind,
    scale: f32,
    state: &mut OnlineSoftmax,
) {
    if blocks.is_empty() {
        return;
    }
    let block_size = kind.block_size();
    let rows = q.len();
    let d = q[0].len();
    let (q_codes, q_scales) = quantize_fp4_operand(rows, d, |r, c| q[r][c] * scale, kind);

    for packed in blocks {
        let (k, v) = codec.decode(packed.borrow(), scheme);
        let tokens = k.tokens();
        // K as the S-GEMM B operand: codes per (channel, token). Quantize
        // each token's channels (the contraction dimension) and scatter the
        // codes directly into B orientation.
        let mut b_codes = vec![vec![E2M1::from_bits(0); tokens]; d];
        let mut b_scales = vec![vec![0.0f32; tokens]; d.div_ceil(block_size)];
        for t in 0..tokens {
            let row = k.row(t);
            for b0 in (0..d).step_by(block_size) {
                let b1 = (b0 + block_size).min(d);
                let qb = quantize_fp4_block(&row[b0..b1], kind);
                b_scales[b0 / block_size][t] = qb.scale.to_f32();
                for (i, code) in qb.codes.iter().enumerate() {
                    b_codes[b0 + i][t] = *code;
                }
            }
        }
        let mut s_tile = Tile::zeros(rows, tokens);
        mma_block_scaled_fp4(
            &q_codes,
            &q_scales,
            &b_codes,
            &b_scales,
            block_size,
            &mut s_tile,
        );

        // Softmax in FP16/FP32 registers, then requantize P to FP4 for the
        // second block-scaled MMA.
        let mut p = Tile::zeros(rows, tokens);
        let mut row_max = vec![f32::NEG_INFINITY; rows];
        for r in 0..rows {
            for t in 0..tokens {
                row_max[r] = row_max[r].max(s_tile[(r, t)]);
            }
            for t in 0..tokens {
                p[(r, t)] = (s_tile[(r, t)] - row_max[r]).exp();
            }
        }
        let (p_codes, p_scales) = quantize_fp4_operand(rows, tokens, |r, t| p[(r, t)], kind);

        // V as the P·V B operand: (k = token, n = channel), scale blocks
        // along tokens. One column-strided quantization pass.
        let dv = v.dim();
        let mut vb_codes = vec![vec![E2M1::from_bits(0); dv]; tokens];
        let mut vb_scales = vec![vec![0.0f32; dv]; tokens.div_ceil(block_size)];
        for c in 0..dv {
            for t0 in (0..tokens).step_by(block_size) {
                let t1 = (t0 + block_size).min(tokens);
                let vals: Vec<f32> = (t0..t1).map(|t| v.row(t)[c]).collect();
                let qb = quantize_fp4_block(&vals, kind);
                vb_scales[t0 / block_size][c] = qb.scale.to_f32();
                for (i, code) in qb.codes.iter().enumerate() {
                    vb_codes[t0 + i][c] = *code;
                }
            }
        }
        let mut pv = Tile::zeros(rows, dv);
        mma_block_scaled_fp4(
            &p_codes, &p_scales, &vb_codes, &vb_scales, block_size, &mut pv,
        );

        // Fold the pre-normalized tile into the online state: the tile's
        // exps used row_max as reference, matching step_tile's contract if
        // we feed (S, V); instead update the state manually.
        for r in 0..rows {
            let m_new = state.m[r].max(row_max[r]);
            let corr_old = (state.m[r] - m_new).exp();
            let corr_tile = (row_max[r] - m_new).exp();
            let mut l_tile = 0.0f32;
            for t in 0..tokens {
                l_tile += p[(r, t)];
            }
            state.l[r] = state.l[r] * corr_old + l_tile * corr_tile;
            for (c, acc) in state.acc_row_mut(r).iter_mut().enumerate() {
                *acc = *acc * corr_old + pv[(r, c)] * corr_tile;
            }
            state.m[r] = m_new;
        }
    }
}

/// The fused flat-layout **Residual Kernel** body: FP16 attention over the
/// residual window computed straight from the flat token-major
/// [`TokenMatrix`] buffers — no per-step [`Tile`] materialization, no
/// `transposed()` round-trip, no fragment scatter/gather.
///
/// The arithmetic replicates the materializing [`attend_residual`] path
/// **bitwise** for every valid (cooperative or single-warp) configuration:
/// operands round exactly as the engine's instruction would round them
/// (`mma` loads both operands through FP16 fragments; `wgmma_SS` consumes
/// shared-memory tiles unrounded), and each `Q·Kᵀ` row-dot accumulates
/// per 16-wide k-tile partials in tile order — the same f32 summation
/// tree the tiled GEMM walk produces. Tile zero-padding adds exact zeros
/// and so never changes a result bit. `tests::fused_residual_matches_
/// materializing_bitwise` pins the equivalence.
pub fn attend_residual_fused(
    q: &[Vec<f32>],
    res_k: &TokenMatrix,
    res_v: &TokenMatrix,
    scale: f32,
    engine: MatmulEngine,
    state: &mut OnlineSoftmax,
) {
    if res_k.is_empty() {
        return;
    }
    // Both modelled instruction families reduce K in 16-wide tiles.
    const K_TILE: usize = 16;
    let round = |x: f32| match engine {
        MatmulEngine::Mma => F16::from_f32(x).to_f32(),
        MatmulEngine::Wgmma => x,
    };
    let q_eff: Vec<Vec<f32>> = q
        .iter()
        .map(|row| row.iter().map(|&x| round(x * scale)).collect())
        .collect();
    let tokens = res_k.tokens();
    let d = res_k.dim();
    let mut s = Tile::zeros(q.len(), tokens);
    for (r, q_row) in q_eff.iter().enumerate() {
        for t in 0..tokens {
            let k_row = res_k.row(t);
            let mut total = 0.0f32;
            for c0 in (0..d).step_by(K_TILE) {
                let c1 = (c0 + K_TILE).min(d);
                let mut partial = 0.0f32;
                for c in c0..c1 {
                    partial += q_row[c] * round(k_row[c]);
                }
                total += partial;
            }
            s[(r, t)] = total;
        }
    }
    state.step_rows(&s, res_v);
}

/// The functional **Residual Kernel** attention body for one KV group:
/// FP16 attention over the residual region (same Tensor Core path), folded
/// into the shared state. Flushing (quantize + pack) is handled by the
/// cache via the codec.
///
/// This is the materializing walk — it builds and transposes [`Tile`]s and
/// round-trips fragments, which is what lets it model the non-cooperative
/// `Wn > 1` softmax race. Valid configurations should prefer
/// [`attend_residual_fused`], which produces bitwise-identical results
/// without the materialization.
#[allow(clippy::too_many_arguments)]
pub fn attend_residual(
    q: &[Vec<f32>],
    res_k: &TokenMatrix,
    res_v: &TokenMatrix,
    scale: f32,
    wn: usize,
    cooperative: bool,
    engine: MatmulEngine,
    state: &mut OnlineSoftmax,
) {
    if res_k.is_empty() {
        return;
    }
    let q_scaled: Vec<Vec<f32>> = q
        .iter()
        .map(|row| row.iter().map(|&x| x * scale).collect())
        .collect();
    let q_tile = rows_to_tile(&q_scaled);
    let kt_tile = matrix_to_tile(res_k).transposed();
    let s = matmul(engine, &q_tile, &kt_tile);
    // The residual region is narrower than a full warp tile set; it runs
    // single-warp slices when it cannot split evenly.
    let eff_wn = if s.cols().is_multiple_of(wn) { wn } else { 1 };
    state.step_tile_warped(&s, &matrix_to_tile(res_v), eff_wn, cooperative);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmax::reference_attention;
    use bd_kvcache::PackLayout;

    #[test]
    fn wgmma_matmul_matches_dense() {
        for (m, k, n) in [(4, 64, 24), (64, 16, 64), (5, 33, 70)] {
            let a = Tile::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.17 - 1.0);
            let b = Tile::from_fn(k, n, |r, c| ((r * 11 + c * 3) % 7) as f32 * 0.23 - 0.7);
            let got = matmul_via_wgmma(&a, &b);
            let want = a.matmul(&b);
            assert!(got.max_abs_diff(&want) < 1e-3, "({m},{k},{n})");
        }
    }

    #[test]
    fn wgmma_and_mma_engines_agree() {
        let a = Tile::from_fn(8, 64, |r, c| ((r * 13 + c) % 9) as f32 * 0.3 - 1.2);
        let b = Tile::from_fn(64, 40, |r, c| ((r + c * 5) % 11) as f32 * 0.2 - 1.0);
        let via_mma = matmul(MatmulEngine::Mma, &a, &b);
        let via_wgmma = matmul(MatmulEngine::Wgmma, &a, &b);
        // mma rounds operands through FP16 fragments; wgmma_SS is modelled
        // at tile granularity, so agreement is within FP16 operand noise.
        assert!(via_mma.max_abs_diff(&via_wgmma) < 0.05);
    }

    #[test]
    fn fp4_native_attention_tracks_reference() {
        let layout = PackLayout::sm80_default();
        let codec = FragmentCodec::new(layout);
        let scheme = QuantScheme::mxfp4();
        let nr = 128;
        let d = 64;
        let gq = 4;
        let k = TokenMatrix::from_fn(nr, d, |t, c| ((t * d + c) as f32 * 0.37).sin());
        // Values with per-channel structure so the attention output has
        // O(1) magnitude — a zero-mean V produces pure cancellation noise
        // that no 4-bit format can track.
        let v = TokenMatrix::from_fn(nr, d, |t, c| {
            (c as f32 * 0.3).sin() + 0.3 * ((t * d + c) as f32 * 0.53).cos()
        });
        let q: Vec<Vec<f32>> = (0..gq)
            .map(|g| (0..d).map(|c| ((g * d + c) as f32 * 0.71).sin()).collect())
            .collect();
        let blocks = vec![codec.encode(&k, &v, scheme)];
        let scale = 1.0 / (d as f32).sqrt();
        let mut state = OnlineSoftmax::new(gq, d);
        attend_packed_blocks_fp4(&q, &blocks, &codec, scheme, Fp4Kind::Mx, scale, &mut state);
        let got = state.finish();
        let want = reference_attention(&q, &k, &v, scale);
        // FP4 everywhere (Q, K, P, V) is coarse: allow ~15% error on the
        // O(1) signal, and demand strong overall correlation.
        let mut dot = 0.0f64;
        let mut n1 = 0.0f64;
        let mut n2 = 0.0f64;
        for (gr, wr) in got.iter().zip(&want) {
            for (g, w) in gr.iter().zip(wr) {
                assert!((g - w).abs() < 0.2, "{g} vs {w}");
                dot += f64::from(*g) * f64::from(*w);
                n1 += f64::from(*g) * f64::from(*g);
                n2 += f64::from(*w) * f64::from(*w);
            }
        }
        let cos = dot / (n1.sqrt() * n2.sqrt()).max(1e-12);
        assert!(cos > 0.97, "cosine {cos}");
    }

    #[test]
    fn mma_matmul_matches_dense_for_odd_shapes() {
        for (m, k, n) in [(4, 64, 24), (16, 16, 8), (5, 33, 9), (1, 128, 40)] {
            let a = Tile::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.17 - 1.0);
            let b = Tile::from_fn(k, n, |r, c| ((r * 11 + c * 3) % 7) as f32 * 0.23 - 0.7);
            let got = matmul_via_mma(&a, &b);
            let want = a.matmul(&b);
            assert!(
                got.max_abs_diff(&want) < k as f32 * 0.01,
                "({m},{k},{n}): diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    fn synth_blocks(
        codec: &FragmentCodec,
        scheme: QuantScheme,
        nr: usize,
        n_blocks: usize,
        d: usize,
    ) -> (TokenMatrix, TokenMatrix, Vec<PackedBlock>) {
        let tokens = nr * n_blocks;
        let k = TokenMatrix::from_fn(tokens, d, |t, c| ((t * d + c) as f32 * 0.37).sin());
        let v = TokenMatrix::from_fn(tokens, d, |t, c| ((t * d + c) as f32 * 0.53).cos());
        let blocks = (0..n_blocks)
            .map(|b| {
                codec.encode(
                    &k.slice_rows(b * nr..(b + 1) * nr),
                    &v.slice_rows(b * nr..(b + 1) * nr),
                    scheme,
                )
            })
            .collect();
        (k, v, blocks)
    }

    #[test]
    fn packed_attention_close_to_fp32_reference() {
        let layout = PackLayout::sm80_default();
        let codec = FragmentCodec::new(layout);
        let scheme = QuantScheme::kc4();
        let d = 32;
        let gq = 4;
        let (k, v, blocks) = synth_blocks(&codec, scheme, 128, 2, d);
        let q: Vec<Vec<f32>> = (0..gq)
            .map(|g| (0..d).map(|c| ((g * d + c) as f32 * 0.71).sin()).collect())
            .collect();

        let scale = 1.0 / (d as f32).sqrt();
        let mut state = OnlineSoftmax::new(gq, d);
        attend_packed_blocks(
            &q,
            &blocks,
            &codec,
            scheme,
            scale,
            4,
            true,
            MatmulEngine::Mma,
            &mut state,
        );
        let got = state.finish();
        let want = reference_attention(&q, &k, &v, scale);
        for (gr, wr) in got.iter().zip(&want) {
            for (g, w) in gr.iter().zip(wr) {
                assert!((g - w).abs() < 0.05, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn fused_matches_materializing_path() {
        let codec = FragmentCodec::new(PackLayout::sm80_default());
        for scheme in [QuantScheme::kc4(), QuantScheme::kt4(), QuantScheme::kc2()] {
            let nr = PackLayout::sm80_default().residual_block(scheme.int_width().unwrap());
            let d = 32;
            let gq = 4;
            let (_, _, blocks) = synth_blocks(&codec, scheme, nr, 3, d);
            let q: Vec<Vec<f32>> = (0..gq)
                .map(|g| (0..d).map(|c| ((g * d + c) as f32 * 0.71).sin()).collect())
                .collect();
            let scale = 1.0 / (d as f32).sqrt();
            for engine in [MatmulEngine::Mma, MatmulEngine::Wgmma] {
                let mut reference = OnlineSoftmax::new(gq, d);
                attend_packed_blocks(
                    &q,
                    &blocks,
                    &codec,
                    scheme,
                    scale,
                    4,
                    true,
                    engine,
                    &mut reference,
                );
                let mut fused = OnlineSoftmax::new(gq, d);
                let ops = attend_packed_blocks_fused(
                    &q, &blocks, &codec, scheme, scale, engine, &mut fused,
                );
                assert!(ops.total() > 0, "fused path must stream dequant work");
                let a = reference.finish();
                let b = fused.finish();
                for (ar, br) in a.iter().zip(&b) {
                    for (x, y) in ar.iter().zip(br) {
                        assert!((x - y).abs() < 1e-4, "{scheme} {engine:?}: {x} vs {y}");
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_split_k_matches_sequential() {
        let codec = FragmentCodec::new(PackLayout::sm80_default());
        let scheme = QuantScheme::kc4();
        let d = 32;
        let gq = 4;
        let (_, _, blocks) = synth_blocks(&codec, scheme, 128, 5, d);
        let q: Vec<Vec<f32>> = (0..gq)
            .map(|g| (0..d).map(|c| ((g * d + c) as f32 * 0.71).sin()).collect())
            .collect();
        let scale = 1.0 / (d as f32).sqrt();
        let mut seq = OnlineSoftmax::new(gq, d);
        attend_packed_blocks_fused(
            &q,
            &blocks,
            &codec,
            scheme,
            scale,
            MatmulEngine::Mma,
            &mut seq,
        );
        for shards in [2, 3, 5] {
            let mut par = OnlineSoftmax::new(gq, d);
            attend_packed_blocks_sharded(
                &q,
                &blocks,
                &codec,
                scheme,
                scale,
                MatmulEngine::Mma,
                shards,
                &mut par,
            );
            let a = seq.clone().finish();
            let b = par.finish();
            for (ar, br) in a.iter().zip(&b) {
                for (x, y) in ar.iter().zip(br) {
                    assert!((x - y).abs() < 1e-5, "shards={shards}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn fused_empty_block_list_is_identity() {
        let codec = FragmentCodec::new(PackLayout::sm80_default());
        let q = vec![vec![0.4f32; 16]; 2];
        let mut state = OnlineSoftmax::new(2, 16);
        let none: &[PackedBlock] = &[];
        let ops = attend_packed_blocks_fused(
            &q,
            none,
            &codec,
            QuantScheme::kc4(),
            0.25,
            MatmulEngine::Mma,
            &mut state,
        );
        assert_eq!(ops.total(), 0);
        let out = state.finish();
        assert!(out.iter().all(|row| row.iter().all(|&x| x == 0.0)));
    }

    #[test]
    fn fused_residual_matches_materializing_bitwise() {
        // The fused flat-layout residual walk must reproduce the
        // materializing tile path EXACTLY (bit for bit) for every valid
        // configuration — engines, odd head dims that underfill k-tiles,
        // window lengths from one token to a full Nr-1, and warp counts
        // that do or do not divide the window.
        for engine in [MatmulEngine::Mma, MatmulEngine::Wgmma] {
            for (rows, d, tokens) in [
                (1, 16, 1),
                (2, 32, 7),
                (4, 64, 20),
                (3, 24, 13), // d not a multiple of the 16-wide k-tile
                (4, 128, 127),
            ] {
                let res_k =
                    TokenMatrix::from_fn(tokens, d, |t, c| ((t * d + c) as f32 * 0.37).sin() * 2.0);
                let res_v =
                    TokenMatrix::from_fn(tokens, d, |t, c| ((t * 3 + c * 7) as f32 * 0.53).cos());
                let q: Vec<Vec<f32>> = (0..rows)
                    .map(|g| (0..d).map(|c| ((g * d + c) as f32 * 0.71).sin()).collect())
                    .collect();
                let scale = 1.0 / (d as f32).sqrt();
                for wn in [1usize, 4] {
                    let mut materializing = OnlineSoftmax::new(rows, d);
                    attend_residual(
                        &q,
                        &res_k,
                        &res_v,
                        scale,
                        wn,
                        true,
                        engine,
                        &mut materializing,
                    );
                    let mut fused = OnlineSoftmax::new(rows, d);
                    attend_residual_fused(&q, &res_k, &res_v, scale, engine, &mut fused);
                    let a = materializing.finish();
                    let b = fused.finish();
                    for (ar, br) in a.iter().zip(&b) {
                        for (x, y) in ar.iter().zip(br) {
                            assert_eq!(
                                x.to_bits(),
                                y.to_bits(),
                                "{engine:?} rows={rows} d={d} tokens={tokens} wn={wn}: {x} vs {y}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fused_residual_empty_window_is_identity() {
        let mut state = OnlineSoftmax::new(2, 16);
        let empty = TokenMatrix::new(16);
        let q = vec![vec![0.4f32; 16]; 2];
        attend_residual_fused(&q, &empty, &empty, 0.25, MatmulEngine::Mma, &mut state);
        assert!(state.finish().iter().all(|r| r.iter().all(|&x| x == 0.0)));
    }

    #[test]
    fn residual_attention_matches_reference() {
        let d = 16;
        let gq = 2;
        let res = 7;
        let k = TokenMatrix::from_fn(res, d, |t, c| ((t + c) as f32 * 0.3).sin());
        let v = TokenMatrix::from_fn(res, d, |t, c| ((t * 2 + c) as f32 * 0.21).cos());
        let q: Vec<Vec<f32>> = (0..gq).map(|g| vec![0.2 * (g + 1) as f32; d]).collect();
        let scale = 0.25;
        let mut state = OnlineSoftmax::new(gq, d);
        attend_residual(&q, &k, &v, scale, 4, true, MatmulEngine::Mma, &mut state);
        let got = state.finish();
        let want = reference_attention(&q, &k, &v, scale);
        for (gr, wr) in got.iter().zip(&want) {
            for (g, w) in gr.iter().zip(wr) {
                assert!((g - w).abs() < 2e-2, "{g} vs {w}");
            }
        }
    }
}
