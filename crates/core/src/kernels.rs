//! Functional kernel implementations: attention executed through the
//! simulated Tensor Core ISA.
//!
//! These routines compute *real values* — every matrix product goes through
//! [`bd_gpu_sim::mma`] tile by tile, so fragment-layout bugs corrupt the
//! output exactly as they would on hardware. The analytic twin of this code
//! lives in [`crate::profiles`].

use crate::codec::FragmentCodec;
use crate::softmax::OnlineSoftmax;
use bd_gpu_sim::{
    ldmatrix, mma, mma_block_scaled_fp4, wgmma_ss, AccFragment, FragmentLayout, MmaShape, Operand,
    Tile,
};
use bd_kvcache::{BlockCodec, PackedBlock, QuantScheme, TokenMatrix};
use bd_lowbit::fp4::{quantize_fp4_block, BlockScale, E2M1};
use bd_lowbit::Fp4Kind;

/// Which Tensor Core instruction family executes the attention GEMMs in
/// the functional simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatmulEngine {
    /// `mma.m16n8k16` warp tiles (SM80/SM89 path).
    Mma,
    /// `wgmma.m64n64k16` warpgroup tiles with B in shared memory
    /// (SM90 path; paper §V-D(1)).
    Wgmma,
}

/// Multiplies `a (m × k)` by `b (k × n)` using `mma.m16n8k16` warp tiles,
/// padding every dimension to the tile grid (the padding models Tensor
/// Core tile underfill — partial query groups still issue full tiles).
pub fn matmul_via_mma(a: &Tile, b: &Tile) -> Tile {
    let shape = MmaShape::M16N8K16;
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "inner dimension mismatch");
    let mt = m.div_ceil(shape.m());
    let nt = n.div_ceil(shape.n());
    let kt = k.div_ceil(shape.k());

    let mut out = Tile::zeros(m, n);
    let la = FragmentLayout::new(shape, Operand::A);
    let lb = FragmentLayout::new(shape, Operand::B);
    for mi in 0..mt {
        for ni in 0..nt {
            let mut acc = AccFragment::zeroed(shape);
            for ki in 0..kt {
                let a_tile = Tile::from_fn(shape.m(), shape.k(), |r, c| {
                    let (gr, gc) = (mi * shape.m() + r, ki * shape.k() + c);
                    if gr < m && gc < k {
                        a[(gr, gc)]
                    } else {
                        0.0
                    }
                });
                let b_tile = Tile::from_fn(shape.k(), shape.n(), |r, c| {
                    let (gr, gc) = (ki * shape.k() + r, ni * shape.n() + c);
                    if gr < k && gc < n {
                        b[(gr, gc)]
                    } else {
                        0.0
                    }
                });
                let fa = ldmatrix(&a_tile, la);
                let fb = ldmatrix(&b_tile, lb);
                mma(shape, &fa, &fb, &mut acc);
            }
            let acc_tile = acc.to_tile();
            for r in 0..shape.m() {
                for c in 0..shape.n() {
                    let (gr, gc) = (mi * shape.m() + r, ni * shape.n() + c);
                    if gr < m && gc < n {
                        out[(gr, gc)] = acc_tile[(r, c)];
                    }
                }
            }
        }
    }
    out
}

/// Multiplies `a (m × k)` by `b (k × n)` using `wgmma.m64n64k16` warpgroup
/// tiles. The B operand is consumed from (simulated) shared memory — on
/// Hopper, dequantized values reach it via `STSM` without register-layout
/// correction, which is exactly why the `_SS` form matters to BitDecoding.
pub fn matmul_via_wgmma(a: &Tile, b: &Tile) -> Tile {
    const M: usize = 64;
    const N: usize = 64;
    const K: usize = 16;
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "inner dimension mismatch");
    let mut out = Tile::zeros(m, n);
    for mi in 0..m.div_ceil(M) {
        for ni in 0..n.div_ceil(N) {
            let mut acc = Tile::zeros(M, N);
            for ki in 0..k.div_ceil(K) {
                let a_tile = Tile::from_fn(M, K, |r, c| {
                    let (gr, gc) = (mi * M + r, ki * K + c);
                    if gr < m && gc < k {
                        a[(gr, gc)]
                    } else {
                        0.0
                    }
                });
                let b_tile = Tile::from_fn(K, N, |r, c| {
                    let (gr, gc) = (ki * K + r, ni * N + c);
                    if gr < k && gc < n {
                        b[(gr, gc)]
                    } else {
                        0.0
                    }
                });
                wgmma_ss(&a_tile, &b_tile, &mut acc);
            }
            for r in 0..M {
                for c in 0..N {
                    let (gr, gc) = (mi * M + r, ni * N + c);
                    if gr < m && gc < n {
                        out[(gr, gc)] = acc[(r, c)];
                    }
                }
            }
        }
    }
    out
}

/// Dispatches a matrix product to the configured instruction family.
pub fn matmul(engine: MatmulEngine, a: &Tile, b: &Tile) -> Tile {
    match engine {
        MatmulEngine::Mma => matmul_via_mma(a, b),
        MatmulEngine::Wgmma => matmul_via_wgmma(a, b),
    }
}

fn rows_to_tile(rows: &[Vec<f32>]) -> Tile {
    Tile::from_fn(rows.len(), rows[0].len(), |r, c| rows[r][c])
}

/// Quantizes a row-major matrix to block-scaled FP4 along its columns
/// (`block`-sized groups), returning codes and per-(row, block) scales.
fn to_fp4_rows(rows: &Tile, kind: Fp4Kind) -> (Vec<Vec<E2M1>>, Vec<Vec<f32>>) {
    let block = kind.block_size();
    let mut codes = vec![vec![E2M1::from_bits(0); rows.cols()]; rows.rows()];
    let mut scales = vec![vec![0.0f32; rows.cols().div_ceil(block)]; rows.rows()];
    for r in 0..rows.rows() {
        for b0 in (0..rows.cols()).step_by(block) {
            let b1 = (b0 + block).min(rows.cols());
            let vals: Vec<f32> = (b0..b1).map(|c| rows[(r, c)]).collect();
            let q = quantize_fp4_block(&vals, kind);
            scales[r][b0 / block] = match q.scale {
                BlockScale::Mx(s) => s.to_f32(),
                BlockScale::Nv(s) => s.to_f32(),
            };
            for (i, code) in q.codes.iter().enumerate() {
                codes[r][b0 + i] = *code;
            }
        }
    }
    (codes, scales)
}

/// The Blackwell-native functional path: `S = Q_fp4 · K_fp4^T` and
/// `O += Quant(P)_fp4 · V_fp4` through the block-scaled MMA — no software
/// dequantization, but `P` is re-quantized after every softmax tile
/// (paper Challenge 2 / §V-D(2)).
pub fn attend_packed_blocks_fp4(
    q: &[Vec<f32>],
    blocks: &[PackedBlock],
    codec: &FragmentCodec,
    scheme: QuantScheme,
    kind: Fp4Kind,
    scale: f32,
    state: &mut OnlineSoftmax,
) {
    if blocks.is_empty() {
        return;
    }
    let block_size = kind.block_size();
    let q_scaled = Tile::from_fn(q.len(), q[0].len(), |r, c| q[r][c] * scale);
    let (q_codes, q_scales) = to_fp4_rows(&q_scaled, kind);

    for packed in blocks {
        let (k, v) = codec.decode(packed, scheme);
        // K^T as the B operand: codes per (k-dim block, token).
        let kt = rows_to_tile(&k).transposed();
        let (kt_codes_rowmajor, kt_scales_rowmajor) = {
            // Quantize along the contraction (channel) dimension: transpose,
            // quantize rows, transpose back.
            let (c, s) = to_fp4_rows(&rows_to_tile(&k), kind);
            (c, s)
        };
        // Rearrange to B-operand orientation (k = channel, n = token).
        let d = kt.rows();
        let tokens = kt.cols();
        let mut b_codes = vec![vec![E2M1::from_bits(0); tokens]; d];
        let mut b_scales = vec![vec![0.0f32; tokens]; d.div_ceil(block_size)];
        for t in 0..tokens {
            for c in 0..d {
                b_codes[c][t] = kt_codes_rowmajor[t][c];
                b_scales[c / block_size][t] = kt_scales_rowmajor[t][c / block_size];
            }
        }
        let mut s_tile = Tile::zeros(q.len(), tokens);
        mma_block_scaled_fp4(
            &q_codes,
            &q_scales,
            &b_codes,
            &b_scales,
            block_size,
            &mut s_tile,
        );

        // Softmax in FP16/FP32 registers, then requantize P to FP4 for the
        // second block-scaled MMA.
        let mut p = Tile::zeros(q.len(), tokens);
        let mut row_max = vec![f32::NEG_INFINITY; q.len()];
        for r in 0..q.len() {
            for t in 0..tokens {
                row_max[r] = row_max[r].max(s_tile[(r, t)]);
            }
            for t in 0..tokens {
                p[(r, t)] = (s_tile[(r, t)] - row_max[r]).exp();
            }
        }
        let (p_codes, p_scales) = to_fp4_rows(&p, kind);
        // V as B operand: (k = token, n = channel).
        let (v_codes_rowmajor, v_scales_rowmajor) = to_fp4_rows(&rows_to_tile(&v), kind);
        // V is quantized along channels per token; for the P·V contraction
        // the scale block runs along tokens, so requantize orientation-true:
        let dv = v[0].len();
        let mut vb_codes = vec![vec![E2M1::from_bits(0); dv]; tokens];
        let mut vb_scales = vec![vec![0.0f32; dv]; tokens.div_ceil(block_size)];
        {
            // Re-quantize V columns in token-blocks to satisfy the MMA's
            // (k_block, n) scale layout.
            let vt = rows_to_tile(&v).transposed(); // dv × tokens
            let (cols_codes, cols_scales) = to_fp4_rows(&vt, kind);
            for c in 0..dv {
                for t in 0..tokens {
                    vb_codes[t][c] = cols_codes[c][t];
                    vb_scales[t / block_size][c] = cols_scales[c][t / block_size];
                }
            }
            let _ = (v_codes_rowmajor, v_scales_rowmajor);
        }
        let mut pv = Tile::zeros(q.len(), dv);
        mma_block_scaled_fp4(
            &p_codes, &p_scales, &vb_codes, &vb_scales, block_size, &mut pv,
        );

        // Fold the pre-normalized tile into the online state: the tile's
        // exps used row_max as reference, matching step_tile's contract if
        // we feed (S, V); instead update the state manually.
        for r in 0..q.len() {
            let m_new = state.m[r].max(row_max[r]);
            let corr_old = (state.m[r] - m_new).exp();
            let corr_tile = (row_max[r] - m_new).exp();
            let mut l_tile = 0.0f32;
            for t in 0..tokens {
                l_tile += p[(r, t)];
            }
            state.l[r] = state.l[r] * corr_old + l_tile * corr_tile;
            for (c, acc) in state.acc[r].iter_mut().enumerate() {
                *acc = *acc * corr_old + pv[(r, c)] * corr_tile;
            }
            state.m[r] = m_new;
        }
    }
}

/// The functional **Packing Kernel** body for one KV group: unpacks each
/// packed block through the codec, computes `S = (Q·scale)·K^T` and `P·V`
/// on the simulated Tensor Cores, and folds results into the online-softmax
/// state with the configured warp layout.
#[allow(clippy::too_many_arguments)]
pub fn attend_packed_blocks(
    q: &[Vec<f32>],
    blocks: &[PackedBlock],
    codec: &FragmentCodec,
    scheme: QuantScheme,
    scale: f32,
    wn: usize,
    cooperative: bool,
    engine: MatmulEngine,
    state: &mut OnlineSoftmax,
) {
    if blocks.is_empty() {
        return;
    }
    let q_scaled: Vec<Vec<f32>> = q
        .iter()
        .map(|row| row.iter().map(|&x| x * scale).collect())
        .collect();
    let q_tile = rows_to_tile(&q_scaled);
    for block in blocks {
        let (k, v) = codec.decode(block, scheme);
        let kt_tile = rows_to_tile(&k).transposed();
        let s = matmul(engine, &q_tile, &kt_tile);
        let v_tile = rows_to_tile(&v);
        state.step_tile_warped(&s, &v_tile, wn, cooperative);
    }
}

/// The functional **Residual Kernel** attention body for one KV group:
/// FP16 attention over the residual region (same Tensor Core path), folded
/// into the shared state. Flushing (quantize + pack) is handled by the
/// cache via the codec.
#[allow(clippy::too_many_arguments)]
pub fn attend_residual(
    q: &[Vec<f32>],
    res_k: &TokenMatrix,
    res_v: &TokenMatrix,
    scale: f32,
    wn: usize,
    cooperative: bool,
    engine: MatmulEngine,
    state: &mut OnlineSoftmax,
) {
    if res_k.is_empty() {
        return;
    }
    let q_scaled: Vec<Vec<f32>> = q
        .iter()
        .map(|row| row.iter().map(|&x| x * scale).collect())
        .collect();
    let q_tile = rows_to_tile(&q_scaled);
    let kt_tile = rows_to_tile(res_k).transposed();
    let s = matmul(engine, &q_tile, &kt_tile);
    // The residual region is narrower than a full warp tile set; it runs
    // single-warp slices when it cannot split evenly.
    let eff_wn = if s.cols() % wn == 0 { wn } else { 1 };
    state.step_tile_warped(&s, &rows_to_tile(res_v), eff_wn, cooperative);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmax::reference_attention;
    use bd_kvcache::PackLayout;

    #[test]
    fn wgmma_matmul_matches_dense() {
        for (m, k, n) in [(4, 64, 24), (64, 16, 64), (5, 33, 70)] {
            let a = Tile::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.17 - 1.0);
            let b = Tile::from_fn(k, n, |r, c| ((r * 11 + c * 3) % 7) as f32 * 0.23 - 0.7);
            let got = matmul_via_wgmma(&a, &b);
            let want = a.matmul(&b);
            assert!(got.max_abs_diff(&want) < 1e-3, "({m},{k},{n})");
        }
    }

    #[test]
    fn wgmma_and_mma_engines_agree() {
        let a = Tile::from_fn(8, 64, |r, c| ((r * 13 + c) % 9) as f32 * 0.3 - 1.2);
        let b = Tile::from_fn(64, 40, |r, c| ((r + c * 5) % 11) as f32 * 0.2 - 1.0);
        let via_mma = matmul(MatmulEngine::Mma, &a, &b);
        let via_wgmma = matmul(MatmulEngine::Wgmma, &a, &b);
        // mma rounds operands through FP16 fragments; wgmma_SS is modelled
        // at tile granularity, so agreement is within FP16 operand noise.
        assert!(via_mma.max_abs_diff(&via_wgmma) < 0.05);
    }

    #[test]
    fn fp4_native_attention_tracks_reference() {
        let layout = PackLayout::sm80_default();
        let codec = FragmentCodec::new(layout);
        let scheme = QuantScheme::mxfp4();
        let nr = 128;
        let d = 64;
        let gq = 4;
        let k: TokenMatrix = (0..nr)
            .map(|t| (0..d).map(|c| ((t * d + c) as f32 * 0.37).sin()).collect())
            .collect();
        // Values with per-channel structure so the attention output has
        // O(1) magnitude — a zero-mean V produces pure cancellation noise
        // that no 4-bit format can track.
        let v: TokenMatrix = (0..nr)
            .map(|t| {
                (0..d)
                    .map(|c| (c as f32 * 0.3).sin() + 0.3 * ((t * d + c) as f32 * 0.53).cos())
                    .collect()
            })
            .collect();
        let q: Vec<Vec<f32>> = (0..gq)
            .map(|g| (0..d).map(|c| ((g * d + c) as f32 * 0.71).sin()).collect())
            .collect();
        let blocks = vec![codec.encode(&k, &v, scheme)];
        let scale = 1.0 / (d as f32).sqrt();
        let mut state = OnlineSoftmax::new(gq, d);
        attend_packed_blocks_fp4(&q, &blocks, &codec, scheme, Fp4Kind::Mx, scale, &mut state);
        let got = state.finish();
        let want = crate::softmax::reference_attention(&q, &k, &v, scale);
        // FP4 everywhere (Q, K, P, V) is coarse: allow ~15% error on the
        // O(1) signal, and demand strong overall correlation.
        let mut dot = 0.0f64;
        let mut n1 = 0.0f64;
        let mut n2 = 0.0f64;
        for (gr, wr) in got.iter().zip(&want) {
            for (g, w) in gr.iter().zip(wr) {
                assert!((g - w).abs() < 0.2, "{g} vs {w}");
                dot += f64::from(*g) * f64::from(*w);
                n1 += f64::from(*g) * f64::from(*g);
                n2 += f64::from(*w) * f64::from(*w);
            }
        }
        let cos = dot / (n1.sqrt() * n2.sqrt()).max(1e-12);
        assert!(cos > 0.97, "cosine {cos}");
    }

    #[test]
    fn mma_matmul_matches_dense_for_odd_shapes() {
        for (m, k, n) in [(4, 64, 24), (16, 16, 8), (5, 33, 9), (1, 128, 40)] {
            let a = Tile::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.17 - 1.0);
            let b = Tile::from_fn(k, n, |r, c| ((r * 11 + c * 3) % 7) as f32 * 0.23 - 0.7);
            let got = matmul_via_mma(&a, &b);
            let want = a.matmul(&b);
            assert!(
                got.max_abs_diff(&want) < k as f32 * 0.01,
                "({m},{k},{n}): diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn packed_attention_close_to_fp32_reference() {
        let layout = PackLayout::sm80_default();
        let codec = FragmentCodec::new(layout);
        let scheme = QuantScheme::kc4();
        let nr = 128;
        let d = 32;
        let gq = 4;
        let tokens = nr * 2;

        let k: TokenMatrix = (0..tokens)
            .map(|t| (0..d).map(|c| ((t * d + c) as f32 * 0.37).sin()).collect())
            .collect();
        let v: TokenMatrix = (0..tokens)
            .map(|t| (0..d).map(|c| ((t * d + c) as f32 * 0.53).cos()).collect())
            .collect();
        let q: Vec<Vec<f32>> = (0..gq)
            .map(|g| (0..d).map(|c| ((g * d + c) as f32 * 0.71).sin()).collect())
            .collect();

        let blocks: Vec<PackedBlock> = (0..2)
            .map(|b| {
                let kb = k[b * nr..(b + 1) * nr].to_vec();
                let vb = v[b * nr..(b + 1) * nr].to_vec();
                codec.encode(&kb, &vb, scheme)
            })
            .collect();

        let scale = 1.0 / (d as f32).sqrt();
        let mut state = OnlineSoftmax::new(gq, d);
        attend_packed_blocks(
            &q,
            &blocks,
            &codec,
            scheme,
            scale,
            4,
            true,
            MatmulEngine::Mma,
            &mut state,
        );
        let got = state.finish();
        let want = reference_attention(&q, &k, &v, scale);
        for (gr, wr) in got.iter().zip(&want) {
            for (g, w) in gr.iter().zip(wr) {
                assert!((g - w).abs() < 0.05, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn residual_attention_matches_reference() {
        let d = 16;
        let gq = 2;
        let res = 7;
        let k: TokenMatrix = (0..res)
            .map(|t| (0..d).map(|c| ((t + c) as f32 * 0.3).sin()).collect())
            .collect();
        let v: TokenMatrix = (0..res)
            .map(|t| (0..d).map(|c| ((t * 2 + c) as f32 * 0.21).cos()).collect())
            .collect();
        let q: Vec<Vec<f32>> = (0..gq).map(|g| vec![0.2 * (g + 1) as f32; d]).collect();
        let scale = 0.25;
        let mut state = OnlineSoftmax::new(gq, d);
        attend_residual(&q, &k, &v, scale, 4, true, MatmulEngine::Mma, &mut state);
        let got = state.finish();
        let want = reference_attention(&q, &k, &v, scale);
        for (gr, wr) in got.iter().zip(&want) {
            for (g, w) in gr.iter().zip(wr) {
                assert!((g - w).abs() < 2e-2, "{g} vs {w}");
            }
        }
    }
}
