//! Decode workload shapes: everything the analytic cost model needs to know
//! about one decoding step.

use crate::config::AttentionConfig;

/// The shape of one batched decode step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecodeShape {
    /// Batch size (independent sequences).
    pub batch: usize,
    /// Attention head structure.
    pub attn: AttentionConfig,
    /// Total KV tokens per sequence (packed + residual).
    pub seq_len: usize,
    /// Tokens currently in the FP16 residual region.
    pub residual_len: usize,
}

impl DecodeShape {
    /// A shape with an empty residual (all tokens packed).
    pub fn new(batch: usize, attn: AttentionConfig, seq_len: usize) -> Self {
        DecodeShape {
            batch,
            attn,
            seq_len,
            residual_len: 0,
        }
    }

    /// Sets the residual length (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the residual exceeds the sequence.
    pub fn with_residual(mut self, residual_len: usize) -> Self {
        assert!(residual_len <= self.seq_len, "residual exceeds sequence");
        self.residual_len = residual_len;
        self
    }

    /// Packed (quantized) tokens per sequence.
    pub fn packed_len(&self) -> usize {
        self.seq_len - self.residual_len
    }

    /// Independent KV attention groups = `batch × h_kv` (the base grid
    /// parallelism before split-KV).
    pub fn kv_groups(&self) -> usize {
        self.batch * self.attn.heads_kv
    }

    /// Query rows per KV group after the query transformation (`g_q`).
    pub fn rows_per_group(&self) -> usize {
        self.attn.group_factor()
    }

    /// Total query rows across the step (`batch × h_q`).
    pub fn total_rows(&self) -> usize {
        self.batch * self.attn.heads_q
    }

    /// FP16 KV-cache bytes this step would read without quantization.
    pub fn fp16_kv_bytes(&self) -> f64 {
        2.0 * self.kv_groups() as f64 * self.seq_len as f64 * self.attn.head_dim as f64 * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let s = DecodeShape::new(4, AttentionConfig::gqa(32, 8, 128), 4096).with_residual(96);
        assert_eq!(s.packed_len(), 4000);
        assert_eq!(s.kv_groups(), 32);
        assert_eq!(s.rows_per_group(), 4);
        assert_eq!(s.total_rows(), 128);
        // 2 tensors × 32 groups × 4096 tokens × 128 dim × 2 bytes.
        assert_eq!(s.fp16_kv_bytes(), 2.0 * 32.0 * 4096.0 * 128.0 * 2.0);
    }

    #[test]
    #[should_panic(expected = "residual exceeds sequence")]
    fn oversized_residual_rejected() {
        DecodeShape::new(1, AttentionConfig::mha(8, 64), 10).with_residual(11);
    }
}
