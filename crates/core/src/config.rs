//! Attention configurations (MHA / GQA / MQA) and the query transformation
//! (paper §V-A).
//!
//! During decoding `Q_len = 1`, so a naive `Q · K^T` per query head is a
//! GEMV that underfills Tensor Core tiles. BitDecoding reshapes the query
//! from `[1, (g_q, h_kv)]` to `[g_q, h_kv]`: the `g_q = h_q / h_kv` heads
//! sharing one KV head become the M rows of a single GEMM block, without
//! changing attention semantics.

use std::fmt;

/// Attention head structure of a model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AttentionConfig {
    /// Query heads (`h_q`).
    pub heads_q: usize,
    /// Key/Value heads (`h_kv`).
    pub heads_kv: usize,
    /// Head dimension (`d`).
    pub head_dim: usize,
}

/// The attention variant implied by a head configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AttentionVariant {
    /// `g_q = 1`: multi-head attention.
    Mha,
    /// `1 < g_q < h_q`: grouped-query attention.
    Gqa,
    /// `h_kv = 1`: multi-query attention.
    Mqa,
}

impl fmt::Display for AttentionVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttentionVariant::Mha => write!(f, "MHA"),
            AttentionVariant::Gqa => write!(f, "GQA"),
            AttentionVariant::Mqa => write!(f, "MQA"),
        }
    }
}

impl AttentionConfig {
    /// Builds a config, validating head divisibility.
    ///
    /// # Panics
    ///
    /// Panics if `heads_q` is not a multiple of `heads_kv` or any field is
    /// zero.
    pub fn new(heads_q: usize, heads_kv: usize, head_dim: usize) -> Self {
        assert!(
            heads_q > 0 && heads_kv > 0 && head_dim > 0,
            "zero-sized attention config"
        );
        assert_eq!(
            heads_q % heads_kv,
            0,
            "query heads ({heads_q}) must be a multiple of KV heads ({heads_kv})"
        );
        AttentionConfig {
            heads_q,
            heads_kv,
            head_dim,
        }
    }

    /// Multi-head attention: every query head has its own KV head.
    pub fn mha(heads: usize, head_dim: usize) -> Self {
        AttentionConfig::new(heads, heads, head_dim)
    }

    /// Grouped-query attention.
    pub fn gqa(heads_q: usize, heads_kv: usize, head_dim: usize) -> Self {
        AttentionConfig::new(heads_q, heads_kv, head_dim)
    }

    /// Multi-query attention: one shared KV head.
    pub fn mqa(heads_q: usize, head_dim: usize) -> Self {
        AttentionConfig::new(heads_q, 1, head_dim)
    }

    /// The KV sharing factor `g_q = h_q / h_kv`.
    pub fn group_factor(&self) -> usize {
        self.heads_q / self.heads_kv
    }

    /// Which attention variant this is.
    pub fn variant(&self) -> AttentionVariant {
        if self.heads_kv == 1 && self.heads_q > 1 {
            AttentionVariant::Mqa
        } else if self.group_factor() == 1 {
            AttentionVariant::Mha
        } else {
            AttentionVariant::Gqa
        }
    }

    /// Softmax scale `1/√d`.
    pub fn scale(&self) -> f32 {
        1.0 / (self.head_dim as f32).sqrt()
    }
}

impl fmt::Display for AttentionConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} h_q={} h_k={} d={}",
            self.variant(),
            self.heads_q,
            self.heads_kv,
            self.head_dim
        )
    }
}

/// One decode-step query for a batch element: `heads_q` rows of `head_dim`.
pub type QueryHeads = Vec<Vec<f32>>;

/// The query transformation: regroups the `h_q × d` single-token query into
/// `h_kv` GEMM blocks of `g_q × d` rows, one per KV head.
///
/// Query head `h` attends KV head `h / g_q`; its row index inside that
/// block is `h % g_q`.
///
/// # Panics
///
/// Panics if the query shape does not match the config.
pub fn query_transform(q: &QueryHeads, config: &AttentionConfig) -> Vec<Vec<Vec<f32>>> {
    assert_eq!(q.len(), config.heads_q, "query head count mismatch");
    for row in q {
        assert_eq!(row.len(), config.head_dim, "query dim mismatch");
    }
    let gq = config.group_factor();
    (0..config.heads_kv)
        .map(|kv| (0..gq).map(|g| q[kv * gq + g].clone()).collect())
        .collect()
}

/// Inverse of [`query_transform`] applied to per-KV-head outputs: flattens
/// `h_kv` blocks of `g_q × d` back into `h_q × d` in query-head order.
pub fn ungroup_outputs(blocks: &[Vec<Vec<f32>>], config: &AttentionConfig) -> QueryHeads {
    let gq = config.group_factor();
    assert_eq!(blocks.len(), config.heads_kv, "block count mismatch");
    let mut out = Vec::with_capacity(config.heads_q);
    for block in blocks {
        assert_eq!(block.len(), gq, "rows per block mismatch");
        for row in block {
            out.push(row.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_classified() {
        assert_eq!(
            AttentionConfig::mha(32, 128).variant(),
            AttentionVariant::Mha
        );
        assert_eq!(
            AttentionConfig::gqa(32, 8, 128).variant(),
            AttentionVariant::Gqa
        );
        assert_eq!(
            AttentionConfig::mqa(32, 128).variant(),
            AttentionVariant::Mqa
        );
        assert_eq!(AttentionConfig::gqa(32, 8, 128).group_factor(), 4);
        assert_eq!(AttentionConfig::mqa(32, 128).group_factor(), 32);
    }

    #[test]
    #[should_panic(expected = "multiple of KV heads")]
    fn indivisible_heads_rejected() {
        AttentionConfig::new(10, 3, 64);
    }

    #[test]
    fn transform_groups_heads_by_kv() {
        let cfg = AttentionConfig::gqa(8, 2, 4);
        let q: QueryHeads = (0..8).map(|h| vec![h as f32; 4]).collect();
        let grouped = query_transform(&q, &cfg);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].len(), 4);
        // KV head 0 gets query heads 0..4, KV head 1 gets 4..8.
        assert_eq!(grouped[0][3][0], 3.0);
        assert_eq!(grouped[1][0][0], 4.0);
    }

    #[test]
    fn transform_round_trips() {
        let cfg = AttentionConfig::gqa(16, 4, 8);
        let q: QueryHeads = (0..16)
            .map(|h| (0..8).map(|c| (h * 8 + c) as f32).collect())
            .collect();
        let grouped = query_transform(&q, &cfg);
        assert_eq!(ungroup_outputs(&grouped, &cfg), q);
    }

    #[test]
    fn scale_is_inverse_sqrt_d() {
        let cfg = AttentionConfig::mha(1, 64);
        assert!((cfg.scale() - 0.125).abs() < 1e-6);
    }
}
