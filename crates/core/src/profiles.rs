//! Analytic kernel-profile builders for BitDecoding's decode path.
//!
//! Each function converts a [`DecodeShape`] into the event counts one
//! kernel launch generates (DRAM bytes, TC MACs, CUDA-core slots, smem
//! transactions). `bd-gpu-sim`'s cost model then prices the events on a
//! concrete GPU. Baseline systems build their own profiles in
//! `bd-baselines` from the same vocabulary, so every comparison shares one
//! pricing rule.

use crate::shape::DecodeShape;
use bd_gpu_sim::{conflict_factor, GpuArch, KernelProfile, OverlapSpec, Swizzle};
use bd_kvcache::{QuantScheme, SchemeKind};
use bd_lowbit::fastpath::register_ops;
use bd_lowbit::{codes_per_u32, BitWidth};

/// CUDA-core issue slots one dequantized element costs on the `lop3` fast
/// path, derived from the **same** per-register instruction counts the
/// functional fused kernel reports through
/// [`bd_lowbit::fastpath::FastDequantOps`]:
/// `register_ops(w).total() / codes_per_u32(w)` — 11/8 for INT4, 23/16 for
/// INT2. Charging the model from the telemetry source keeps the analytic
/// cost and the counted instruction stream in lock-step (see
/// `tests/telemetry.rs`).
pub fn fast_dequant_slots_per_elem(width: BitWidth) -> f64 {
    f64::from(register_ops(width).total()) / codes_per_u32(width) as f64
}

/// Architecture-specific execution path of the Packing Kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArchPath {
    /// `mma.m16n8k16` + `cp.async` (Ampere / Ada), "v2" kernels.
    Sm80,
    /// `wgmma` + TMA + warp specialization (Hopper), "v3" kernels.
    Sm90,
    /// Blackwell native block-scaled FP4 MMA.
    Sm100Fp4,
}

impl ArchPath {
    /// The default path for an architecture and scheme.
    pub fn select(arch: &GpuArch, scheme: QuantScheme) -> ArchPath {
        match scheme.kind() {
            SchemeKind::Fp4(_) if arch.gen.supports_fp4_mma() => ArchPath::Sm100Fp4,
            _ if arch.gen.supports_wgmma() => ArchPath::Sm90,
            _ => ArchPath::Sm80,
        }
    }

    /// Throughput penalty for running legacy SM80 instructions on newer
    /// tensor cores (the ~35% loss the paper cites for pre-Hopper kernels
    /// on H100, §III-A). Multiplies issued TC work.
    pub fn legacy_tc_penalty(self, arch: &GpuArch) -> f64 {
        if self == ArchPath::Sm80 && arch.gen.supports_wgmma() {
            1.35
        } else {
            1.0
        }
    }
}

/// Ablation switches for BitDecoding's design modules (paper Fig. 16 and
/// Table III). All enabled by default.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptimizationFlags {
    /// Layout induction: pack in fragment order so dequantization uses the
    /// fast `lop3` path with zero reshuffling. Disabled → slow casts plus
    /// in-kernel layout fixup.
    pub layout_induction: bool,
    /// Warp parallelism: `Wm = 1, Wn = 4` so dequant stalls are hidden by
    /// the warp scheduler. Disabled → FlashAttention's `Wn = 1` layout.
    pub warp_parallelism: bool,
    /// Software pipeline: `cp.async`/TMA double-buffering overlapping
    /// loads, dequant and MMA. Disabled → phase-serial execution.
    pub software_pipeline: bool,
    /// Multi-warp cooperative softmax (Algorithm 1). Only meaningful with
    /// `warp_parallelism`; disabling it with `Wn > 1` produces invalid
    /// numerics (the cost model still prices it for Table III).
    pub cooperative_softmax: bool,
}

impl OptimizationFlags {
    /// Everything on — the shipping configuration.
    pub const ALL: OptimizationFlags = OptimizationFlags {
        layout_induction: true,
        warp_parallelism: true,
        software_pipeline: true,
        cooperative_softmax: true,
    };
}

impl Default for OptimizationFlags {
    fn default() -> Self {
        OptimizationFlags::ALL
    }
}

/// Number of KV splits the split-KV scheduler picks: enough CTAs to give
/// every SM its latency-hiding warps, bounded by the token count
/// (paper's FlashDecoding-style Single setting).
pub fn choose_splits(arch: &GpuArch, shape: &DecodeShape, warps_per_cta: f64) -> usize {
    let base = shape.kv_groups() as f64;
    let target_ctas = arch.sms as f64 * arch.warps_to_saturate / warps_per_cta;
    let want = (target_ctas / base).ceil().max(1.0) as usize;
    // A split must cover at least one 256-token KV chunk.
    let max_splits = (shape.packed_len() / 256).max(1);
    want.min(max_splits)
}

/// Fraction of Tensor-Core M-tile rows the query transform actually fills:
/// `g_q` rows of a 16-row tile. Issued MACs are charged for full tiles.
fn mtile_rows(gq: usize) -> f64 {
    (gq.div_ceil(16) * 16) as f64
}

/// Issued Tensor Core MACs for both attention GEMMs over `tokens` KV
/// positions (Q·K^T and P·V).
fn attention_tc_macs(shape: &DecodeShape, tokens: usize) -> f64 {
    let d = shape.attn.head_dim as f64;
    let rows = mtile_rows(shape.rows_per_group());
    2.0 * rows * d * tokens as f64 * shape.kv_groups() as f64
}

/// CUDA-core softmax work over `tokens` positions (exp + rescale + reduce).
fn softmax_ops(shape: &DecodeShape, tokens: usize) -> (f64, f64, f64) {
    let rows = shape.total_rows() as f64 * tokens as f64;
    (rows, 0.25 * rows, 0.75 * rows)
}

/// The overlap structure implied by the flags and arch path.
pub fn overlap_for(path: ArchPath, flags: OptimizationFlags) -> OverlapSpec {
    if !flags.warp_parallelism {
        return OverlapSpec::SERIALIZED_DEQUANT;
    }
    let mut spec = match path {
        ArchPath::Sm80 => OverlapSpec::PIPELINED,
        // Warp-specialized producer/consumer + wgmma_SS: best overlap.
        ArchPath::Sm90 => OverlapSpec {
            tc_cuda: 0.97,
            mem_compute: 0.95,
        },
        // No dequant at all; the residual stall is the P requantization.
        ArchPath::Sm100Fp4 => OverlapSpec {
            tc_cuda: 0.93,
            mem_compute: 0.93,
        },
    };
    if !flags.software_pipeline {
        spec.mem_compute = 0.55;
    }
    spec
}

/// Profile of the **Packing Kernel** (paper §V-C): fused dequantization +
/// attention over the packed region of the cache.
pub fn packing_kernel_profile(
    shape: &DecodeShape,
    scheme: QuantScheme,
    arch: &GpuArch,
    path: ArchPath,
    flags: OptimizationFlags,
    paged: bool,
) -> KernelProfile {
    let lp = shape.packed_len();
    let d = shape.attn.head_dim;
    let groups = shape.kv_groups() as f64;
    let mut p = KernelProfile::new(format!("bitdecoding-packing-{}", scheme.label()));

    // --- DRAM traffic ---
    let kv_bytes = groups * lp as f64 * scheme.bytes_per_token(d);
    let q_bytes = shape.total_rows() as f64 * d as f64 * 2.0;
    let o_bytes = shape.total_rows() as f64 * d as f64 * 2.0;
    p.dram_read_bytes = kv_bytes + q_bytes;
    p.dram_write_bytes = o_bytes;
    if paged {
        // Page-table walks plus slightly less coalesced gathers.
        p.dram_read_bytes += groups * (lp as f64 / 64.0) * 8.0;
        p.dram_read_bytes *= 1.03;
    }

    // --- Tensor Core work ---
    let macs = attention_tc_macs(shape, lp) * path.legacy_tc_penalty(arch);
    match path {
        ArchPath::Sm100Fp4 => p.tc_macs_fp4 = macs,
        _ => p.tc_macs_fp16 = macs,
    }

    // --- CUDA-core work ---
    let elems = 2.0 * groups * lp as f64 * d as f64; // K and V elements
    match path {
        ArchPath::Sm100Fp4 => {
            // Native FP4 MMA: no dequantization, but P must be re-quantized
            // to FP4 after softmax (paper Challenge 2).
            p.cuda.quant += shape.total_rows() as f64 * lp as f64 * 2.0;
        }
        _ => {
            if flags.layout_induction {
                // lop3 fast path, charged at the exact per-element rate the
                // fused kernel's FastDequantOps telemetry reports (11/8 for
                // INT4, 23/16 for INT2). FP4-on-dequant-path packs at the
                // INT4 ratio.
                let width = scheme.int_width().unwrap_or(BitWidth::B4);
                p.cuda.dequant += elems * fast_dequant_slots_per_elem(width);
            } else {
                // static_cast per element plus in-register layout fixup.
                p.cuda.cvt += elems * 1.0;
                p.cuda.misc += elems * 2.0;
            }
        }
    }
    let (exp, reduce, misc) = softmax_ops(shape, lp);
    p.cuda.exp += exp;
    p.cuda.reduce += reduce;
    p.cuda.misc += misc;

    // --- Shared memory ---
    let swizzle = if flags.layout_induction {
        Swizzle::Xor
    } else {
        Swizzle::None
    };
    let conflict = conflict_factor(d * 2, swizzle).max(1.0);
    let staged_bytes = kv_bytes * 2.0; // stage packed data, read fragments
    p.smem_transactions = staged_bytes / 128.0 * conflict;
    if flags.cooperative_softmax && flags.warp_parallelism && path != ArchPath::Sm90 {
        // sAcc round-trip: P written to and re-read from shared memory.
        // On Hopper wgmma reads smem directly, so the store is free.
        p.smem_transactions += 2.0 * shape.total_rows() as f64 * lp as f64 * 2.0 / 128.0;
    }

    // --- Grid & overlap ---
    // Wn=4 compute warps plus the producer/copy warps of the software
    // pipeline (warp-specialized on Hopper+).
    let warps_per_cta = 8.0;
    let splits = choose_splits(arch, shape, warps_per_cta);
    p.ctas = (shape.kv_groups() * splits) as f64;
    p.warps_per_cta = warps_per_cta;
    p.overlap = overlap_for(path, flags);
    if !flags.warp_parallelism && path != ArchPath::Sm100Fp4 {
        // A single compute warp along N stalls on dequantization between
        // tiles and cannot keep enough loads in flight; achieved bandwidth
        // collapses (paper Fig. 4 / Table III's 6x latency gap). The slow
        // `static_cast` path has a longer per-tile dependence chain and
        // stalls even harder.
        p.bw_derate = if flags.layout_induction { 0.2 } else { 0.1 };
    }
    if path == ArchPath::Sm80 && arch.gen.supports_tma() {
        // Legacy cp.async kernels on Hopper+ also under-drive the memory
        // system relative to TMA + warp specialization (the ~35% penalty
        // of paper §III-A applies to the load path, not just MMA issue).
        p.bw_derate *= 0.65;
    }
    p
}

/// Profile of the **Residual Kernel** (paper §V-B): FP16 attention over the
/// residual region, with fused quantize+pack amortized over the `Nr` steps
/// between flushes.
pub fn residual_kernel_profile(
    shape: &DecodeShape,
    scheme: QuantScheme,
    arch: &GpuArch,
    residual_block: usize,
    flags: OptimizationFlags,
) -> KernelProfile {
    let res = shape.residual_len.max(1);
    let d = shape.attn.head_dim;
    let groups = shape.kv_groups() as f64;
    let mut p = KernelProfile::new("bitdecoding-residual");

    p.dram_read_bytes =
        groups * res as f64 * 2.0 * d as f64 * 2.0 + shape.total_rows() as f64 * d as f64 * 2.0;
    p.dram_write_bytes = shape.total_rows() as f64 * d as f64 * 2.0
        // Appending this step's K/V token.
        + groups * 2.0 * d as f64 * 2.0;
    p.tc_macs_fp16 = attention_tc_macs(shape, res);

    let (exp, reduce, misc) = softmax_ops(shape, res);
    p.cuda.exp += exp;
    p.cuda.reduce += reduce;
    p.cuda.misc += misc;

    // Fused quantize+pack of a full block happens once every Nr steps;
    // charge the amortized share (min/max reduce + scale + pack ≈ 4 ops
    // per element, plus shfl butterfses).
    let flush_elems = 2.0 * groups * residual_block as f64 * d as f64;
    p.cuda.quant += flush_elems * 4.0 / residual_block as f64;
    p.cuda.reduce += flush_elems * 5.0 / 32.0 / residual_block as f64;
    // The flushed packed block is written once per Nr steps.
    p.dram_write_bytes += groups * scheme.bytes_per_token(d); // amortized: Nr tokens / Nr steps

    p.smem_transactions = p.dram_read_bytes / 128.0;
    p.ctas = groups;
    p.warps_per_cta = 4.0;
    p.overlap = overlap_for(ArchPath::Sm80, flags);
    let _ = arch;
    p
}

/// Profile of the split-KV **combine kernel**: merges `splits` partial
/// `(m, l, O)` triples per query row.
pub fn combine_kernel_profile(shape: &DecodeShape, splits: usize) -> KernelProfile {
    let mut p = KernelProfile::new("split-kv-combine");
    let rows = shape.total_rows() as f64;
    let d = shape.attn.head_dim as f64;
    // Partials are FP32 (d values + m + l).
    p.dram_read_bytes = splits as f64 * rows * (d * 4.0 + 8.0);
    p.dram_write_bytes = rows * d * 2.0;
    p.cuda.misc = splits as f64 * rows * d * 2.0;
    p.cuda.exp = splits as f64 * rows;
    p.ctas = (rows / 4.0).max(1.0);
    p.warps_per_cta = 4.0;
    p.overlap = OverlapSpec::STANDALONE;
    p
}

/// The full BitDecoding decode-step plan: packing kernel (+ combine when
/// split) + residual kernel.
pub fn decode_plan(
    shape: &DecodeShape,
    scheme: QuantScheme,
    arch: &GpuArch,
    path: ArchPath,
    flags: OptimizationFlags,
    paged: bool,
    residual_block: usize,
) -> Vec<KernelProfile> {
    let mut plan = Vec::new();
    if shape.packed_len() > 0 {
        plan.push(packing_kernel_profile(
            shape, scheme, arch, path, flags, paged,
        ));
        let splits = choose_splits(arch, shape, 4.0);
        if splits > 1 {
            plan.push(combine_kernel_profile(shape, splits));
        }
    }
    if shape.residual_len > 0 {
        plan.push(residual_kernel_profile(
            shape,
            scheme,
            arch,
            residual_block,
            flags,
        ));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AttentionConfig;

    fn shape_gqa(batch: usize, len: usize) -> DecodeShape {
        DecodeShape::new(batch, AttentionConfig::gqa(32, 8, 128), len).with_residual(len.min(64))
    }

    #[test]
    fn path_selection() {
        assert_eq!(
            ArchPath::select(&GpuArch::a100(), QuantScheme::kc4()),
            ArchPath::Sm80
        );
        assert_eq!(
            ArchPath::select(&GpuArch::h100(), QuantScheme::kc4()),
            ArchPath::Sm90
        );
        assert_eq!(
            ArchPath::select(&GpuArch::rtx5090(), QuantScheme::mxfp4()),
            ArchPath::Sm100Fp4
        );
        // FP4 scheme on non-Blackwell falls back to dequant paths.
        assert_eq!(
            ArchPath::select(&GpuArch::rtx4090(), QuantScheme::mxfp4()),
            ArchPath::Sm80
        );
    }

    #[test]
    fn single_batch_gets_many_splits() {
        let arch = GpuArch::a100();
        let single = DecodeShape::new(1, AttentionConfig::gqa(32, 8, 128), 131072);
        let batched = DecodeShape::new(64, AttentionConfig::gqa(32, 8, 128), 8192);
        assert!(choose_splits(&arch, &single, 4.0) > 8);
        assert_eq!(choose_splits(&arch, &batched, 4.0), 1);
    }

    #[test]
    fn packed_traffic_shrinks_with_bits() {
        let arch = GpuArch::rtx4090();
        let shape = shape_gqa(8, 8192);
        let p4 = packing_kernel_profile(
            &shape,
            QuantScheme::kc4(),
            &arch,
            ArchPath::Sm80,
            OptimizationFlags::ALL,
            false,
        );
        let p2 = packing_kernel_profile(
            &shape,
            QuantScheme::kc2(),
            &arch,
            ArchPath::Sm80,
            OptimizationFlags::ALL,
            false,
        );
        assert!(p2.dram_read_bytes < p4.dram_read_bytes * 0.65);
    }

    #[test]
    fn fp4_path_has_no_dequant_but_requants_p() {
        let arch = GpuArch::rtx5090();
        let shape = shape_gqa(8, 8192);
        let p = packing_kernel_profile(
            &shape,
            QuantScheme::mxfp4(),
            &arch,
            ArchPath::Sm100Fp4,
            OptimizationFlags::ALL,
            false,
        );
        assert_eq!(p.cuda.dequant, 0.0);
        assert!(p.cuda.quant > 0.0);
        assert!(p.tc_macs_fp4 > 0.0);
        assert_eq!(p.tc_macs_fp16, 0.0);
    }

    #[test]
    fn layout_induction_avoids_cvt() {
        let arch = GpuArch::a100();
        let shape = shape_gqa(8, 8192);
        let fast = packing_kernel_profile(
            &shape,
            QuantScheme::kc4(),
            &arch,
            ArchPath::Sm80,
            OptimizationFlags::ALL,
            false,
        );
        let slow = packing_kernel_profile(
            &shape,
            QuantScheme::kc4(),
            &arch,
            ArchPath::Sm80,
            OptimizationFlags {
                layout_induction: false,
                ..OptimizationFlags::ALL
            },
            false,
        );
        assert_eq!(fast.cuda.cvt, 0.0);
        assert!(slow.cuda.cvt > 0.0);
        assert!(slow.cuda.issue_slots() > fast.cuda.issue_slots() * 2.0);
    }

    #[test]
    fn decode_plan_contains_expected_kernels() {
        let arch = GpuArch::a100();
        let shape = shape_gqa(1, 131072);
        let plan = decode_plan(
            &shape,
            QuantScheme::kc4(),
            &arch,
            ArchPath::Sm80,
            OptimizationFlags::ALL,
            false,
            128,
        );
        let names: Vec<&str> = plan.iter().map(|p| p.name.as_str()).collect();
        assert!(names[0].starts_with("bitdecoding-packing"));
        assert!(names.contains(&"split-kv-combine"));
        assert!(names.contains(&"bitdecoding-residual"));
    }

    #[test]
    fn residual_kernel_is_cheap() {
        let arch = GpuArch::rtx4090();
        let shape = shape_gqa(1, 131072);
        let packing = arch.evaluate(&packing_kernel_profile(
            &shape,
            QuantScheme::kc4(),
            &arch,
            ArchPath::Sm80,
            OptimizationFlags::ALL,
            false,
        ));
        let residual = arch.evaluate(&residual_kernel_profile(
            &shape,
            QuantScheme::kc4(),
            &arch,
            128,
            OptimizationFlags::ALL,
        ));
        assert!(
            residual.total < packing.total * 0.35,
            "residual {} vs packing {}",
            residual.total,
            packing.total
        );
    }

    #[test]
    fn paged_adds_small_overhead() {
        let arch = GpuArch::rtx4090();
        let shape = shape_gqa(32, 2048);
        let flat = packing_kernel_profile(
            &shape,
            QuantScheme::kc4(),
            &arch,
            ArchPath::Sm80,
            OptimizationFlags::ALL,
            false,
        );
        let paged = packing_kernel_profile(
            &shape,
            QuantScheme::kc4(),
            &arch,
            ArchPath::Sm80,
            OptimizationFlags::ALL,
            true,
        );
        let ratio = paged.dram_read_bytes / flat.dram_read_bytes;
        assert!(ratio > 1.0 && ratio < 1.1, "paged overhead ratio {ratio}");
    }
}
