//! The public `BitDecoder` API: one object that owns the instruction
//! configuration, runs functional decodes, and prices decode steps on its
//! target GPU.

use crate::codec::FragmentCodec;
use crate::config::{query_transform, ungroup_outputs, AttentionConfig, QueryHeads};
use crate::kernels::{
    attend_packed_blocks, attend_packed_blocks_fp4, attend_packed_blocks_multi,
    attend_packed_blocks_parallel, attend_residual, attend_residual_fused, MatmulEngine,
    SharerBlocks,
};
use crate::profiles::{decode_plan, ArchPath, OptimizationFlags};
use crate::shape::DecodeShape;
use crate::softmax::OnlineSoftmax;
use bd_gpu_sim::{GpuArch, LatencyBreakdown};
use bd_kvcache::SchemeKind;
use bd_kvcache::{
    CacheConfig, CacheError, PackLayout, PackedBlock, QuantScheme, QuantizedKvCache, TokenMatrix,
};
use bd_lowbit::fastpath::FastDequantOps;
use std::borrow::Borrow;
use std::fmt;

/// Errors returned by [`BitDecoder`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// The query batch does not match the cache's head slots.
    BatchMismatch {
        /// Batch implied by the queries.
        queries: usize,
        /// Batch implied by the cache.
        cache: usize,
    },
    /// A query had the wrong number of heads or channels.
    QueryShape {
        /// Description of the mismatch.
        detail: String,
    },
    /// An underlying cache operation failed.
    Cache(CacheError),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BatchMismatch { queries, cache } => {
                write!(
                    f,
                    "query batch {queries} does not match cache batch {cache}"
                )
            }
            DecodeError::QueryShape { detail } => write!(f, "bad query shape: {detail}"),
            DecodeError::Cache(e) => write!(f, "cache error: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Cache(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CacheError> for DecodeError {
    fn from(e: CacheError) -> Self {
        DecodeError::Cache(e)
    }
}

/// One sharer's inputs to [`BitDecoder::attend_head_partial_multi`]: its
/// query block, the packed blocks past the shared prefix run (in logical
/// order), and its FP16 residual window. `prefix ++ suffix ++ residual`
/// is exactly what the independent path would attend over.
pub struct PrefixSharer<'a, B> {
    /// The sharer's per-head query rows.
    pub q_block: &'a [Vec<f32>],
    /// Packed blocks private to this sharer (past the shared prefix).
    pub suffix: &'a [B],
    /// The sharer's residual K window.
    pub res_k: &'a TokenMatrix,
    /// The sharer's residual V window.
    pub res_v: &'a TokenMatrix,
}

/// Per-step latency report: one entry per launched kernel plus totals.
#[derive(Clone, Debug)]
pub struct DecodeReport {
    /// `(kernel name, latency breakdown)` in launch order.
    pub kernels: Vec<(String, LatencyBreakdown)>,
    /// End-to-end step latency in seconds.
    pub total_s: f64,
}

impl DecodeReport {
    /// Tensor Core utilization across the step.
    pub fn tc_utilization(&self) -> f64 {
        let busy: f64 = self.kernels.iter().map(|(_, b)| b.tc_wall).sum();
        if self.total_s > 0.0 {
            (busy / self.total_s).min(1.0)
        } else {
            0.0
        }
    }

    /// Fraction of step time spent on dequantization work (Fig. 15a).
    pub fn dequant_fraction(&self) -> f64 {
        let busy: f64 = self.kernels.iter().map(|(_, b)| b.dequant_wall).sum();
        if self.total_s > 0.0 {
            (busy / self.total_s).min(1.0)
        } else {
            0.0
        }
    }
}

impl fmt::Display for DecodeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "decode step: {:.3} ms", self.total_s * 1e3)?;
        for (name, b) in &self.kernels {
            writeln!(f, "  {name}: {b}")?;
        }
        Ok(())
    }
}

/// Output of a functional decode step.
#[derive(Clone, Debug)]
pub struct DecodeOutput {
    /// Attention outputs per batch element (`h_q × d` each).
    pub outputs: Vec<QueryHeads>,
    /// The priced latency report for this step's shape.
    pub report: DecodeReport,
}

/// Builder for [`BitDecoder`].
#[derive(Clone, Debug)]
pub struct BitDecoderBuilder {
    arch: GpuArch,
    attn: Option<AttentionConfig>,
    scheme: QuantScheme,
    layout: PackLayout,
    flags: OptimizationFlags,
    paged: bool,
    path_override: Option<ArchPath>,
}

impl BitDecoderBuilder {
    /// Sets the attention head structure (required).
    pub fn attention(mut self, attn: AttentionConfig) -> Self {
        self.attn = Some(attn);
        self
    }

    /// Sets the quantization scheme (default KC-4).
    pub fn scheme(mut self, scheme: QuantScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Overrides the instruction configuration (default SM80 m16n8k16,
    /// fast-dequant order, `Wn = 4`).
    pub fn layout(mut self, layout: PackLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Overrides the optimization flags (for ablations).
    pub fn flags(mut self, flags: OptimizationFlags) -> Self {
        self.flags = flags;
        self
    }

    /// Enables paged KV management (the "Pages" evaluation setting).
    pub fn paged(mut self, paged: bool) -> Self {
        self.paged = paged;
        self
    }

    /// Forces a specific architecture path (e.g. run the SM80 "v2" kernels
    /// on Hopper for the v2-vs-v3 comparison of Fig. 9).
    pub fn path_override(mut self, path: ArchPath) -> Self {
        self.path_override = Some(path);
        self
    }

    /// Finalizes the decoder.
    ///
    /// # Panics
    ///
    /// Panics if no attention configuration was provided.
    pub fn build(self) -> BitDecoder {
        let attn = self.attn.expect("attention configuration is required");
        let path = self
            .path_override
            .unwrap_or_else(|| ArchPath::select(&self.arch, self.scheme));
        BitDecoder {
            arch: self.arch,
            attn,
            scheme: self.scheme,
            layout: self.layout,
            flags: self.flags,
            paged: self.paged,
            path,
        }
    }
}

/// A configured BitDecoding engine for one model/GPU pair.
///
/// # Examples
///
/// ```
/// use bd_core::{AttentionConfig, BitDecoder, DecodeShape};
/// use bd_gpu_sim::GpuArch;
/// use bd_kvcache::QuantScheme;
///
/// let dec = BitDecoder::builder(GpuArch::rtx4090())
///     .attention(AttentionConfig::gqa(32, 8, 128))
///     .scheme(QuantScheme::kc4())
///     .build();
/// let shape = DecodeShape::new(1, AttentionConfig::gqa(32, 8, 128), 32768);
/// let report = dec.latency(&shape);
/// assert!(report.total_s > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct BitDecoder {
    arch: GpuArch,
    attn: AttentionConfig,
    scheme: QuantScheme,
    layout: PackLayout,
    flags: OptimizationFlags,
    paged: bool,
    path: ArchPath,
}

impl BitDecoder {
    /// Starts a builder targeting `arch`.
    pub fn builder(arch: GpuArch) -> BitDecoderBuilder {
        BitDecoderBuilder {
            arch,
            attn: None,
            scheme: QuantScheme::kc4(),
            layout: PackLayout::sm80_default(),
            flags: OptimizationFlags::ALL,
            paged: false,
            path_override: None,
        }
    }

    /// The target GPU.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// The attention configuration.
    pub fn attention(&self) -> &AttentionConfig {
        &self.attn
    }

    /// The quantization scheme.
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// The selected architecture path.
    pub fn path(&self) -> ArchPath {
        self.path
    }

    /// The fragment-true codec matching this decoder's configuration —
    /// use it for cache appends so Residual and Packing kernels agree
    /// (paper §IV-A(4)).
    pub fn codec(&self) -> FragmentCodec {
        FragmentCodec::new(self.layout)
    }

    /// Cache configuration matching this decoder.
    pub fn cache_config(&self) -> CacheConfig {
        CacheConfig::new(self.attn.head_dim, self.scheme, self.layout)
    }

    /// Creates an empty cache for `batch` sequences
    /// (`batch × h_kv` head slots).
    pub fn new_cache(&self, batch: usize) -> QuantizedKvCache {
        QuantizedKvCache::new(self.cache_config(), batch * self.attn.heads_kv)
    }

    /// Functionally decodes one step: `q[b]` holds the batch's single-token
    /// queries (`h_q × d`). Returns per-batch attention outputs plus the
    /// priced report.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on shape mismatches.
    pub fn decode(
        &self,
        q: &[QueryHeads],
        cache: &QuantizedKvCache,
    ) -> Result<DecodeOutput, DecodeError> {
        let batch = q.len();
        let expected_heads = batch * self.attn.heads_kv;
        if cache.heads() != expected_heads {
            return Err(DecodeError::BatchMismatch {
                queries: batch,
                cache: cache.heads() / self.attn.heads_kv,
            });
        }
        for (b, heads) in q.iter().enumerate() {
            if heads.len() != self.attn.heads_q {
                return Err(DecodeError::QueryShape {
                    detail: format!(
                        "batch {b}: {} query heads, expected {}",
                        heads.len(),
                        self.attn.heads_q
                    ),
                });
            }
            for row in heads {
                if row.len() != self.attn.head_dim {
                    return Err(DecodeError::QueryShape {
                        detail: format!(
                            "batch {b}: head dim {} != {}",
                            row.len(),
                            self.attn.head_dim
                        ),
                    });
                }
            }
        }

        let mut outputs = Vec::with_capacity(batch);
        let mut max_len = 0usize;
        let mut max_res = 0usize;
        for (b, heads) in q.iter().enumerate() {
            let grouped = query_transform(heads, &self.attn);
            let mut blocks_out = Vec::with_capacity(self.attn.heads_kv);
            for (kv, q_block) in grouped.iter().enumerate() {
                let head = b * self.attn.heads_kv + kv;
                max_len = max_len.max(cache.len(head));
                max_res = max_res.max(cache.residual_len(head));
                let (res_k, res_v) = cache.residual(head);
                let (rows, _ops) =
                    self.attend_head(q_block, cache.packed_blocks(head), res_k, res_v);
                blocks_out.push(rows);
            }
            outputs.push(ungroup_outputs(&blocks_out, &self.attn));
        }

        let shape = DecodeShape::new(batch, self.attn, max_len.max(1)).with_residual(max_res);
        Ok(DecodeOutput {
            outputs,
            report: self.latency(&shape),
        })
    }

    /// Attention for one `(sequence, kv-head)` **work unit**: the grouped
    /// `g_q × d` query block against that head's packed blocks and FP16
    /// residual window. This is exactly the per-head body of
    /// [`BitDecoder::decode`], exposed so the batched serve runtime can fan
    /// independent units across a worker pool while staying **bitwise
    /// identical** to the single-sequence decode path.
    ///
    /// The block list is generic over [`Borrow<PackedBlock>`]: a contiguous
    /// cache passes its slice, [`bd_kvcache::PagedKvStore`] passes the
    /// references it gathered through its page table. Valid (cooperative /
    /// single-warp) configurations run the fused flat-layout kernel with
    /// thread-sharded split-K softmax partials merged through
    /// [`OnlineSoftmax::merge`]; non-cooperative `Wn > 1` configurations
    /// run the materializing walk that models the paper Table III softmax
    /// race; Blackwell FP4 schemes run the native block-scaled MMA path.
    ///
    /// Returns the normalized `g_q × d` output rows plus the fast-dequant
    /// instruction counts the fused path streamed (zero on the other
    /// paths).
    pub fn attend_head<B: Borrow<PackedBlock> + Sync>(
        &self,
        q_block: &[Vec<f32>],
        blocks: &[B],
        res_k: &TokenMatrix,
        res_v: &TokenMatrix,
    ) -> (Vec<Vec<f32>>, FastDequantOps) {
        let (state, ops) = self.attend_head_partial(q_block, blocks, res_k, res_v);
        (state.finish(), ops)
    }

    /// [`BitDecoder::attend_head`] without the final normalization: returns
    /// the raw [`OnlineSoftmax`] partial — the `(m, l, unnormalized
    /// weighted-V)` triple — so callers that shard a head's KV across
    /// devices or ranges can combine partials **exactly** through
    /// [`OnlineSoftmax::merge`] before normalizing once. This is the
    /// all-reduce payload of the tensor-parallel serve path: merging the
    /// device partials and then calling
    /// [`OnlineSoftmax::finish`](OnlineSoftmax::finish) reconstructs the
    /// single-device [`BitDecoder::attend_head`] output bit for bit
    /// (merging a single partial is the identity).
    pub fn attend_head_partial<B: Borrow<PackedBlock> + Sync>(
        &self,
        q_block: &[Vec<f32>],
        blocks: &[B],
        res_k: &TokenMatrix,
        res_v: &TokenMatrix,
    ) -> (OnlineSoftmax, FastDequantOps) {
        let codec = self.codec();
        let scale = self.attn.scale();
        let wn = if self.flags.warp_parallelism {
            self.layout.warps_n
        } else {
            1
        };
        let coop = self.flags.cooperative_softmax;
        let engine = match self.path {
            ArchPath::Sm90 => MatmulEngine::Wgmma,
            _ => MatmulEngine::Mma,
        };
        // Blackwell native FP4: block-scaled MMA consumes packed operands
        // directly (no dequantization, P requantized per tile).
        let fp4_kind = match (self.path, self.scheme.kind()) {
            (ArchPath::Sm100Fp4, SchemeKind::Fp4(kind)) => Some(kind),
            _ => None,
        };

        let mut state = OnlineSoftmax::new(q_block.len(), self.attn.head_dim);
        let mut ops = FastDequantOps::default();
        if let Some(kind) = fp4_kind {
            attend_packed_blocks_fp4(
                q_block,
                blocks,
                &codec,
                self.scheme,
                kind,
                scale,
                &mut state,
            );
        } else if coop || wn == 1 {
            // The valid configurations all compute the exact cooperative
            // softmax, so the hot path is the fused flat-layout kernel with
            // thread-sharded split-K partials merged through
            // `OnlineSoftmax::merge`.
            ops = attend_packed_blocks_parallel(
                q_block,
                blocks,
                &codec,
                self.scheme,
                scale,
                engine,
                &mut state,
            );
        } else {
            // Non-cooperative Wn > 1 models the softmax race of paper
            // Table III, which only the materializing warp-sliced walk
            // reproduces.
            attend_packed_blocks(
                q_block,
                blocks,
                &codec,
                self.scheme,
                scale,
                wn,
                coop,
                engine,
                &mut state,
            );
        }
        if coop || wn == 1 {
            // Valid configurations take the fused flat-layout residual walk
            // — bitwise identical to the materializing kernel, without the
            // tile/transpose/fragment round-trips.
            attend_residual_fused(q_block, res_k, res_v, scale, engine, &mut state);
        } else {
            // The softmax-race model needs the explicit warp-sliced walk.
            attend_residual(q_block, res_k, res_v, scale, wn, coop, engine, &mut state);
        }
        (state, ops)
    }

    /// [`BitDecoder::attend_head_partial`] for a group of sequences that
    /// share a packed-prefix run (cascade / Hydragen-style shared-prefix
    /// attention): the shared `prefix` blocks stream through the dequant
    /// LUTs **once** and score against every sharer's query block in the
    /// same pass, then each sharer's private suffix blocks and FP16
    /// residual window run as today. Returns one un-normalized partial
    /// per sharer, in input order — each bitwise identical to what
    /// [`BitDecoder::attend_head_partial`] would return for that sharer's
    /// full `prefix ++ suffix` block list, so grouping is purely an
    /// optimization. The returned [`FastDequantOps`] counts work actually
    /// performed (deduped on the fused path). Configurations outside the
    /// fused fast path (native FP4, non-cooperative multi-warp) fall back
    /// to per-sharer independent walks.
    pub fn attend_head_partial_multi<B: Borrow<PackedBlock> + Sync>(
        &self,
        prefix: &[B],
        sharers: &[PrefixSharer<'_, B>],
    ) -> (Vec<OnlineSoftmax>, FastDequantOps) {
        let codec = self.codec();
        let scale = self.attn.scale();
        let wn = if self.flags.warp_parallelism {
            self.layout.warps_n
        } else {
            1
        };
        let coop = self.flags.cooperative_softmax;
        let engine = match self.path {
            ArchPath::Sm90 => MatmulEngine::Wgmma,
            _ => MatmulEngine::Mma,
        };
        let fp4 = matches!(
            (self.path, self.scheme.kind()),
            (ArchPath::Sm100Fp4, SchemeKind::Fp4(_))
        );
        if fp4 || !(coop || wn == 1) {
            // Outside the fused fast path the solo kernel has no
            // shared-decode structure to exploit; run each sharer
            // independently over its concatenated block list.
            let mut ops = FastDequantOps::default();
            let partials = sharers
                .iter()
                .map(|s| {
                    let all: Vec<&PackedBlock> = prefix
                        .iter()
                        .map(Borrow::borrow)
                        .chain(s.suffix.iter().map(Borrow::borrow))
                        .collect();
                    let (state, solo_ops) =
                        self.attend_head_partial(s.q_block, &all, s.res_k, s.res_v);
                    ops += solo_ops;
                    state
                })
                .collect();
            return (partials, ops);
        }
        let blocks: Vec<SharerBlocks<'_, B>> = sharers
            .iter()
            .map(|s| SharerBlocks {
                q: s.q_block,
                suffix: s.suffix,
            })
            .collect();
        let (mut partials, ops) = attend_packed_blocks_multi(
            prefix,
            &blocks,
            self.attn.head_dim,
            &codec,
            self.scheme,
            scale,
            engine,
        );
        for (state, s) in partials.iter_mut().zip(sharers) {
            attend_residual_fused(s.q_block, s.res_k, s.res_v, scale, engine, state);
        }
        (partials, ops)
    }

    /// Prices one decode step of the given shape on the target GPU.
    pub fn latency(&self, shape: &DecodeShape) -> DecodeReport {
        let nr = self.cache_config().residual_block();
        let plan = decode_plan(
            shape,
            self.scheme,
            &self.arch,
            self.path,
            self.flags,
            self.paged,
            nr,
        );
        let kernels: Vec<(String, LatencyBreakdown)> = plan
            .iter()
            .map(|p| (p.name.clone(), self.arch.evaluate(p)))
            .collect();
        let total_s = kernels.iter().map(|(_, b)| b.total).sum();
        DecodeReport { kernels, total_s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmax::reference_attention;

    fn decoder(arch: GpuArch, scheme: QuantScheme) -> BitDecoder {
        BitDecoder::builder(arch)
            .attention(AttentionConfig::gqa(8, 2, 32))
            .scheme(scheme)
            .build()
    }

    type StoredKv = Vec<(Vec<Vec<f32>>, Vec<Vec<f32>>)>;

    fn fill_cache(dec: &BitDecoder, cache: &mut QuantizedKvCache, len: usize) -> StoredKv {
        let codec = dec.codec();
        let d = dec.attention().head_dim;
        let mut stored = Vec::new();
        for head in 0..cache.heads() {
            let k: Vec<Vec<f32>> = (0..len)
                .map(|t| {
                    (0..d)
                        .map(|c| ((head * 31 + t * d + c) as f32 * 0.37).sin())
                        .collect()
                })
                .collect();
            let v: Vec<Vec<f32>> = (0..len)
                .map(|t| {
                    (0..d)
                        .map(|c| ((head * 17 + t * d + c) as f32 * 0.53).cos())
                        .collect()
                })
                .collect();
            cache.prefill(head, &k, &v, &codec).unwrap();
            stored.push((k, v));
        }
        stored
    }

    fn query(dec: &BitDecoder, b: usize) -> QueryHeads {
        let attn = dec.attention();
        (0..attn.heads_q)
            .map(|h| {
                (0..attn.head_dim)
                    .map(|c| ((b * 7 + h * attn.head_dim + c) as f32 * 0.71).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn decode_matches_fp32_reference_within_quant_error() {
        let dec = decoder(GpuArch::rtx4090(), QuantScheme::kc4());
        let mut cache = dec.new_cache(1);
        let len = 128 + 37; // one packed block + residual
        fill_cache(&dec, &mut cache, len);
        let q = vec![query(&dec, 0)];
        let out = dec.decode(&q, &cache).unwrap();

        // Reference: logical dequantized KV through plain f32 attention.
        let codec = dec.codec();
        let attn = *dec.attention();
        let gq = attn.group_factor();
        for (h, q_head) in q[0].iter().enumerate() {
            let kv_head = h / gq;
            let (k, v) = cache.logical_kv(kv_head, &codec);
            let reference = reference_attention(std::slice::from_ref(q_head), &k, &v, attn.scale());
            for (got, want) in out.outputs[0][h].iter().zip(&reference[0]) {
                assert!((got - want).abs() < 5e-3, "head {h}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn decode_tracks_unquantized_attention() {
        // End-to-end: output should be close to attention over the ORIGINAL
        // (pre-quantization) values — the accuracy claim.
        let dec = decoder(GpuArch::rtx4090(), QuantScheme::kc4());
        let mut cache = dec.new_cache(1);
        let stored = fill_cache(&dec, &mut cache, 128 + 5);
        let q = vec![query(&dec, 0)];
        let out = dec.decode(&q, &cache).unwrap();
        let attn = *dec.attention();
        for h in 0..attn.heads_q {
            let (k, v) = &stored[h / attn.group_factor()];
            let reference = reference_attention(&[q[0][h].clone()], k, v, attn.scale());
            for (got, want) in out.outputs[0][h].iter().zip(&reference[0]) {
                assert!((got - want).abs() < 0.06, "head {h}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn disabling_cooperative_softmax_corrupts_output() {
        let good = decoder(GpuArch::rtx4090(), QuantScheme::kc4());
        let bad = BitDecoder::builder(GpuArch::rtx4090())
            .attention(AttentionConfig::gqa(8, 2, 32))
            .flags(OptimizationFlags {
                cooperative_softmax: false,
                ..OptimizationFlags::ALL
            })
            .build();
        let mut cache = good.new_cache(1);
        fill_cache(&good, &mut cache, 256);
        let q = vec![query(&good, 0)];
        let out_good = good.decode(&q, &cache).unwrap();
        let out_bad = bad.decode(&q, &cache).unwrap();
        let mut max_diff = 0.0f32;
        for (a, b) in out_good.outputs[0].iter().zip(&out_bad.outputs[0]) {
            for (x, y) in a.iter().zip(b) {
                max_diff = max_diff.max((x - y).abs());
            }
        }
        // The corruption magnitude depends on how much per-slice maxima
        // differ in the data; with smooth KV it is small but must be
        // clearly above FP16 noise. The softmax-level test exercises the
        // large-deviation case directly.
        assert!(
            max_diff > 1e-4,
            "race must corrupt outputs, diff {max_diff}"
        );
    }

    #[test]
    fn batched_decode_shapes() {
        let dec = decoder(GpuArch::a100(), QuantScheme::kc2());
        let mut cache = dec.new_cache(2);
        fill_cache(&dec, &mut cache, 64);
        let q = vec![query(&dec, 0), query(&dec, 1)];
        let out = dec.decode(&q, &cache).unwrap();
        assert_eq!(out.outputs.len(), 2);
        assert_eq!(out.outputs[0].len(), 8);
        assert_eq!(out.outputs[1][7].len(), 32);
    }

    #[test]
    fn batch_mismatch_rejected() {
        let dec = decoder(GpuArch::a100(), QuantScheme::kc4());
        let cache = dec.new_cache(2);
        let q = vec![query(&dec, 0)];
        assert!(matches!(
            dec.decode(&q, &cache),
            Err(DecodeError::BatchMismatch {
                queries: 1,
                cache: 2
            })
        ));
    }

    #[test]
    fn latency_reports_scale_with_sequence() {
        let dec = BitDecoder::builder(GpuArch::rtx4090())
            .attention(AttentionConfig::gqa(32, 8, 128))
            .build();
        let attn = AttentionConfig::gqa(32, 8, 128);
        let short = dec.latency(&DecodeShape::new(8, attn, 1024));
        let long = dec.latency(&DecodeShape::new(8, attn, 16384));
        assert!(long.total_s > short.total_s * 4.0);
        assert!(short.tc_utilization() > 0.0);
    }

    #[test]
    fn fp4_path_on_blackwell() {
        let dec = BitDecoder::builder(GpuArch::rtx5090())
            .attention(AttentionConfig::gqa(32, 8, 128))
            .scheme(QuantScheme::mxfp4())
            .build();
        assert_eq!(dec.path(), ArchPath::Sm100Fp4);
        let shape = DecodeShape::new(8, AttentionConfig::gqa(32, 8, 128), 8192);
        let report = dec.latency(&shape);
        assert!(
            report.dequant_fraction() < 1e-9,
            "native FP4 has no dequant"
        );
    }

    #[test]
    fn hopper_decode_uses_wgmma_and_matches_reference() {
        // Functional decode on the SM90 path (wgmma_SS engine) must agree
        // with the SM80 mma path to FP16 noise.
        let attn = AttentionConfig::gqa(8, 2, 32);
        let sm80 = BitDecoder::builder(GpuArch::rtx4090())
            .attention(attn)
            .build();
        let sm90 = BitDecoder::builder(GpuArch::h100()).attention(attn).build();
        assert_eq!(sm90.path(), ArchPath::Sm90);
        let mut cache = sm80.new_cache(1);
        fill_cache(&sm80, &mut cache, 200);
        let q = vec![query(&sm80, 0)];
        let a = sm80.decode(&q, &cache).unwrap();
        let b = sm90.decode(&q, &cache).unwrap();
        for (x, y) in a.outputs[0].iter().zip(&b.outputs[0]) {
            for (p, r) in x.iter().zip(y) {
                assert!((p - r).abs() < 2e-2, "{p} vs {r}");
            }
        }
    }

    #[test]
    fn blackwell_functional_decode_with_native_fp4() {
        let attn = AttentionConfig::gqa(8, 2, 32);
        let dec = BitDecoder::builder(GpuArch::rtx5090())
            .attention(attn)
            .scheme(QuantScheme::nvfp4())
            .build();
        assert_eq!(dec.path(), ArchPath::Sm100Fp4);
        let mut cache = dec.new_cache(1);
        let stored = fill_cache(&dec, &mut cache, 128 + 9);
        let q = vec![query(&dec, 0)];
        let out = dec.decode(&q, &cache).unwrap();
        // FP4 operands everywhere: coarse but must track the reference.
        for h in 0..attn.heads_q {
            let (k, v) = &stored[h / attn.group_factor()];
            let reference = reference_attention(&[q[0][h].clone()], k, v, attn.scale());
            for (got, want) in out.outputs[0][h].iter().zip(&reference[0]) {
                assert!((got - want).abs() < 0.25, "head {h}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn attend_head_partial_merges_to_attend_head_bitwise() {
        // The tensor-parallel all-reduce contract: finishing a merged set of
        // per-head partials reproduces the direct attend_head output bit
        // for bit — both for the single-partial (head-sharded) case and
        // for a genuine two-way token split of one head's KV.
        let dec = decoder(GpuArch::rtx4090(), QuantScheme::kc4());
        let mut cache = dec.new_cache(1);
        fill_cache(&dec, &mut cache, 128 * 2 + 19);
        let attn = *dec.attention();
        let q = query(&dec, 0);
        let grouped = query_transform(&q, &attn);
        for (kv, q_block) in grouped.iter().enumerate() {
            let blocks = cache.packed_blocks(kv);
            let (res_k, res_v) = cache.residual(kv);
            let (direct, ops) = dec.attend_head(q_block, blocks, res_k, res_v);

            // Single partial (the head-partitioned device case).
            let (partial, pops) = dec.attend_head_partial(q_block, blocks, res_k, res_v);
            assert_eq!(ops, pops);
            assert_eq!(OnlineSoftmax::merge(vec![partial]).finish(), direct);

            // Two-way split of the packed region plus a residual-only
            // partial: merge is the exact log-sum-exp combine, so the
            // values agree to f32 merge-order noise (NOT bitwise — the
            // summation tree differs); the exactness claim for serve rests
            // on the single-partial identity above.
            let empty = TokenMatrix::new(attn.head_dim);
            let (p1, _) = dec.attend_head_partial(q_block, &blocks[..1], &empty, &empty);
            let (p2, _) = dec.attend_head_partial(q_block, &blocks[1..], res_k, res_v);
            let merged = OnlineSoftmax::merge(vec![p1, p2]).finish();
            for (a, b) in merged.iter().flatten().zip(direct.iter().flatten()) {
                assert!((a - b).abs() < 1e-5, "head {kv}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn decode_accepts_codec_built_cache_via_append() {
        let dec = decoder(GpuArch::rtx4090(), QuantScheme::kc4());
        let mut cache = dec.new_cache(1);
        let codec = dec.codec();
        let d = dec.attention().head_dim;
        for t in 0..200usize {
            let k: Vec<f32> = (0..d).map(|c| ((t * d + c) as f32 * 0.3).sin()).collect();
            for head in 0..cache.heads() {
                cache.append_token(head, &k, &k, &codec).unwrap();
            }
        }
        assert_eq!(cache.residual_len(0), 200 - 128);
        let q = vec![query(&dec, 0)];
        let out = dec.decode(&q, &cache).unwrap();
        assert!(out.report.total_s > 0.0);
    }
}
