//! Micro-scaling 4-bit floating-point formats (Blackwell MXFP4 / NVFP4).
//!
//! Blackwell Tensor Cores natively multiply block-scaled FP4 operands
//! (paper §V-D(2)), eliminating explicit dequantization. Both formats share
//! the **E2M1** element (1 sign, 2 exponent, 1 mantissa bit — magnitudes
//! {0, 0.5, 1, 1.5, 2, 3, 4, 6}) and differ in the block scale:
//!
//! * **MXFP4** (OCP): blocks of 32 elements, power-of-two **E8M0** scale.
//! * **NVFP4**: blocks of 16 elements, **E4M3** (FP8) scale.

use crate::f16::F16;
use std::fmt;

/// Representable E2M1 magnitudes indexed by the low three code bits.
pub const E2M1_MAGNITUDES: [f32; 8] = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0];

/// Largest representable E2M1 magnitude.
pub const E2M1_MAX: f32 = 6.0;

/// A 4-bit E2M1 floating point value (FP4 element).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct E2M1(u8);

impl E2M1 {
    /// Constructs from the low 4 bits of `code`.
    pub const fn from_bits(code: u8) -> Self {
        E2M1(code & 0xF)
    }

    /// The 4-bit code.
    pub const fn to_bits(self) -> u8 {
        self.0
    }

    /// Decodes to `f32`.
    pub fn to_f32(self) -> f32 {
        let mag = E2M1_MAGNITUDES[(self.0 & 0x7) as usize];
        if self.0 & 0x8 != 0 {
            -mag
        } else {
            mag
        }
    }

    /// Encodes the nearest representable value (round-to-nearest, ties to
    /// the even code, saturating at ±6).
    pub fn from_f32(x: f32) -> Self {
        if x.is_nan() {
            // E2M1 has no NaN; hardware saturates.
            return E2M1(0x7);
        }
        let sign = if x.is_sign_negative() { 0x8u8 } else { 0 };
        let a = x.abs().min(E2M1_MAX);
        let mut best = 0usize;
        let mut best_err = f32::INFINITY;
        for (i, &m) in E2M1_MAGNITUDES.iter().enumerate() {
            let err = (a - m).abs();
            // Ties resolve toward the even code (RNE on the FP4 grid).
            if err < best_err - 1e-12 || ((err - best_err).abs() <= 1e-12 && i % 2 == 0) {
                best_err = err;
                best = i;
            }
        }
        E2M1(sign | best as u8)
    }
}

impl fmt::Display for E2M1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// An 8-bit power-of-two block scale (OCP E8M0): `2^(e - 127)`, `e = 255`
/// is NaN.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct E8M0(u8);

impl E8M0 {
    /// NaN encoding.
    pub const NAN: E8M0 = E8M0(255);

    /// Constructs from the raw byte.
    pub const fn from_bits(bits: u8) -> Self {
        E8M0(bits)
    }

    /// The raw byte.
    pub const fn to_bits(self) -> u8 {
        self.0
    }

    /// Builds the scale `2^exp`, clamping `exp` to the representable range.
    pub fn from_exponent(exp: i32) -> Self {
        E8M0((exp + 127).clamp(0, 254) as u8)
    }

    /// Decodes to `f32` (NaN for code 255).
    pub fn to_f32(self) -> f32 {
        if self.0 == 255 {
            f32::NAN
        } else {
            (2.0f32).powi(self.0 as i32 - 127)
        }
    }
}

/// An 8-bit E4M3 float (FP8, bias 7, max 448, no infinities; `S.1111.111`
/// is NaN) used as the NVFP4 block scale.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct E4M3(u8);

impl E4M3 {
    /// Largest finite magnitude (448).
    pub const MAX: f32 = 448.0;

    /// Constructs from the raw byte.
    pub const fn from_bits(bits: u8) -> Self {
        E4M3(bits)
    }

    /// The raw byte.
    pub const fn to_bits(self) -> u8 {
        self.0
    }

    /// Decodes to `f32`.
    pub fn to_f32(self) -> f32 {
        let sign = if self.0 & 0x80 != 0 { -1.0f32 } else { 1.0 };
        let exp = ((self.0 >> 3) & 0xF) as i32;
        let man = (self.0 & 0x7) as i32;
        if exp == 0xF && man == 0x7 {
            return f32::NAN;
        }
        if exp == 0 {
            sign * (man as f32 / 8.0) * (2.0f32).powi(-6)
        } else {
            sign * (1.0 + man as f32 / 8.0) * (2.0f32).powi(exp - 7)
        }
    }

    /// Encodes with round-to-nearest-even, saturating at ±448.
    pub fn from_f32(x: f32) -> Self {
        if x.is_nan() {
            return E4M3(0x7F);
        }
        let sign = if x.is_sign_negative() { 0x80u8 } else { 0 };
        let a = x.abs();
        if a >= Self::MAX {
            return E4M3(sign | 0x7E); // saturate to 448
        }
        if a < (2.0f32).powi(-6) / 16.0 {
            return E4M3(sign); // flush to zero below half the min subnormal
        }
        // Search the code space: only 127 finite magnitudes, exactness wins
        // over cleverness for a reference implementation.
        let mut best = 0u8;
        let mut best_err = f32::INFINITY;
        for code in 0u8..0x7F {
            let v = E4M3(code).to_f32();
            let err = (a - v).abs();
            if err < best_err - 1e-12
                || ((err - best_err).abs() <= 1e-12 && code.trailing_zeros() >= 1)
            {
                best_err = err;
                best = code;
            }
        }
        E4M3(sign | best)
    }
}

/// Which micro-scaling FP4 flavour a block uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fp4Kind {
    /// OCP MXFP4: block 32, E8M0 scale.
    Mx,
    /// NVIDIA NVFP4: block 16, E4M3 scale.
    Nv,
}

impl Fp4Kind {
    /// Elements sharing one block scale.
    pub const fn block_size(self) -> usize {
        match self {
            Fp4Kind::Mx => 32,
            Fp4Kind::Nv => 16,
        }
    }

    /// Bytes of scale metadata per block.
    pub const fn scale_bytes(self) -> usize {
        1
    }
}

impl fmt::Display for Fp4Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fp4Kind::Mx => write!(f, "mxfp4"),
            Fp4Kind::Nv => write!(f, "nvfp4"),
        }
    }
}

/// The block scale accompanying a quantized FP4 block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BlockScale {
    /// Power-of-two E8M0 scale (MXFP4).
    Mx(E8M0),
    /// FP8 E4M3 scale (NVFP4).
    Nv(E4M3),
}

impl BlockScale {
    /// The scale value.
    pub fn to_f32(self) -> f32 {
        match self {
            BlockScale::Mx(s) => s.to_f32(),
            BlockScale::Nv(s) => s.to_f32(),
        }
    }
}

/// One quantized micro-scaling block: codes plus the shared scale.
#[derive(Clone, Debug, PartialEq)]
pub struct Fp4Block {
    /// Quantized elements (length = `kind.block_size()` or shorter for a
    /// tail block).
    pub codes: Vec<E2M1>,
    /// The shared block scale.
    pub scale: BlockScale,
}

impl Fp4Block {
    /// Dequantizes the block.
    pub fn dequantize(&self) -> Vec<F16> {
        let s = self.scale.to_f32();
        self.codes
            .iter()
            .map(|c| F16::from_f32(c.to_f32() * s))
            .collect()
    }
}

/// Quantizes one block of values.
///
/// * MXFP4 picks `scale = 2^(floor(log2(amax)) - 2)` per the OCP spec (the
///   element `emax` of E2M1 is 2).
/// * NVFP4 picks `scale = amax / 6` rounded to E4M3.
///
/// # Panics
///
/// Panics if `values` is empty or longer than the block size.
pub fn quantize_fp4_block(values: &[f32], kind: Fp4Kind) -> Fp4Block {
    assert!(!values.is_empty(), "empty FP4 block");
    assert!(
        values.len() <= kind.block_size(),
        "block of {} exceeds {kind} block size {}",
        values.len(),
        kind.block_size()
    );
    let amax = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let (scale, s) = match kind {
        Fp4Kind::Mx => {
            let exp = if amax > 0.0 {
                amax.log2().floor() as i32 - 2
            } else {
                -127
            };
            let e = E8M0::from_exponent(exp);
            (BlockScale::Mx(e), e.to_f32())
        }
        Fp4Kind::Nv => {
            let raw = if amax > 0.0 { amax / E2M1_MAX } else { 0.0 };
            let e = E4M3::from_f32(raw.max(1.0 / 448.0));
            (BlockScale::Nv(e), e.to_f32())
        }
    };
    let inv = if s > 0.0 { 1.0 / s } else { 0.0 };
    let codes = values.iter().map(|&v| E2M1::from_f32(v * inv)).collect();
    Fp4Block { codes, scale }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2m1_decode_table() {
        assert_eq!(E2M1::from_bits(0).to_f32(), 0.0);
        assert_eq!(E2M1::from_bits(1).to_f32(), 0.5);
        assert_eq!(E2M1::from_bits(7).to_f32(), 6.0);
        assert_eq!(E2M1::from_bits(0xF).to_f32(), -6.0);
        assert_eq!(E2M1::from_bits(0x9).to_f32(), -0.5);
    }

    #[test]
    fn e2m1_encode_round_trips_representables() {
        for code in 0u8..16 {
            let v = E2M1::from_bits(code).to_f32();
            if v == 0.0 {
                continue; // -0 folds onto +0
            }
            assert_eq!(E2M1::from_f32(v).to_f32(), v);
        }
    }

    #[test]
    fn e2m1_saturates() {
        assert_eq!(E2M1::from_f32(100.0).to_f32(), 6.0);
        assert_eq!(E2M1::from_f32(-100.0).to_f32(), -6.0);
    }

    #[test]
    fn e2m1_rounds_to_nearest() {
        assert_eq!(E2M1::from_f32(0.2).to_f32(), 0.0);
        assert_eq!(E2M1::from_f32(0.3).to_f32(), 0.5);
        assert_eq!(E2M1::from_f32(2.4), E2M1::from_f32(2.0));
        assert_eq!(E2M1::from_f32(2.6), E2M1::from_f32(3.0));
        // Tie at 2.5 resolves to the even code (2.0 has code 4).
        assert_eq!(E2M1::from_f32(2.5).to_f32(), 2.0);
    }

    #[test]
    fn e8m0_powers_of_two() {
        assert_eq!(E8M0::from_exponent(0).to_f32(), 1.0);
        assert_eq!(E8M0::from_exponent(3).to_f32(), 8.0);
        assert_eq!(E8M0::from_exponent(-2).to_f32(), 0.25);
        assert!(E8M0::NAN.to_f32().is_nan());
    }

    #[test]
    fn e4m3_known_values() {
        assert_eq!(E4M3::from_f32(1.0).to_f32(), 1.0);
        assert_eq!(E4M3::from_f32(448.0).to_f32(), 448.0);
        assert_eq!(E4M3::from_f32(1000.0).to_f32(), 448.0);
        assert_eq!(E4M3::from_f32(-0.5).to_f32(), -0.5);
        assert!(E4M3::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn e4m3_round_trips_all_finite_codes() {
        for code in 0u8..=0xFF {
            let v = E4M3::from_bits(code).to_f32();
            if v.is_nan() || v == 0.0 {
                continue;
            }
            assert_eq!(E4M3::from_f32(v).to_f32(), v, "code {code:#x}");
        }
    }

    #[test]
    fn mx_block_error_bounded() {
        let values: Vec<f32> = (0..32).map(|i| ((i as f32) * 0.7).sin() * 3.0).collect();
        let block = quantize_fp4_block(&values, Fp4Kind::Mx);
        let deq = block.dequantize();
        let s = block.scale.to_f32();
        // E2M1 relative step near the top of a binade is 2/6; absolute error
        // within a block is at most half the largest step = s * 1.0.
        for (d, &v) in deq.iter().zip(&values) {
            assert!((d.to_f32() - v).abs() <= s * 1.01, "{} vs {v}", d.to_f32());
        }
    }

    #[test]
    fn nv_block_uses_finer_scale() {
        // NVFP4's E4M3 scale tracks amax more tightly than E8M0's
        // power-of-two, so for most blocks its error is no worse.
        let values: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) * 0.33).collect();
        let mx = quantize_fp4_block(&values, Fp4Kind::Mx);
        let nv = quantize_fp4_block(&values, Fp4Kind::Nv);
        let err = |b: &Fp4Block| -> f32 {
            b.dequantize()
                .iter()
                .zip(&values)
                .map(|(d, &v)| (d.to_f32() - v).powi(2))
                .sum()
        };
        assert!(err(&nv) <= err(&mx) * 1.05);
    }

    #[test]
    fn zero_block_is_exact() {
        let block = quantize_fp4_block(&[0.0; 32], Fp4Kind::Mx);
        assert!(block.dequantize().iter().all(|v| v.to_f32() == 0.0));
    }
}
