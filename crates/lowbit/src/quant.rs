//! Asymmetric affine integer quantization.
//!
//! KV-cache quantization algorithms supported by BitDecoding (KIVI, KVQuant,
//! QServe-style) all use asymmetric min/max affine quantization within a
//! group: `q = round((x - min) / scale)`, `x ≈ q * scale + min`, with the
//! scale and zero-point stored per group as a [`crate::Half2`].
//!
//! Groups are formed either **channel-wise** (one group per hidden channel,
//! reducing over tokens — used for Keys, whose outliers are channel
//! structured) or **tensor-wise** (one group per token over a span of hidden
//! channels — used for Values). Group shaping lives in `bd-kvcache`; this
//! module provides the scalar machinery.

use crate::f16::F16;
use crate::half2::Half2;
use std::fmt;

/// Integer bit-width of a quantized KV cache.
///
/// BitDecoding evaluates 4-bit and 2-bit caches (paper §VI); the packing
/// word is 16 bits, giving packing ratios `R = 16/β` of 4 and 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BitWidth {
    /// 4-bit codes, 4 per 16-bit word.
    B4,
    /// 2-bit codes, 8 per 16-bit word.
    B2,
}

impl BitWidth {
    /// Number of bits per code (β).
    pub const fn bits(self) -> u32 {
        match self {
            BitWidth::B4 => 4,
            BitWidth::B2 => 2,
        }
    }

    /// Number of quantization levels, `2^β`.
    pub const fn levels(self) -> u32 {
        1 << self.bits()
    }

    /// Maximum code value, `2^β - 1`.
    pub const fn max_code(self) -> u8 {
        (self.levels() - 1) as u8
    }

    /// Packing ratio `R = ω / β` for the 16-bit packing word (paper Eq. 1).
    pub const fn packing_ratio(self) -> usize {
        (16 / self.bits()) as usize
    }

    /// Bytes of packed payload required per quantized element.
    pub const fn bytes_per_element(self) -> f64 {
        self.bits() as f64 / 8.0
    }
}

impl fmt::Display for BitWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INT{}", self.bits())
    }
}

/// Per-group affine quantization parameters.
///
/// `dequant(q) = q * scale + zero` where `zero` is the group minimum.
/// Stored on device as a `half2` (scale in the low half-word).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QuantParams {
    /// Step between adjacent codes.
    pub scale: F16,
    /// Value of code zero (the group minimum).
    pub zero: F16,
}

impl QuantParams {
    /// Derives parameters from a group's min/max statistics.
    ///
    /// Degenerate groups (`max == min`) quantize losslessly to code 0 with a
    /// unit scale so that dequantization stays finite.
    pub fn from_min_max(min: f32, max: f32, width: BitWidth) -> Self {
        let range = max - min;
        // NaN and ±inf ranges also take the degenerate path.
        if !range.is_finite() || range <= 0.0 {
            return QuantParams {
                scale: F16::ONE,
                zero: F16::from_f32(min),
            };
        }
        let scale = range / (width.levels() - 1) as f32;
        QuantParams {
            scale: F16::from_f32(scale),
            zero: F16::from_f32(min),
        }
    }

    /// Packs `(scale, zero)` into the on-device `half2` layout.
    pub fn to_half2(self) -> Half2 {
        Half2::new(self.scale, self.zero)
    }

    /// Unpacks from the on-device `half2` layout.
    pub fn from_half2(h: Half2) -> Self {
        QuantParams {
            scale: h.lo(),
            zero: h.hi(),
        }
    }

    /// Quantizes one value to its integer code (round-to-nearest, clamped).
    pub fn quantize(&self, x: f32, width: BitWidth) -> u8 {
        let s = self.scale.to_f32();
        let z = self.zero.to_f32();
        if s == 0.0 {
            return 0;
        }
        let q = ((x - z) / s).round();
        q.clamp(0.0, width.max_code() as f32) as u8
    }

    /// Dequantizes one code back to FP16 (the slow `static_cast` + FMA path;
    /// the fast path lives in [`crate::fastpath`]).
    pub fn dequantize(&self, code: u8) -> F16 {
        F16::from_f32(code as f32).mul_add(self.scale, self.zero)
    }
}

/// Running min/max statistics for a quantization group.
///
/// On device these are produced by thread-local reductions followed by
/// `__shfl_xor_sync` butterfly reduction across the warp (paper §V-B(2)).
#[derive(Clone, Copy, Debug)]
pub struct MinMax {
    /// Smallest value seen.
    pub min: f32,
    /// Largest value seen.
    pub max: f32,
}

impl Default for MinMax {
    fn default() -> Self {
        MinMax::EMPTY
    }
}

impl MinMax {
    /// The identity element for the min/max reduction.
    pub const EMPTY: MinMax = MinMax {
        min: f32::INFINITY,
        max: f32::NEG_INFINITY,
    };

    /// Folds one observation into the statistics.
    pub fn update(&mut self, x: f32) {
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Combines two partial reductions (the butterfly-exchange step).
    pub fn merge(self, other: MinMax) -> MinMax {
        MinMax {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Computes the statistics of a slice.
    pub fn of(values: &[f32]) -> MinMax {
        let mut mm = MinMax::EMPTY;
        for &v in values {
            mm.update(v);
        }
        mm
    }

    /// Converts to quantization parameters.
    pub fn params(self, width: BitWidth) -> QuantParams {
        QuantParams::from_min_max(self.min, self.max, width)
    }
}

/// Quantizes a group of values, returning codes and the parameters used.
///
/// # Examples
///
/// ```
/// use bd_lowbit::{quantize_group, BitWidth};
///
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let (codes, params) = quantize_group(&xs, BitWidth::B4);
/// for (c, x) in codes.iter().zip(&xs) {
///     assert!((params.dequantize(*c).to_f32() - x).abs() <= params.scale.to_f32());
/// }
/// ```
pub fn quantize_group(values: &[f32], width: BitWidth) -> (Vec<u8>, QuantParams) {
    let params = MinMax::of(values).params(width);
    let codes = values.iter().map(|&x| params.quantize(x, width)).collect();
    (codes, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwidth_constants() {
        assert_eq!(BitWidth::B4.levels(), 16);
        assert_eq!(BitWidth::B2.levels(), 4);
        assert_eq!(BitWidth::B4.packing_ratio(), 4);
        assert_eq!(BitWidth::B2.packing_ratio(), 8);
        assert_eq!(BitWidth::B4.max_code(), 15);
        assert_eq!(BitWidth::B2.max_code(), 3);
        assert_eq!(BitWidth::B4.bytes_per_element(), 0.5);
    }

    #[test]
    fn quantize_endpoints_exactly() {
        let p = QuantParams::from_min_max(-2.0, 6.0, BitWidth::B4);
        assert_eq!(p.quantize(-2.0, BitWidth::B4), 0);
        assert_eq!(p.quantize(6.0, BitWidth::B4), 15);
        assert!((p.dequantize(0).to_f32() - -2.0).abs() < 1e-2);
        assert!((p.dequantize(15).to_f32() - 6.0).abs() < 2e-2);
    }

    #[test]
    fn quantize_clamps_out_of_range() {
        let p = QuantParams::from_min_max(0.0, 1.0, BitWidth::B2);
        assert_eq!(p.quantize(-5.0, BitWidth::B2), 0);
        assert_eq!(p.quantize(5.0, BitWidth::B2), 3);
    }

    #[test]
    fn degenerate_group_is_lossless() {
        let (codes, p) = quantize_group(&[3.5, 3.5, 3.5], BitWidth::B2);
        assert!(codes.iter().all(|&c| c == 0));
        for &c in &codes {
            assert!((p.dequantize(c).to_f32() - 3.5).abs() < 1e-2);
        }
    }

    #[test]
    fn minmax_merge_is_commutative() {
        let a = MinMax::of(&[1.0, 2.0]);
        let b = MinMax::of(&[-1.0, 0.5]);
        let m1 = a.merge(b);
        let m2 = b.merge(a);
        assert_eq!(m1.min, m2.min);
        assert_eq!(m1.max, m2.max);
        assert_eq!(m1.min, -1.0);
        assert_eq!(m1.max, 2.0);
    }

    #[test]
    fn half2_round_trip_of_params() {
        let p = QuantParams::from_min_max(-1.0, 1.0, BitWidth::B4);
        let q = QuantParams::from_half2(p.to_half2());
        assert_eq!(p, q);
    }

    #[test]
    fn quantization_error_bounded_by_half_scale() {
        let xs: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin() * 4.0).collect();
        for width in [BitWidth::B4, BitWidth::B2] {
            let (codes, p) = quantize_group(&xs, width);
            let tol = p.scale.to_f32() * 0.5 + 0.02; // + f16 rounding slack
            for (&c, &x) in codes.iter().zip(&xs) {
                assert!(
                    (p.dequantize(c).to_f32() - x).abs() <= tol,
                    "width={width} x={x} err too large"
                );
            }
        }
    }
}
