//! Bit-packing of quantization codes into 16-bit words and 32-bit registers.
//!
//! BitDecoding packs per-thread codes into INT16 storage words (ω = 16,
//! packing ratio `R = ω/β` — paper Eq. 1) and, for dequantization, views
//! register pairs as INT32 and extracts values in the interleaved
//! **75316420** pattern so that the `lop3`-based conversion emits halves that
//! already match the Tensor Core fragment order (paper §IV-A(3)).
//!
//! Reading a 32-bit register's nibbles from most- to least-significant, the
//! 4-bit fast-dequant layout holds logical elements `7 5 3 1 6 4 2 0` — i.e.
//! physical nibble `p` holds logical element `FAST_PERM_INT4[p]`. Extraction
//! step `i` masks physical positions `i` and `i + 4` (one `lop3` producing a
//! `half2`), yielding logical elements `2i` and `2i + 1` in order.

use crate::quant::BitWidth;

/// Physical-position → logical-element permutation for 4-bit fast dequant
/// (8 nibbles per 32-bit register).
pub const FAST_PERM_INT4: [usize; 8] = [0, 2, 4, 6, 1, 3, 5, 7];

/// Physical-position → logical-element permutation for 2-bit fast dequant
/// (16 crumbs per 32-bit register).
pub const FAST_PERM_INT2: [usize; 16] = [0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15];

/// Order in which codes are laid out inside a packed register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PackOrder {
    /// Sequential: logical element `i` in physical position `i`.
    ///
    /// This is what a naive `static_cast` dequantization loop expects.
    Linear,
    /// The interleaved 75316420 layout consumed by the `lop3` fast path.
    #[default]
    FastDequant,
}

/// Number of codes held by one 32-bit register at the given width.
pub const fn codes_per_u32(width: BitWidth) -> usize {
    (32 / width.bits()) as usize
}

/// Number of codes held by one 16-bit storage word.
pub const fn codes_per_u16(width: BitWidth) -> usize {
    width.packing_ratio()
}

fn perm(width: BitWidth, order: PackOrder, physical: usize) -> usize {
    match (order, width) {
        (PackOrder::Linear, _) => physical,
        (PackOrder::FastDequant, BitWidth::B4) => FAST_PERM_INT4[physical],
        (PackOrder::FastDequant, BitWidth::B2) => FAST_PERM_INT2[physical],
    }
}

/// Packs `codes` (logical order) into a 32-bit register.
///
/// # Panics
///
/// Panics if `codes.len() != codes_per_u32(width)` or any code exceeds the
/// width's maximum.
pub fn pack_u32(codes: &[u8], width: BitWidth, order: PackOrder) -> u32 {
    let n = codes_per_u32(width);
    assert_eq!(codes.len(), n, "expected {n} codes for {width}");
    let bits = width.bits();
    let mask = width.max_code() as u32;
    let mut word = 0u32;
    for (physical, _) in codes.iter().enumerate() {
        let logical = perm(width, order, physical);
        let c = codes[logical] as u32;
        assert!(c <= mask, "code {c} out of range for {width}");
        word |= c << (physical as u32 * bits);
    }
    word
}

/// Unpacks a 32-bit register into codes in logical order.
pub fn unpack_u32(word: u32, width: BitWidth, order: PackOrder) -> Vec<u8> {
    let n = codes_per_u32(width);
    let mut out = vec![0u8; n];
    unpack_u32_into(word, width, order, &mut out);
    out
}

/// Allocation-free form of [`unpack_u32`]: writes the register's codes in
/// logical order into `out[..codes_per_u32(width)]`. This is the hot-loop
/// primitive the fused decode kernel streams registers through.
///
/// # Panics
///
/// Panics if `out` is shorter than `codes_per_u32(width)`.
#[inline]
pub fn unpack_u32_into(word: u32, width: BitWidth, order: PackOrder, out: &mut [u8]) {
    let n = codes_per_u32(width);
    let bits = width.bits();
    let mask = width.max_code() as u32;
    assert!(out.len() >= n, "output buffer too small");
    for physical in 0..n {
        let logical = perm(width, order, physical);
        out[logical] = ((word >> (physical as u32 * bits)) & mask) as u8;
    }
}

/// Packs `codes` (logical order) into a 16-bit storage word (linear layout).
///
/// Storage words always use the linear layout; the interleave is applied at
/// register granularity when two words are fused into a 32-bit register.
///
/// # Panics
///
/// Panics if `codes.len() != width.packing_ratio()`.
pub fn pack_u16(codes: &[u8], width: BitWidth) -> u16 {
    let n = codes_per_u16(width);
    assert_eq!(codes.len(), n, "expected {n} codes for {width}");
    let bits = width.bits();
    let mut word = 0u16;
    for (i, &c) in codes.iter().enumerate() {
        assert!(c <= width.max_code(), "code {c} out of range for {width}");
        word |= (c as u16) << (i as u32 * bits);
    }
    word
}

/// Unpacks a 16-bit storage word (linear layout).
pub fn unpack_u16(word: u16, width: BitWidth) -> Vec<u8> {
    let n = codes_per_u16(width);
    let bits = width.bits();
    let mask = width.max_code() as u16;
    (0..n)
        .map(|i| ((word >> (i as u32 * bits)) & mask) as u8)
        .collect()
}

/// Fuses two 16-bit storage words into the 32-bit register view used by the
/// fast dequantization path (`lo` occupies the low half).
#[inline]
pub const fn fuse_words(lo: u16, hi: u16) -> u32 {
    (lo as u32) | ((hi as u32) << 16)
}

/// Splits a 32-bit register back into two 16-bit storage words.
#[inline]
pub const fn split_register(reg: u32) -> (u16, u16) {
    (reg as u16, (reg >> 16) as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perms_are_bijective() {
        let mut seen4 = [false; 8];
        for &p in &FAST_PERM_INT4 {
            assert!(!seen4[p]);
            seen4[p] = true;
        }
        let mut seen2 = [false; 16];
        for &p in &FAST_PERM_INT2 {
            assert!(!seen2[p]);
            seen2[p] = true;
        }
    }

    #[test]
    fn msb_to_lsb_reads_75316420() {
        // Pack logical elements 0..8 and read nibbles from most significant
        // to least significant: must spell 7,5,3,1,6,4,2,0.
        let codes: Vec<u8> = (0..8).collect();
        let w = pack_u32(&codes, BitWidth::B4, PackOrder::FastDequant);
        let nibbles: Vec<u8> = (0..8).rev().map(|i| ((w >> (4 * i)) & 0xF) as u8).collect();
        assert_eq!(nibbles, vec![7, 5, 3, 1, 6, 4, 2, 0]);
    }

    #[test]
    fn pack_unpack_round_trip_all_orders() {
        for width in [BitWidth::B4, BitWidth::B2] {
            let n = codes_per_u32(width);
            let codes: Vec<u8> = (0..n)
                .map(|i| (i as u8 * 3 + 1) & width.max_code())
                .collect();
            for order in [PackOrder::Linear, PackOrder::FastDequant] {
                let w = pack_u32(&codes, width, order);
                assert_eq!(unpack_u32(w, width, order), codes, "{width} {order:?}");
            }
        }
    }

    #[test]
    fn linear_u16_round_trip() {
        for width in [BitWidth::B4, BitWidth::B2] {
            let n = codes_per_u16(width);
            let codes: Vec<u8> = (0..n)
                .map(|i| (i as u8 * 5 + 2) & width.max_code())
                .collect();
            let w = pack_u16(&codes, width);
            assert_eq!(unpack_u16(w, width), codes);
        }
    }

    #[test]
    fn fuse_split_round_trip() {
        let (lo, hi) = (0xBEEF, 0xDEAD);
        assert_eq!(split_register(fuse_words(lo, hi)), (lo, hi));
    }

    #[test]
    fn fast_extraction_masks_yield_sequential_pairs() {
        // The property the layout exists for: masking physical positions
        // (i, i+4) after shifting by 4*i yields logical elements (2i, 2i+1).
        let codes: Vec<u8> = vec![10, 11, 12, 13, 14, 15, 1, 2];
        let w = pack_u32(&codes, BitWidth::B4, PackOrder::FastDequant);
        for i in 0..4 {
            let shifted = w >> (4 * i);
            let lo = (shifted & 0xF) as u8;
            let hi = ((shifted >> 16) & 0xF) as u8;
            assert_eq!((lo, hi), (codes[2 * i], codes[2 * i + 1]));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_code_out_of_range() {
        pack_u16(&[4, 0, 0, 0, 0, 0, 0, 0], BitWidth::B2);
    }
}
