//! The packed `half2` pair used for quantization metadata.
//!
//! BitDecoding stores the per-group quantization parameters (scale and
//! zero-point) as a single `half2` so that one 32-bit load fetches both and a
//! single `HFMA2` applies them (paper §V-B: "both the scale and zero-point
//! are stored in a compact `half2` format").

use crate::f16::F16;
use std::fmt;

/// Two packed binary16 values occupying one 32-bit word.
///
/// # Examples
///
/// ```
/// use bd_lowbit::{F16, Half2};
///
/// let h2 = Half2::new(F16::from_f32(0.5), F16::from_f32(-3.0));
/// assert_eq!(h2.lo().to_f32(), 0.5);
/// assert_eq!(h2.hi().to_f32(), -3.0);
/// assert_eq!(Half2::from_bits(h2.to_bits()), h2);
/// ```
#[derive(Clone, Copy, Default, PartialEq)]
pub struct Half2 {
    lo: F16,
    hi: F16,
}

impl Half2 {
    /// Packs two halves; `lo` occupies the low 16 bits of the word.
    #[inline]
    pub const fn new(lo: F16, hi: F16) -> Self {
        Half2 { lo, hi }
    }

    /// The low element.
    #[inline]
    pub const fn lo(self) -> F16 {
        self.lo
    }

    /// The high element.
    #[inline]
    pub const fn hi(self) -> F16 {
        self.hi
    }

    /// The packed 32-bit representation (`hi` in the upper half-word).
    #[inline]
    pub fn to_bits(self) -> u32 {
        (self.lo.to_bits() as u32) | ((self.hi.to_bits() as u32) << 16)
    }

    /// Reconstructs from the packed 32-bit representation.
    #[inline]
    pub fn from_bits(bits: u32) -> Self {
        Half2 {
            lo: F16::from_bits(bits as u16),
            hi: F16::from_bits((bits >> 16) as u16),
        }
    }

    /// Element-wise fused multiply-add: `self * a + b`, the `HFMA2`
    /// instruction applied during dequantization.
    pub fn mul_add(self, a: Half2, b: Half2) -> Self {
        Half2 {
            lo: self.lo.mul_add(a.lo, b.lo),
            hi: self.hi.mul_add(a.hi, b.hi),
        }
    }
}

impl fmt::Debug for Half2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "half2({}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips() {
        let h = Half2::new(F16::from_f32(1.5), F16::from_f32(-2.25));
        assert_eq!(Half2::from_bits(h.to_bits()), h);
        assert_eq!(h.to_bits() & 0xFFFF, 0x3E00);
    }

    #[test]
    fn hfma2_is_elementwise() {
        let x = Half2::new(F16::from_f32(2.0), F16::from_f32(3.0));
        let a = Half2::new(F16::from_f32(0.5), F16::from_f32(2.0));
        let b = Half2::new(F16::from_f32(1.0), F16::from_f32(-1.0));
        let y = x.mul_add(a, b);
        assert_eq!(y.lo().to_f32(), 2.0);
        assert_eq!(y.hi().to_f32(), 5.0);
    }
}
