//! The `lop3`-based fast dequantization path (paper §IV-A(3)).
//!
//! A naive dequantization casts each low-bit code to FP16 with
//! `static_cast` (`cvt` instructions), which is slow [Kim et al., 2022].
//! BitDecoding instead views packed registers as INT32 and, exploiting the
//! 75316420 interleaved layout, converts **two values per `lop3`**: masking a
//! nibble into the mantissa of the FP16 bias `1024.0` (`0x6400`) makes the
//! bit pattern `0x6400 | c` equal to `1024 + c`, so one fused multiply-add
//! against a rescaled `half2` recovers `c * scale + zero`.
//!
//! This module implements the conversion bit-exactly on the software
//! [`F16`]; instruction counts are reported so the GPU cost model can charge
//! CUDA-core time.

use crate::f16::F16;
use crate::half2::Half2;
use crate::pack::codes_per_u32;
#[cfg(doc)]
use crate::pack::PackOrder;
use crate::quant::{BitWidth, QuantParams};

/// The FP16 "magic" bias: `0x6400 == 1024.0`, whose low mantissa bits are
/// free to hold a 4-bit (or 2-bit) code.
pub const MAGIC_BIAS_BITS: u16 = 0x6400;
/// `MAGIC_BIAS_BITS` as a value.
pub const MAGIC_BIAS: f32 = 1024.0;

/// Instruction counts incurred by one fast-dequant register conversion,
/// consumed by the GPU cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FastDequantOps {
    /// `lop3.b32` instructions (mask + OR in a single LUT op).
    pub lop3: u32,
    /// Register shifts.
    pub shifts: u32,
    /// `HFMA2` instructions (two halves each).
    pub hfma2: u32,
}

impl FastDequantOps {
    /// Total CUDA-core instruction slots used.
    pub fn total(self) -> u32 {
        self.lop3 + self.shifts + self.hfma2
    }
}

impl std::ops::Add for FastDequantOps {
    type Output = FastDequantOps;
    fn add(self, rhs: FastDequantOps) -> FastDequantOps {
        FastDequantOps {
            lop3: self.lop3 + rhs.lop3,
            shifts: self.shifts + rhs.shifts,
            hfma2: self.hfma2 + rhs.hfma2,
        }
    }
}

impl std::ops::AddAssign for FastDequantOps {
    fn add_assign(&mut self, rhs: FastDequantOps) {
        *self = *self + rhs;
    }
}

/// Instruction counts one 32-bit register costs on the fast path — the
/// per-register model [`dequant_register`] charges, exposed so fused
/// decode kernels can account dequantization work without materializing
/// intermediate values.
pub fn register_ops(width: BitWidth) -> FastDequantOps {
    let steps = (codes_per_u32(width) / 2) as u32;
    FastDequantOps {
        lop3: steps,
        shifts: steps.saturating_sub(1),
        hfma2: steps,
    }
}

/// Precomputed `half2` multiplier/bias pair for the fused scale step.
///
/// `x = (1024 + c) * scale + (zero - 1024 * scale)`.
#[derive(Clone, Copy, Debug)]
pub struct FusedScale {
    /// `(scale, scale)` broadcast.
    pub scale2: Half2,
    /// `(zero - 1024*scale, ...)` broadcast; rounding to f16 here is the
    /// hardware-faithful behaviour (the bias lives in a half register).
    pub bias2: Half2,
}

impl FusedScale {
    /// Builds the fused constants from plain quantization parameters.
    pub fn new(params: QuantParams) -> Self {
        let s = params.scale;
        let bias = F16::from_f32(params.zero.to_f32() - MAGIC_BIAS * s.to_f32());
        FusedScale {
            scale2: Half2::new(s, s),
            bias2: Half2::new(bias, bias),
        }
    }
}

/// Dequantizes one 32-bit register packed in [`PackOrder::FastDequant`]
/// layout, returning values in logical order plus the instruction count.
///
/// Works for both widths: INT4 yields 8 halves, INT2 yields 16.
///
/// # Examples
///
/// ```
/// use bd_lowbit::{pack_u32, BitWidth, PackOrder, QuantParams, fastpath};
///
/// let params = QuantParams::from_min_max(-1.0, 2.0, BitWidth::B4);
/// let codes: Vec<u8> = (0..8).collect();
/// let reg = pack_u32(&codes, BitWidth::B4, PackOrder::FastDequant);
/// let (vals, _ops) = fastpath::dequant_register(reg, BitWidth::B4, params);
/// for (v, &c) in vals.iter().zip(&codes) {
///     let reference = params.dequantize(c).to_f32();
///     assert!((v.to_f32() - reference).abs() <= params.scale.to_f32() * 0.01 + 1e-3);
/// }
/// ```
pub fn dequant_register(
    reg: u32,
    width: BitWidth,
    params: QuantParams,
) -> (Vec<F16>, FastDequantOps) {
    let fused = FusedScale::new(params);
    let mut ops = FastDequantOps::default();
    let n = codes_per_u32(width);
    let mut out = vec![F16::ZERO; n];

    let (elem_bits, mask) = match width {
        BitWidth::B4 => (4u32, 0x000F_000Fu32),
        BitWidth::B2 => (2u32, 0x0003_0003u32),
    };
    let steps = n / 2; // one half2 per step

    for i in 0..steps {
        let shifted = reg >> (elem_bits * i as u32);
        if i > 0 {
            ops.shifts += 1;
        }
        // One lop3: (shifted & mask) | 0x6400_6400 — extracts physical
        // positions (i, i + steps) straight into two magic-biased halves.
        let extracted = (shifted & mask) | 0x6400_6400;
        ops.lop3 += 1;

        let raw = Half2::from_bits(extracted);
        let scaled = raw.mul_add(fused.scale2, fused.bias2);
        ops.hfma2 += 1;

        // Physical (i, i + steps) hold logical (2i, 2i + 1) by construction
        // of the 75316420 layout.
        out[2 * i] = scaled.lo();
        out[2 * i + 1] = scaled.hi();
    }
    (out, ops)
}

/// Instruction counts for the *slow* `static_cast` path over the same
/// register, for the cost model's comparison (Fig. 3 discussion / Table II).
///
/// Each element needs: shift+mask (1), `cvt.rn.f16.s32` (modelled at the
/// documented quarter-rate, counted as 4 slots), and an `HFMA` (1).
pub fn slow_path_ops(width: BitWidth) -> u32 {
    let n = codes_per_u32(width) as u32;
    n * (1 + 4 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{pack_u32, PackOrder};

    fn check_matches_reference(width: BitWidth, params: QuantParams) {
        let n = codes_per_u32(width);
        let codes: Vec<u8> = (0..n)
            .map(|i| (i as u8 * 7 + 3) & width.max_code())
            .collect();
        let reg = pack_u32(&codes, width, PackOrder::FastDequant);
        let (vals, ops) = dequant_register(reg, width, params);
        assert_eq!(vals.len(), n);
        // The fused bias is rounded to f16, so allow a 1-ulp-of-result slack.
        let tol = params.scale.to_f32() * 0.01 + 2e-3 * params.zero.to_f32().abs().max(1.0);
        for (v, &c) in vals.iter().zip(&codes) {
            let reference = params.dequantize(c).to_f32();
            assert!(
                (v.to_f32() - reference).abs() <= tol,
                "{width}: code {c}: fast {} vs ref {reference}",
                v.to_f32()
            );
        }
        // Fast path must use far fewer instructions than the slow path.
        assert!(ops.total() < slow_path_ops(width));
    }

    #[test]
    fn int4_matches_reference() {
        check_matches_reference(
            BitWidth::B4,
            QuantParams::from_min_max(-1.5, 2.5, BitWidth::B4),
        );
    }

    #[test]
    fn int2_matches_reference() {
        check_matches_reference(
            BitWidth::B2,
            QuantParams::from_min_max(-4.0, 4.0, BitWidth::B2),
        );
    }

    #[test]
    fn int4_with_exact_params_is_bit_exact() {
        // Power-of-two scale and zero make every step exact in f16, so fast
        // and slow paths must agree bit-for-bit.
        let params = QuantParams {
            scale: F16::from_f32(0.25),
            zero: F16::from_f32(-2.0),
        };
        let codes: Vec<u8> = (0..8).collect();
        let reg = pack_u32(&codes, BitWidth::B4, PackOrder::FastDequant);
        let (vals, _) = dequant_register(reg, BitWidth::B4, params);
        for (v, &c) in vals.iter().zip(&codes) {
            assert_eq!(v.to_bits(), params.dequantize(c).to_bits());
        }
    }

    #[test]
    fn register_ops_matches_dequant_register() {
        for width in [BitWidth::B4, BitWidth::B2] {
            let params = QuantParams::from_min_max(0.0, 1.0, width);
            let (_, ops) = dequant_register(0, width, params);
            assert_eq!(ops, register_ops(width), "{width}");
        }
    }

    #[test]
    fn op_counts_per_register() {
        let params = QuantParams::from_min_max(0.0, 1.0, BitWidth::B4);
        let (_, ops4) = dequant_register(0, BitWidth::B4, params);
        assert_eq!(
            ops4,
            FastDequantOps {
                lop3: 4,
                shifts: 3,
                hfma2: 4
            }
        );
        let (_, ops2) = dequant_register(0, BitWidth::B2, params);
        assert_eq!(
            ops2,
            FastDequantOps {
                lop3: 8,
                shifts: 7,
                hfma2: 8
            }
        );
        // 11 and 23 slots vs 48 / 96 for the slow path.
        assert!(ops4.total() * 4 < slow_path_ops(BitWidth::B4));
        assert!(ops2.total() * 4 < slow_path_ops(BitWidth::B2));
    }
}
