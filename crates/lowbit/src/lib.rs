#![warn(missing_docs)]

//! # bd-lowbit — low-precision numerics for BitDecoding-RS
//!
//! The numeric substrate of the BitDecoding reproduction: a bit-exact
//! software [`F16`], the [`Half2`] metadata pair, asymmetric affine
//! [quantization](crate::quant), 16-bit-word [bit packing](crate::pack) with
//! the 75316420 fast-dequant interleave, the `lop3`-style
//! [fast dequantization](crate::fastpath) path, and Blackwell
//! [micro-scaling FP4 formats](crate::fp4) (MXFP4 / NVFP4).
//!
//! Everything in this crate is pure arithmetic — no GPU model, no caches —
//! so it can be tested exhaustively and reused by every other crate in the
//! workspace.
//!
//! ## Example: quantize, pack, fast-dequantize
//!
//! ```
//! use bd_lowbit::{quantize_group, pack_u32, BitWidth, PackOrder, fastpath};
//!
//! let values = [0.1f32, -0.4, 0.9, 1.3, -1.0, 0.0, 0.7, 0.2];
//! let (codes, params) = quantize_group(&values, BitWidth::B4);
//! let reg = pack_u32(&codes, BitWidth::B4, PackOrder::FastDequant);
//! let (halves, ops) = fastpath::dequant_register(reg, BitWidth::B4, params);
//! assert_eq!(halves.len(), 8);
//! assert_eq!(ops.lop3, 4); // two values per lop3
//! ```

pub mod f16;
pub mod fastpath;
pub mod fp4;
pub mod half2;
pub mod pack;
pub mod quant;

pub use f16::F16;
pub use fp4::{BlockScale, Fp4Block, Fp4Kind, E2M1, E4M3, E8M0};
pub use half2::Half2;
pub use pack::{
    codes_per_u16, codes_per_u32, fuse_words, pack_u16, pack_u32, split_register, unpack_u16,
    unpack_u32, unpack_u32_into, PackOrder, FAST_PERM_INT2, FAST_PERM_INT4,
};
pub use quant::{quantize_group, BitWidth, MinMax, QuantParams};
