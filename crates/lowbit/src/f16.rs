//! Software IEEE 754 binary16 ("half") arithmetic.
//!
//! The KV cache in BitDecoding is stored and dequantized as FP16, and the
//! fast `lop3`-based dequantization path (see [`crate::fastpath`]) operates
//! directly on half bit patterns. Rust has no native `f16` on stable, so this
//! module provides a bit-exact software implementation with round-to-nearest-
//! even conversions (the rounding mode used by GPU `cvt` instructions).
//!
//! Arithmetic is performed by widening to `f32` and rounding back, which
//! matches the behaviour of mixed-precision GPU pipelines that accumulate in
//! FP32 registers.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 16-bit IEEE 754 binary16 floating point number.
///
/// # Examples
///
/// ```
/// use bd_lowbit::F16;
///
/// let x = F16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// assert_eq!(x.to_bits(), 0x3E00);
/// ```
#[derive(Clone, Copy, Default, PartialEq)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value, `65504.0`.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest finite value, `-65504.0`.
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value, `2^-14`.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Machine epsilon, `2^-10`.
    pub const EPSILON: F16 = F16(0x1400);

    /// Creates a half from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to binary16 with round-to-nearest-even.
    ///
    /// Overflow produces infinity; values below the subnormal range flush to
    /// (signed) zero exactly as the hardware `cvt.rn.f16.f32` instruction.
    pub fn from_f32(x: f32) -> Self {
        F16(f32_to_f16_bits(x.to_bits()))
    }

    /// Converts to `f32` exactly (binary16 ⊂ binary32).
    pub fn to_f32(self) -> f32 {
        f32::from_bits(f16_bits_to_f32(self.0))
    }

    /// Returns `true` if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Returns `true` if the value is positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Returns `true` if the value is neither infinite nor NaN.
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// Returns `true` for subnormal values (exponent bits all zero, nonzero
    /// mantissa).
    pub fn is_subnormal(self) -> bool {
        (self.0 & 0x7C00) == 0 && (self.0 & 0x03FF) != 0
    }

    /// Returns `true` if the sign bit is set (including `-0.0` and NaNs with
    /// the sign bit set).
    pub fn is_sign_negative(self) -> bool {
        (self.0 & 0x8000) != 0
    }

    /// Absolute value (clears the sign bit).
    pub fn abs(self) -> Self {
        F16(self.0 & 0x7FFF)
    }

    /// The maximum of two values, propagating the larger.
    pub fn max(self, other: Self) -> Self {
        if self.to_f32() >= other.to_f32() {
            self
        } else {
            other
        }
    }

    /// The minimum of two values.
    pub fn min(self, other: Self) -> Self {
        if self.to_f32() <= other.to_f32() {
            self
        } else {
            other
        }
    }

    /// Fused multiply-add computed in `f32` and rounded once, matching the
    /// GPU `fma.rn.f16` contract used during dequantization
    /// (`x = q * scale + zero`).
    pub fn mul_add(self, a: F16, b: F16) -> Self {
        F16::from_f32(self.to_f32() * a.to_f32() + b.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    fn from(x: F16) -> Self {
        x.to_f32()
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}f16", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for F16 {
            fn $assign_method(&mut self, rhs: F16) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_binop!(Add, add, AddAssign, add_assign, +);
impl_binop!(Sub, sub, SubAssign, sub_assign, -);
impl_binop!(Mul, mul, MulAssign, mul_assign, *);
impl_binop!(Div, div, DivAssign, div_assign, /);

impl Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }
}

/// Round-to-nearest-even `f32` → binary16 conversion on raw bits.
///
/// This is the classic branch-light algorithm (Giesen's
/// `float_to_half_fast3_rtne`): subnormal results are produced by a
/// round-correct FP addition against a magic bias, normal results by integer
/// rounding-bias addition.
pub fn f32_to_f16_bits(fbits: u32) -> u16 {
    const F32_INFTY: u32 = 255 << 23;
    const F16_MAX: u32 = (127 + 16) << 23;
    const DENORM_MAGIC_BITS: u32 = ((127 - 15) + (23 - 10) + 1) << 23;
    const SIGN_MASK: u32 = 0x8000_0000;

    let sign = fbits & SIGN_MASK;
    let mut f = fbits ^ sign;
    let o: u16;

    if f >= F16_MAX {
        // Inf or NaN: map NaN payloads to a canonical quiet NaN.
        o = if f > F32_INFTY { 0x7E00 } else { 0x7C00 };
    } else if f < (113 << 23) {
        // Subnormal (or zero) result: align the mantissa via FP addition,
        // which performs the rounding for us.
        let fl = f32::from_bits(f) + f32::from_bits(DENORM_MAGIC_BITS);
        o = (fl.to_bits().wrapping_sub(DENORM_MAGIC_BITS)) as u16;
    } else {
        // Normal result: rebias exponent with rounding bias.
        let mant_odd = (f >> 13) & 1;
        f = f.wrapping_add(((15u32.wrapping_sub(127)) << 23).wrapping_add(0xFFF));
        f = f.wrapping_add(mant_odd);
        o = (f >> 13) as u16;
    }
    o | (sign >> 16) as u16
}

/// Exact binary16 → `f32` conversion on raw bits.
pub fn f16_bits_to_f32(h: u16) -> u32 {
    const MAGIC_BITS: u32 = 113 << 23;
    const SHIFTED_EXP: u32 = 0x7C00 << 13;

    let mut o = ((h & 0x7FFF) as u32) << 13;
    let exp = SHIFTED_EXP & o;
    o = o.wrapping_add((127 - 15) << 23);

    if exp == SHIFTED_EXP {
        // Inf / NaN: extra exponent adjustment.
        o = o.wrapping_add((128 - 16) << 23);
    } else if exp == 0 {
        // Zero / subnormal: renormalize.
        o = o.wrapping_add(1 << 23);
        o = (f32::from_bits(o) - f32::from_bits(MAGIC_BITS)).to_bits();
    }
    o | ((h & 0x8000) as u32) << 16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_constants() {
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(F16::from_f32(-2.0).to_bits(), 0xC000);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7BFF);
        assert_eq!(F16::from_f32(1024.0).to_bits(), 0x6400);
        assert_eq!(F16::from_f32(f32::INFINITY).to_bits(), 0x7C00);
        assert_eq!(F16::from_f32(f32::NEG_INFINITY).to_bits(), 0xFC00);
        assert!(F16::from_f32(f32::NAN).is_nan());
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        assert_eq!(F16::from_f32(65520.0).to_bits(), 0x7C00);
        assert_eq!(F16::from_f32(1e9).to_bits(), 0x7C00);
        assert_eq!(F16::from_f32(-1e9).to_bits(), 0xFC00);
        // 65519.996 rounds down to 65504.
        assert_eq!(F16::from_f32(65519.0), F16::MAX);
    }

    #[test]
    fn subnormals_round_trip() {
        // Smallest positive subnormal: 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_bits(), 0x0001);
        assert_eq!(F16::from_bits(0x0001).to_f32(), tiny);
        // Largest subnormal.
        let big_sub = F16::from_bits(0x03FF);
        assert!(big_sub.is_subnormal());
        assert_eq!(F16::from_f32(big_sub.to_f32()).to_bits(), 0x03FF);
        // Below half the smallest subnormal flushes to zero.
        assert_eq!(F16::from_f32(2.0f32.powi(-26)).to_bits(), 0x0000);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and 1.0+2^-10;
        // RNE keeps the even mantissa (1.0).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).to_bits(), 0x3C00);
        // 1.0 + 3*2^-11 is halfway between odd and even; rounds up to even.
        let halfway_up = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway_up).to_bits(), 0x3C02);
    }

    #[test]
    fn magic_dequant_identity() {
        // The fast-dequant trick relies on 0x6400 | c == 1024.0 + c for
        // c in 0..1024.
        for c in 0u16..16 {
            let v = F16::from_bits(0x6400 | c);
            assert_eq!(v.to_f32(), 1024.0 + c as f32);
        }
    }

    #[test]
    fn arithmetic_widens_to_f32() {
        let a = F16::from_f32(0.1);
        let b = F16::from_f32(0.2);
        let c = a + b;
        assert!((c.to_f32() - 0.3).abs() < 1e-3);
        assert_eq!((-a).to_f32(), -a.to_f32());
        assert_eq!(a.mul_add(b, F16::ONE).to_f32(), {
            F16::from_f32(a.to_f32() * b.to_f32() + 1.0).to_f32()
        });
    }

    #[test]
    fn ordering_and_extremes() {
        assert!(F16::from_f32(1.0) < F16::from_f32(2.0));
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
        assert_eq!(F16::ONE.max(F16::NEG_ONE), F16::ONE);
        assert_eq!(F16::ONE.min(F16::NEG_ONE), F16::NEG_ONE);
    }

    #[test]
    fn exhaustive_round_trip_all_finite_bit_patterns() {
        // Every finite f16 bit pattern must survive f16 -> f32 -> f16.
        for bits in 0u16..=0xFFFF {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(
                    F16::from_f32(h.to_f32()).to_bits(),
                    bits,
                    "bits {bits:#06x}"
                );
            }
        }
    }
}
