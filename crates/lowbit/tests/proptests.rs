//! Property-based tests for the numeric substrate.

use bd_lowbit::*;
use proptest::prelude::*;

proptest! {
    /// f32 -> f16 -> f32 is exact for values already representable in f16.
    #[test]
    fn f16_round_trip_representable(bits in 0u16..0x7C00u16, neg: bool) {
        let bits = if neg { bits | 0x8000 } else { bits };
        let h = F16::from_bits(bits);
        prop_assert_eq!(F16::from_f32(h.to_f32()).to_bits(), bits);
    }

    /// f32 -> f16 conversion error is bounded by half an ulp of the result.
    #[test]
    fn f16_conversion_error_bounded(x in -60000.0f32..60000.0) {
        let h = F16::from_f32(x);
        let back = h.to_f32();
        let ulp = (back.abs() * 2.0f32.powi(-10)).max(2.0f32.powi(-24));
        prop_assert!((back - x).abs() <= ulp * 0.5 + f32::EPSILON);
    }

    /// Quantize -> dequantize error is bounded by half the scale step
    /// (plus f16 rounding slack), for both widths.
    #[test]
    fn quant_error_bounded(
        values in prop::collection::vec(-8.0f32..8.0, 2..64),
        four_bit: bool,
    ) {
        let width = if four_bit { BitWidth::B4 } else { BitWidth::B2 };
        let (codes, params) = quantize_group(&values, width);
        let s = params.scale.to_f32();
        let slack = 0.01 * s.max(1e-3) + 0.01;
        for (&c, &x) in codes.iter().zip(&values) {
            let d = params.dequantize(c).to_f32();
            prop_assert!((d - x).abs() <= s * 0.5 + s * 0.01 + slack,
                "x={x} d={d} s={s}");
        }
    }

    /// pack/unpack round-trips for every order and width at u32 granularity.
    #[test]
    fn pack_u32_round_trip(seed in any::<u64>(), four_bit: bool, fast: bool) {
        let width = if four_bit { BitWidth::B4 } else { BitWidth::B2 };
        let order = if fast { PackOrder::FastDequant } else { PackOrder::Linear };
        let n = codes_per_u32(width);
        let mut rng = seed;
        let codes: Vec<u8> = (0..n).map(|_| {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((rng >> 33) as u8) & width.max_code()
        }).collect();
        let w = pack_u32(&codes, width, order);
        prop_assert_eq!(unpack_u32(w, width, order), codes);
    }

    /// Fast dequant equals the reference dequantizer within fused-bias
    /// rounding slack for arbitrary parameters.
    #[test]
    fn fast_dequant_matches_reference(
        min in -16.0f32..0.0,
        span in 0.01f32..32.0,
        four_bit: bool,
        seed in any::<u64>(),
    ) {
        let width = if four_bit { BitWidth::B4 } else { BitWidth::B2 };
        let params = QuantParams::from_min_max(min, min + span, width);
        let n = codes_per_u32(width);
        let mut rng = seed;
        let codes: Vec<u8> = (0..n).map(|_| {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((rng >> 33) as u8) & width.max_code()
        }).collect();
        let reg = pack_u32(&codes, width, PackOrder::FastDequant);
        let (vals, _) = fastpath::dequant_register(reg, width, params);
        // Fused bias (zero - 1024*scale) is rounded once to f16: the extra
        // error is up to one ulp at the bias magnitude, plus one ulp of the
        // final rounded result. This is a real precision cost of folding the
        // magic-bias subtraction into the FMA, present on hardware too.
        let bias_mag = (params.zero.to_f32() - 1024.0 * params.scale.to_f32()).abs();
        let result_mag = params.zero.to_f32().abs() + span;
        let tol = (bias_mag + result_mag) * 2.0f32.powi(-10) + 1e-3;
        for (v, &c) in vals.iter().zip(&codes) {
            let reference = params.dequantize(c).to_f32();
            prop_assert!((v.to_f32() - reference).abs() <= tol,
                "code {c}: {} vs {reference} (tol {tol})", v.to_f32());
        }
    }

    /// E2M1 encoding picks the nearest representable magnitude.
    #[test]
    fn e2m1_nearest(x in -8.0f32..8.0) {
        let enc = E2M1::from_f32(x).to_f32();
        let clamped = x.clamp(-6.0, 6.0);
        for code in 0u8..16 {
            let v = E2M1::from_bits(code).to_f32();
            prop_assert!((enc - clamped).abs() <= (v - clamped).abs() + 1e-6,
                "x={x} enc={enc} better={v}");
        }
    }

    /// MX and NV block quantization error is bounded by one scale step.
    #[test]
    fn fp4_block_error_bounded(
        values in prop::collection::vec(-100.0f32..100.0, 1..32),
        mx: bool,
    ) {
        let kind = if mx { Fp4Kind::Mx } else { Fp4Kind::Nv };
        let vals = &values[..values.len().min(kind.block_size())];
        let block = fp4::quantize_fp4_block(vals, kind);
        let s = block.scale.to_f32();
        let deq = block.dequantize();
        for (d, &v) in deq.iter().zip(vals) {
            // Worst-case error: the MX power-of-two scale leaves amax/scale
            // in [4, 8) while E2M1 tops out at 6, so saturation can cost up
            // to 2*scale; the grid half-step in the top binade is 1*scale.
            prop_assert!((d.to_f32() - v).abs() <= s * 2.01 + 1e-4,
                "{} vs {v}, scale {s}", d.to_f32());
        }
    }

    /// Half2 bit packing is lossless.
    #[test]
    fn half2_round_trip(lo_bits: u16, hi_bits: u16) {
        let h = Half2::new(F16::from_bits(lo_bits), F16::from_bits(hi_bits));
        prop_assert_eq!(Half2::from_bits(h.to_bits()).to_bits(), h.to_bits());
    }
}
