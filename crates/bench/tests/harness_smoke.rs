//! Smoke tests: every figure binary's core sweep logic runs and produces
//! ordered results (the binaries themselves are exercised by
//! `all_experiments`; these tests pin the invariants the tables rely on).

use bd_baselines::{speedup, BitDecodingSys, DecodeSystem, FlashDecoding, Kivi};
use bd_bench::{shape, typical_residual};
use bd_core::AttentionConfig;
use bd_gpu_sim::GpuArch;

#[test]
fn speedups_are_finite_across_the_full_grid() {
    let attn_grid = [
        AttentionConfig::mha(32, 128),
        AttentionConfig::gqa(32, 8, 128),
        AttentionConfig::gqa(128, 8, 128),
        AttentionConfig::mqa(32, 128),
    ];
    let flash = FlashDecoding::v2();
    let bd = BitDecodingSys::kc4();
    let kivi = Kivi::int2();
    for arch in GpuArch::all() {
        for attn in attn_grid {
            for len in [1024usize, 32768] {
                for bs in [1usize, 32] {
                    let s = shape(bs, attn, len);
                    for sys in [&bd as &dyn DecodeSystem, &kivi] {
                        let sp = speedup(sys, &flash, &s, &arch);
                        assert!(
                            sp.is_finite() && sp > 0.0,
                            "{} {attn} {len} {bs}",
                            arch.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn bitdecoding_speedup_grows_with_context_on_every_arch() {
    let attn = AttentionConfig::gqa(32, 8, 128);
    let flash = FlashDecoding::v2();
    let bd = BitDecodingSys::kc4();
    for arch in GpuArch::all() {
        let short = speedup(&bd, &flash, &shape(8, attn, 2048), &arch);
        let long = speedup(&bd, &flash, &shape(8, attn, 131072), &arch);
        assert!(
            long > short,
            "{}: speedup must grow with context ({short} -> {long})",
            arch.name
        );
    }
}

#[test]
fn typical_residual_is_bounded() {
    assert_eq!(typical_residual(10), 5);
    assert_eq!(typical_residual(1 << 20), 64);
}
