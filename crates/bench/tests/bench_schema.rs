//! Schema-shape test for the committed `BENCH_serve.json` baseline: the
//! file is hand-diffed across PRs and parsed by downstream tooling, so
//! its top-level sections, provenance stamp, and per-row fields are
//! pinned here. Parsing goes through `bd_obs::json` — the same vendored
//! parser the trace exporter's tests use — so a malformed write fails
//! loudly instead of shipping.

use bd_obs::json::{self, JsonValue};

fn load() -> JsonValue {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let text = std::fs::read_to_string(path).expect("committed BENCH_serve.json exists");
    json::parse(&text).expect("BENCH_serve.json is valid JSON")
}

fn keys(v: &JsonValue) -> Vec<&str> {
    v.as_object()
        .expect("object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect()
}

#[test]
fn bench_serve_json_has_the_pinned_top_level_schema() {
    let doc = load();
    assert_eq!(
        keys(&doc),
        vec![
            "bench",
            "unit",
            "attention",
            "prompt_tokens",
            "gen_tokens",
            "workers_per_device",
            "partitioning",
            "provenance",
            "results",
            "oversubscribed",
            "heterogeneous",
            "slo",
            "shared_prefix",
            "prefix_cache",
            "degraded",
        ]
    );
    assert_eq!(
        doc.get("bench").and_then(JsonValue::as_str),
        Some("serve_batched_decode")
    );
}

#[test]
fn provenance_stamp_names_devices_scheme_page_size_and_policies() {
    let doc = load();
    let prov = doc.get("provenance").expect("provenance section");
    assert_eq!(
        keys(prov),
        vec![
            "gpu",
            "topology",
            "page_tokens",
            "devices",
            "schemes",
            "batches",
            "policies",
            "obs"
        ]
    );
    assert_eq!(prov.get("gpu").and_then(JsonValue::as_str), Some("rtx4090"));
    assert_eq!(
        prov.get("topology").and_then(JsonValue::as_str),
        Some("flat_nvlink4_pcie_host")
    );
    assert_eq!(
        prov.get("page_tokens").and_then(JsonValue::as_f64),
        Some(64.0)
    );
    let devices: Vec<f64> = prov
        .get("devices")
        .and_then(JsonValue::as_array)
        .expect("devices array")
        .iter()
        .filter_map(JsonValue::as_f64)
        .collect();
    assert_eq!(devices, vec![1.0, 2.0, 4.0]);
    let schemes: Vec<&str> = prov
        .get("schemes")
        .and_then(JsonValue::as_array)
        .expect("schemes array")
        .iter()
        .filter_map(JsonValue::as_str)
        .collect();
    assert_eq!(schemes, vec!["kc4", "kc2"]);
    let policies = prov
        .get("policies")
        .and_then(JsonValue::as_array)
        .expect("policies array");
    assert_eq!(policies.len(), 3);
}

#[test]
fn throughput_rows_cover_the_grid_with_pinned_fields() {
    let doc = load();
    let rows = doc
        .get("results")
        .and_then(JsonValue::as_array)
        .expect("results array");
    // 2 schemes x 3 device counts x 3 batch sizes.
    assert_eq!(rows.len(), 18);
    for row in rows {
        assert_eq!(
            keys(row),
            vec![
                "scheme",
                "devices",
                "batch",
                "steps",
                "kv_tokens",
                "aggregate_kv_tok_s",
                "per_seq_kv_tok_s",
                "mean_device_utilization",
                "modeled_allreduce_us",
            ]
        );
        let tok_s = row
            .get("aggregate_kv_tok_s")
            .and_then(JsonValue::as_f64)
            .expect("throughput number");
        assert!(tok_s > 0.0 && tok_s.is_finite());
    }
}

#[test]
fn slo_section_reports_lifecycle_distributions() {
    let doc = load();
    let slo = doc.get("slo").expect("slo section");
    assert_eq!(
        keys(slo),
        vec![
            "scenario",
            "submitted",
            "completed",
            "preemptions",
            "resumes",
            "ttft_steps",
            "tbt_steps",
            "queue_wait_steps",
            "goodput_tok_s",
            "aggregate_goodput_tok_s",
        ]
    );
    assert_eq!(
        slo.get("scenario").and_then(JsonValue::as_str),
        Some("bursty_fcfs_preempt")
    );
    // The bursty scenario's request count comes from the seeded trace, so
    // pin the lifecycle invariant rather than a magic number: every
    // submitted request completed.
    let submitted = slo
        .get("submitted")
        .and_then(JsonValue::as_f64)
        .expect("submitted");
    let completed = slo
        .get("completed")
        .and_then(JsonValue::as_f64)
        .expect("completed");
    assert!(submitted > 0.0);
    assert_eq!(submitted, completed);
    for dist in [
        "ttft_steps",
        "tbt_steps",
        "queue_wait_steps",
        "goodput_tok_s",
    ] {
        let q = slo.get(dist).unwrap_or_else(|| panic!("{dist} present"));
        assert_eq!(keys(q), vec!["count", "p50", "p90", "p99", "max", "mean"]);
        let p50 = q.get("p50").and_then(JsonValue::as_f64).expect("p50");
        let p99 = q.get("p99").and_then(JsonValue::as_f64).expect("p99");
        assert!(p50.is_finite() && p99.is_finite() && p99 >= p50, "{dist}");
    }
}

#[test]
fn heterogeneous_rows_lock_the_weighted_vs_modulo_comparison() {
    let doc = load();
    let rows = doc
        .get("heterogeneous")
        .and_then(JsonValue::as_array)
        .expect("heterogeneous array");
    assert_eq!(rows.len(), 2);
    let mut utils = Vec::new();
    for row in rows {
        assert_eq!(
            keys(row),
            vec![
                "topology",
                "partitioning",
                "heads_per_device",
                "aggregate_kv_tok_s",
                "critical_path_device_utilization",
                "modeled_allreduce_us",
            ]
        );
        assert_eq!(
            row.get("topology").and_then(JsonValue::as_str),
            Some("mixed_h100_a100")
        );
        let heads: Vec<f64> = row
            .get("heads_per_device")
            .and_then(JsonValue::as_array)
            .expect("heads_per_device array")
            .iter()
            .filter_map(JsonValue::as_f64)
            .collect();
        assert_eq!(heads.iter().sum::<f64>(), 16.0, "all 16 KV heads placed");
        utils.push(
            row.get("critical_path_device_utilization")
                .and_then(JsonValue::as_f64)
                .expect("utilization"),
        );
    }
    assert_eq!(
        rows[0].get("partitioning").and_then(JsonValue::as_str),
        Some("weighted")
    );
    assert_eq!(
        rows[1].get("partitioning").and_then(JsonValue::as_str),
        Some("head_modulo")
    );
    // The committed baseline carries the acceptance result: weighted
    // placement balances the mixed fleet strictly better than modulo.
    assert!(
        utils[0] > utils[1],
        "weighted utilization {:.3} must beat modulo {:.3}",
        utils[0],
        utils[1]
    );
}

#[test]
fn shared_prefix_rows_lock_the_cascade_scaling_fields() {
    let doc = load();
    let rows = doc
        .get("shared_prefix")
        .and_then(JsonValue::as_array)
        .expect("shared_prefix array");
    // 4 sharer counts (2, 4, 8, 16) x {unshared, shared}.
    assert_eq!(rows.len(), 8);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            keys(row),
            vec![
                "sequences",
                "mode",
                "gen_tokens",
                "steps",
                "peak_physical_pages",
                "aggregate_kv_tok_s",
                "speedup_vs_unshared",
                "forks",
                "peak_bytes_deduped_kib",
                "shared_attn_groups",
                "prefix_pages_walked_saved",
            ]
        );
        let shared = i % 2 == 1;
        assert_eq!(
            row.get("mode").and_then(JsonValue::as_str),
            Some(if shared { "shared" } else { "unshared" })
        );
        // The long-run mode: steady-state decode dominates the wall clock.
        let gen = row
            .get("gen_tokens")
            .and_then(JsonValue::as_f64)
            .expect("gen_tokens");
        assert!(gen >= 64.0, "shared_prefix rows must be long runs");
        let groups = row
            .get("shared_attn_groups")
            .and_then(JsonValue::as_f64)
            .expect("shared_attn_groups");
        let saved = row
            .get("prefix_pages_walked_saved")
            .and_then(JsonValue::as_f64)
            .expect("prefix_pages_walked_saved");
        let speedup = row
            .get("speedup_vs_unshared")
            .and_then(JsonValue::as_f64)
            .expect("speedup_vs_unshared");
        if shared {
            assert!(groups > 0.0, "shared row {i} formed no cascade groups");
            assert!(saved > 0.0, "shared row {i} saved no prefix walks");
        } else {
            assert_eq!(groups, 0.0, "unshared row {i} must not group");
            assert_eq!(saved, 0.0);
            assert_eq!(speedup, 1.0);
        }
    }
    // The committed baseline carries the acceptance result: at 8 sharers
    // the shared run's aggregate throughput is >= 2x the unshared run's.
    let eight_shared = rows
        .iter()
        .find(|r| {
            r.get("sequences").and_then(JsonValue::as_f64) == Some(8.0)
                && r.get("mode").and_then(JsonValue::as_str) == Some("shared")
        })
        .expect("8-sharer shared row");
    let speedup = eight_shared
        .get("speedup_vs_unshared")
        .and_then(JsonValue::as_f64)
        .expect("speedup");
    assert!(
        speedup >= 2.0,
        "committed 8-sharer cascade speedup regressed to {speedup:.2}x"
    );
}

#[test]
fn prefix_cache_rows_lock_the_content_dedup_fields() {
    let doc = load();
    let rows = doc
        .get("prefix_cache")
        .and_then(JsonValue::as_array)
        .expect("prefix_cache array");
    // 2 tenant counts (2, 8) x {cold, radix}.
    assert_eq!(rows.len(), 4);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            keys(row),
            vec![
                "tenants",
                "mode",
                "steps",
                "peak_physical_pages",
                "aggregate_kv_tok_s",
                "prefix_cache_hits",
                "prefix_cache_misses",
                "prefix_pages_reused",
                "prefix_bytes_reused_kib",
                "shared_attn_groups",
            ]
        );
        let radix = i % 2 == 1;
        assert_eq!(
            row.get("mode").and_then(JsonValue::as_str),
            Some(if radix { "radix" } else { "cold" })
        );
        let tenants = row
            .get("tenants")
            .and_then(JsonValue::as_f64)
            .expect("tenants");
        let hits = row
            .get("prefix_cache_hits")
            .and_then(JsonValue::as_f64)
            .expect("prefix_cache_hits");
        let reused = row
            .get("prefix_pages_reused")
            .and_then(JsonValue::as_f64)
            .expect("prefix_pages_reused");
        let groups = row
            .get("shared_attn_groups")
            .and_then(JsonValue::as_f64)
            .expect("shared_attn_groups");
        if radix {
            // The committed baseline carries the acceptance result:
            // content-addressed adoption actually happened — every tenant
            // after the first hit and reused pages — and the hits formed
            // cascade attention groups with no fork call anywhere.
            assert_eq!(hits, tenants - 1.0, "radix row {i} hit count");
            assert!(reused > 0.0, "radix row {i} reused no pages");
            assert!(groups > 0.0, "radix row {i} formed no cascade groups");
        } else {
            assert_eq!(hits, 0.0, "cold row {i} must not hit");
            assert_eq!(reused, 0.0);
            assert_eq!(groups, 0.0, "cold row {i} must not group");
        }
    }
    // Transparent dedup matches the explicit-fork footprint: the
    // 8-tenant radix peak stays within one KC-4 page run (2 pages at
    // 64-token pages) of the 8-sharer explicit-fork baseline.
    let fork_peak = doc
        .get("shared_prefix")
        .and_then(JsonValue::as_array)
        .expect("shared_prefix array")
        .iter()
        .find(|r| {
            r.get("sequences").and_then(JsonValue::as_f64) == Some(8.0)
                && r.get("mode").and_then(JsonValue::as_str) == Some("shared")
        })
        .and_then(|r| r.get("peak_physical_pages").and_then(JsonValue::as_f64))
        .expect("8-sharer shared peak");
    let radix_peak = rows
        .iter()
        .find(|r| {
            r.get("tenants").and_then(JsonValue::as_f64) == Some(8.0)
                && r.get("mode").and_then(JsonValue::as_str) == Some("radix")
        })
        .and_then(|r| r.get("peak_physical_pages").and_then(JsonValue::as_f64))
        .expect("8-tenant radix peak");
    assert!(
        radix_peak <= fork_peak + 2.0,
        "committed 8-tenant radix peak {radix_peak} strays beyond one page run of the fork baseline {fork_peak}"
    );
}

#[test]
fn degraded_rows_keep_the_summary_degraded_step_counter() {
    let doc = load();
    let rows = doc
        .get("degraded")
        .and_then(JsonValue::as_array)
        .expect("degraded array");
    assert_eq!(rows.len(), 3);
    let healthy = &rows[0];
    assert_eq!(
        healthy.get("degraded_steps").and_then(JsonValue::as_f64),
        Some(0.0)
    );
    for row in rows {
        assert!(row.get("degraded_steps").is_some());
        assert!(row.get("recoveries").is_some());
    }
}
