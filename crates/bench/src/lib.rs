//! # bd-bench — the figure/table reproduction harness
//!
//! One binary per paper artefact (`src/bin/fig*.rs`, `src/bin/tab*.rs`),
//! each printing the same rows/series the paper reports, plus criterion
//! microbenches over the functional hot paths (`benches/`).
//!
//! Run everything with `cargo run -p bd-bench --release --bin all_experiments`,
//! or an individual artefact, e.g. `--bin fig10_ada`.

use bd_baselines::DecodeSystem;
use bd_core::DecodeShape;
use bd_gpu_sim::GpuArch;

pub mod traces;

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints a sub-banner.
pub fn subbanner(title: &str) {
    println!();
    println!("--- {title} ---");
}

/// Prints one aligned table row.
pub fn row(cells: &[String]) {
    let mut line = String::new();
    for (i, c) in cells.iter().enumerate() {
        let width = if i == 0 { 28 } else { 14 };
        line.push_str(&format!("{c:>width$}"));
    }
    println!("{line}");
}

/// Formats a speedup cell.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a milliseconds cell.
pub fn fmt_ms(v_s: f64) -> String {
    format!("{:.3} ms", v_s * 1e3)
}

/// A standard speedup sweep: each system's speedup over `baseline` across
/// shapes, printed as one row per system with one column per shape.
pub fn speedup_table(
    header: &str,
    shapes: &[(String, DecodeShape)],
    systems: &[&dyn DecodeSystem],
    baseline: &dyn DecodeSystem,
    arch: &GpuArch,
) {
    subbanner(header);
    let mut cells = vec!["system".to_owned()];
    cells.extend(shapes.iter().map(|(label, _)| label.clone()));
    row(&cells);

    let base: Vec<f64> = shapes
        .iter()
        .map(|(_, s)| baseline.latency_s(s, arch))
        .collect();
    let mut base_row = vec![format!("{} (base)", baseline.label())];
    base_row.extend(base.iter().map(|_| fmt_x(1.0)));
    row(&base_row);

    for sys in systems {
        let mut cells = vec![sys.label()];
        for ((_, shape), b) in shapes.iter().zip(&base) {
            if sys.supports(&shape.attn) {
                cells.push(fmt_x(b / sys.latency_s(shape, arch)));
            } else {
                cells.push("n/a".to_owned());
            }
        }
        row(&cells);
    }
}

/// Residual region length used in kernel sweeps (a typical mid-fill state).
pub fn typical_residual(seq_len: usize) -> usize {
    64.min(seq_len / 2)
}

/// Builds a labelled shape for kernel sweeps.
pub fn shape(batch: usize, attn: bd_core::AttentionConfig, seq_len: usize) -> DecodeShape {
    DecodeShape::new(batch, attn, seq_len).with_residual(typical_residual(seq_len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_core::AttentionConfig;

    #[test]
    fn shape_builder_sets_residual() {
        let s = shape(1, AttentionConfig::gqa(32, 8, 128), 4096);
        assert_eq!(s.residual_len, 64);
        let tiny = shape(1, AttentionConfig::gqa(32, 8, 128), 64);
        assert_eq!(tiny.residual_len, 32);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_x(2.345), "2.35x");
        assert_eq!(fmt_ms(0.0015), "1.500 ms");
    }
}
