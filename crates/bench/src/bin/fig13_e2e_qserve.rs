//! Fig. 13 — Paged serving throughput vs QServe across five models at a
//! 32K context: maximum tokens/s under the largest memory-admissible batch.

use bd_baselines::{BitDecodingSys, CudaOnly, FlashDecoding};
use bd_bench::{banner, row, subbanner};
use bd_gpu_sim::GpuArch;
use bd_llm::{max_throughput, ModelConfig, WeightPrecision};

fn main() {
    banner("Fig. 13: paged serving throughput (seq len = 32k, A100)");
    let arch = GpuArch::a100();
    let fp16 = FlashDecoding::v2();
    let qserve = CudaOnly::qserve();
    let bitdecoding = BitDecodingSys::kc4().paged(true);

    subbanner("max decode throughput (tokens/s) at the largest admissible batch");
    row(&[
        "model".into(),
        "FlashDec-v2".into(),
        "QServe".into(),
        "BitDecoding".into(),
        "BD/FP16".into(),
        "BD/QServe".into(),
    ]);

    for model in ModelConfig::all() {
        let r_fp16 = max_throughput(model, &fp16, arch.clone(), WeightPrecision::Fp16, 32768);
        let r_qs = max_throughput(model, &qserve, arch.clone(), WeightPrecision::Int4, 32768);
        let r_bd = max_throughput(
            model,
            &bitdecoding,
            arch.clone(),
            WeightPrecision::Fp16,
            32768,
        );
        row(&[
            format!("{} (x{} GPU)", model.name, model.gpus),
            format!("{:.1} (bs {})", r_fp16.tokens_per_s, r_fp16.batch),
            format!("{:.1} (bs {})", r_qs.tokens_per_s, r_qs.batch),
            format!("{:.1} (bs {})", r_bd.tokens_per_s, r_bd.batch),
            format!("{:.2}x", r_bd.tokens_per_s / r_fp16.tokens_per_s),
            format!("{:.2}x", r_bd.tokens_per_s / r_qs.tokens_per_s.max(1e-9)),
        ]);
    }

    println!();
    println!("Paper reference (tokens/s): llama-2-7B 13.9/32.8/130.0, llama-3.1-8B");
    println!("48.5/8.1/147.2, llama-3.1-70B 11.1/n.a./28.2, Qwen3-8B 51.1/45.2/128.4,");
    println!("Qwen3-14B 44.0/32.7/99.5 — QServe wins only on the MHA llama-2-7B;");
    println!("BitDecoding leads everywhere with >2x over QServe.");
}
