//! Table III — Impact of cooperative softmax and warp parallelism: latency
//! and Tensor-Core utilization from the cost model, and *validity* from the
//! functional simulator (non-cooperative `Wn > 1` really corrupts outputs).

use bd_baselines::{BitDecodingSys, DecodeSystem};
use bd_bench::{banner, row, shape, subbanner};
use bd_core::{AttentionConfig, BitDecoder, OptimizationFlags};
use bd_gpu_sim::GpuArch;
use bd_kvcache::QuantScheme;

/// Functionally decodes with the given flags and reports the maximum output
/// deviation from the fully-cooperative configuration.
fn functional_deviation(flags: OptimizationFlags) -> f32 {
    let attn = AttentionConfig::gqa(8, 2, 32);
    let reference = BitDecoder::builder(GpuArch::rtx4090())
        .attention(attn)
        .scheme(QuantScheme::kc4())
        .build();
    let candidate = BitDecoder::builder(GpuArch::rtx4090())
        .attention(attn)
        .scheme(QuantScheme::kc4())
        .flags(flags)
        .build();

    let mut cache = reference.new_cache(1);
    let codec = reference.codec();
    let len = 256;
    for head in 0..cache.heads() {
        let k: Vec<Vec<f32>> = (0..len)
            .map(|t| {
                (0..32)
                    .map(|c| ((head * 31 + t * 32 + c) as f32 * 0.37).sin())
                    .collect()
            })
            .collect();
        let v: Vec<Vec<f32>> = (0..len)
            .map(|t| {
                (0..32)
                    .map(|c| ((head * 17 + t * 32 + c) as f32 * 0.53).cos())
                    .collect()
            })
            .collect();
        cache.prefill(head, &k, &v, &codec).unwrap();
    }
    let q = vec![(0..8)
        .map(|h| {
            (0..32)
                .map(|c| ((h * 32 + c) as f32 * 0.71).sin())
                .collect()
        })
        .collect()];
    let out_ref = reference.decode(&q, &cache).unwrap();
    let out = candidate.decode(&q, &cache).unwrap();
    let mut diff = 0.0f32;
    for (a, b) in out_ref.outputs[0].iter().zip(&out.outputs[0]) {
        for (x, y) in a.iter().zip(b) {
            diff = diff.max((x - y).abs());
        }
    }
    diff
}

fn main() {
    banner("Table III: cooperative softmax and warp parallelism (RTX 4090)");
    let arch = GpuArch::rtx4090();
    let s = shape(8, AttentionConfig::gqa(32, 8, 128), 32768);

    let rows: Vec<(&str, OptimizationFlags)> = vec![
        (
            "Wn=1, no coop softmax",
            OptimizationFlags {
                warp_parallelism: false,
                cooperative_softmax: false,
                ..OptimizationFlags::ALL
            },
        ),
        (
            "Wn=4, no coop softmax",
            OptimizationFlags {
                cooperative_softmax: false,
                ..OptimizationFlags::ALL
            },
        ),
        ("Wn=4, coop softmax", OptimizationFlags::ALL),
    ];

    subbanner("latency / TC utilization / functional validity");
    row(&[
        "config".into(),
        "latency".into(),
        "TC util".into(),
        "valid".into(),
    ]);
    for (label, flags) in rows {
        let sys = BitDecodingSys::kc4().with_flags(flags);
        let lat = sys.latency(&s, &arch);
        // Validity: a Wn>1 configuration without the cooperative protocol
        // really computes wrong attention in the functional simulator.
        let deviation = functional_deviation(flags);
        let valid = deviation < 1e-4;
        row(&[
            label.to_owned(),
            format!("{:.3} ms", lat.total * 1e3),
            format!("{:.1}%", lat.tc_utilization() * 100.0),
            if valid {
                "yes".to_owned()
            } else {
                format!("NO (max err {deviation:.2e})")
            },
        ]);
    }

    println!();
    println!("Paper reference: Wn=1 3.746 ms / 10.9% TC / valid; Wn=4 without");
    println!("cooperative softmax 0.610 ms / 19.7% TC / INVALID; with cooperative");
    println!("softmax 0.613 ms / 19.7% TC / valid — correctness restored for 0.5%.");
}
