//! Fig. 9 — Kernel performance on Hopper (H100): BitDecoding's SM80 "v2"
//! kernels vs the wgmma/TMA "v3" kernels, against FlashAttention-v2/v3,
//! in the Single (seq sweep) and Batches (batch sweep) settings.

use bd_baselines::{BitDecodingSys, DecodeSystem, FlashDecoding};
use bd_bench::{banner, shape, speedup_table};
use bd_core::{ArchPath, AttentionConfig};
use bd_gpu_sim::GpuArch;

fn main() {
    banner("Fig. 9: Hopper (H100) kernel performance");
    let arch = GpuArch::h100();
    let attn = AttentionConfig::gqa(128, 32, 128);
    let flash_v2 = FlashDecoding::v2();
    let flash_v3 = FlashDecoding::v3();

    let kt4_v2 = BitDecodingSys::kt4().with_path(ArchPath::Sm80);
    let kc4_v2 = BitDecodingSys::kc4().with_path(ArchPath::Sm80);
    let kc2_v2 = BitDecodingSys::kc2().with_path(ArchPath::Sm80);
    let kt4_v3 = BitDecodingSys::kt4().with_path(ArchPath::Sm90);
    let kc4_v3 = BitDecodingSys::kc4().with_path(ArchPath::Sm90);
    let kc2_v3 = BitDecodingSys::kc2().with_path(ArchPath::Sm90);
    let systems: Vec<&dyn DecodeSystem> = vec![
        &flash_v3, &kt4_v2, &kc4_v2, &kc2_v2, &kt4_v3, &kc4_v3, &kc2_v3,
    ];

    let single: Vec<(String, _)> = [1024usize, 10240, 102400]
        .into_iter()
        .map(|l| (format!("{}k", l / 1024), shape(1, attn, l)))
        .collect();
    speedup_table(
        "Single: bs=1, h_q=128, h_k=32, d=128",
        &single,
        &systems,
        &flash_v2,
        &arch,
    );

    let batches: Vec<(String, _)> = [8usize, 32, 64, 128]
        .into_iter()
        .map(|bs| (format!("bs={bs}"), shape(bs, attn, 32768)))
        .collect();
    speedup_table(
        "Batches: len=32k, h_q=128, h_k=32, d=128",
        &batches,
        &systems,
        &flash_v2,
        &arch,
    );

    println!();
    println!("Paper reference: BitDecoding-v2 reaches ~4.1x; v3 (wgmma + TMA) up to 8.0x.");
}
