//! Fig. 10 — Kernel performance on the bandwidth-constrained RTX 4090:
//! MHA and GQA rows × Single / Batches / Pages columns, speedups over FP16
//! FlashDecoding-v2 (KIVI in Single/Batches; Atom + QServe in Pages).

use bd_baselines::{BitDecodingSys, CudaOnly, DecodeSystem, FlashDecoding, Kivi};
use bd_bench::{banner, shape, speedup_table};
use bd_core::AttentionConfig;
use bd_gpu_sim::GpuArch;

fn main() {
    banner("Fig. 10: RTX 4090 kernel performance");
    let arch = GpuArch::rtx4090();
    let flash = FlashDecoding::v2();
    let kivi4 = Kivi::int4();
    let kivi2 = Kivi::int2();
    let atom = CudaOnly::atom();
    let qserve = CudaOnly::qserve();
    let kt4 = BitDecodingSys::kt4();
    let kc4 = BitDecodingSys::kc4();
    let kc2 = BitDecodingSys::kc2();

    for (label, attn) in [
        ("MHA: h_q=32, h_k=32, d=128", AttentionConfig::mha(32, 128)),
        (
            "GQA: h_q=32, h_k=8, d=128",
            AttentionConfig::gqa(32, 8, 128),
        ),
    ] {
        banner(label);

        let kernels: Vec<&dyn DecodeSystem> = vec![&kivi4, &kivi2, &kt4, &kc4, &kc2];
        let single: Vec<(String, _)> = [1024usize, 10240, 102400]
            .into_iter()
            .map(|l| (format!("{}k", l / 1024), shape(1, attn, l)))
            .collect();
        speedup_table("Single (bs=1)", &single, &kernels, &flash, &arch);

        let batches: Vec<(String, _)> = [8usize, 32, 64, 128]
            .into_iter()
            .map(|bs| (format!("bs={bs}"), shape(bs, attn, 4096)))
            .collect();
        speedup_table("Batches (len=4k)", &batches, &kernels, &flash, &arch);

        let paged_kt4 = kt4.paged(true);
        let paged_kc4 = kc4.paged(true);
        let paged_kc2 = kc2.paged(true);
        let paged: Vec<&dyn DecodeSystem> =
            vec![&atom, &qserve, &paged_kt4, &paged_kc4, &paged_kc2];
        let pages: Vec<(String, _)> = [2usize, 4, 6, 8]
            .into_iter()
            .map(|bs| (format!("bs={bs}"), shape(bs, attn, 2048)))
            .collect();
        speedup_table("Pages (len=2k)", &pages, &paged, &flash, &arch);
    }

    println!();
    println!("Paper reference: ~4x (4-bit) and >7x (2-bit) in Single/Batches;");
    println!("Pages MHA: BitDecoding >6x vs QServe 3.5x; Pages GQA: 3x vs 1.4x.");
}
