//! Runs every figure and table reproduction in paper order. The output of
//! this binary is what `EXPERIMENTS.md` records.

use std::process::Command;

fn main() {
    let bins = [
        "fig02_taxonomy",
        "fig04_stalls",
        "fig08_blackwell",
        "fig09_hopper",
        "fig10_ada",
        "fig11_ampere",
        "fig12_e2e_kivi",
        "fig13_e2e_qserve",
        "fig14_residual",
        "fig15_dequant",
        "fig16_breakdown",
        "tab1_acc_tradeoff",
        "tab2_quant_overhead",
        "tab3_coop_softmax",
        "ext_rotation_nvfp4",
        "ext_serving_trace",
    ];
    // Invoke in-process when possible? Each bin is its own crate target;
    // shell out to the sibling binaries that cargo placed next to us.
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("target dir");
    let mut failures = Vec::new();
    for bin in bins {
        let path = dir.join(bin);
        println!();
        println!("##################################################################");
        println!("## {bin}");
        println!("##################################################################");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!("failed to launch {}: {e}", path.display());
                failures.push(bin);
            }
        }
    }
    if !failures.is_empty() {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
    println!("\nAll {} experiments completed.", bins.len());
}
