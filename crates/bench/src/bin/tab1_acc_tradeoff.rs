//! Table I — Efficiency/accuracy trade-off: decode throughput at the
//! largest admissible batch (LLaMA-3.1-8B, 32K, A100) against the measured
//! attention fidelity and the LongBench-proxy score.

use bd_accuracy::{evaluate_scheme, longbench_proxy, FP16_LONGBENCH};
use bd_baselines::{BitDecodingSys, FlashDecoding};
use bd_bench::{banner, row, subbanner};
use bd_gpu_sim::GpuArch;
use bd_kvcache::QuantScheme;
use bd_llm::{max_throughput, ModelConfig, WeightPrecision};

fn main() {
    banner("Table I: efficiency and accuracy trade-off (LLaMA-3.1-8B, 32K, A100)");
    let model = ModelConfig::llama31_8b();
    let arch = GpuArch::a100();

    let fp16_tp = max_throughput(
        model,
        &FlashDecoding::v2(),
        arch.clone(),
        WeightPrecision::Fp16,
        32768,
    );

    subbanner("throughput (tokens/s) + accuracy");
    row(&[
        "KV cache".into(),
        "throughput".into(),
        "vs FP16".into(),
        "rel-RMSE".into(),
        "cosine".into(),
        "LongBench proxy".into(),
    ]);
    row(&[
        "FP16".into(),
        format!("{:.2}", fp16_tp.tokens_per_s),
        "1.00x".into(),
        "0.0000".into(),
        "1.00000".into(),
        format!("{FP16_LONGBENCH:.2}"),
    ]);

    for (label, sys, scheme) in [
        ("INT4 (KC-4)", BitDecodingSys::kc4(), QuantScheme::kc4()),
        ("INT2 (KC-2)", BitDecodingSys::kc2(), QuantScheme::kc2()),
    ] {
        let tp = max_throughput(model, &sys, arch.clone(), WeightPrecision::Fp16, 32768);
        let acc = evaluate_scheme(scheme, 128, 1024, 4);
        row(&[
            label.into(),
            format!("{:.2}", tp.tokens_per_s),
            format!("{:+.2}x", tp.tokens_per_s / fp16_tp.tokens_per_s),
            format!("{:.4}", acc.output_rel_rmse),
            format!("{:.5}", acc.cosine),
            format!("{:.2}", longbench_proxy(&acc)),
        ]);
    }

    println!();
    println!("Paper reference: FP16 49.25 tok/s @ 48.25; INT4 147.21 (+2.98x) @ 48.16");
    println!("(-0.2%); INT2 209.48 (+4.25x) @ 47.38 (-2.7%). The proxy score is a");
    println!("calibrated mapping from measured attention fidelity — see DESIGN.md.");
}
