//! Fig. 15 — Dequantization overhead analysis: (a) the fraction of kernel
//! time spent on dequantization for Atom, QServe and BitDecoding variants;
//! (b) micro-analysis of unit pressure (memory throughput, Tensor Core,
//! FMA, ALU) for Atom vs BitDecoding.

use bd_baselines::{BitDecodingSys, CudaOnly, DecodeSystem};
use bd_bench::{banner, row, shape, subbanner};
use bd_core::AttentionConfig;
use bd_gpu_sim::GpuArch;

fn main() {
    banner("Fig. 15: dequantization overhead (RTX 4090)");
    let arch = GpuArch::rtx4090();
    let attn = AttentionConfig::mha(32, 128);
    let s = shape(8, attn, 2048);

    subbanner("(a) fraction of kernel time in dequantization");
    let atom = CudaOnly::atom();
    let qserve = CudaOnly::qserve();
    let kt4 = BitDecodingSys::kt4();
    let kc4 = BitDecodingSys::kc4();
    let kc2 = BitDecodingSys::kc2();
    let systems: Vec<(&str, &dyn DecodeSystem)> = vec![
        ("Atom", &atom),
        ("QServe", &qserve),
        ("B-KT-4", &kt4),
        ("B-KC-4", &kc4),
        ("B-KC-2", &kc2),
    ];
    row(&["system".into(), "latency".into(), "dequant share".into()]);
    for (label, sys) in &systems {
        let lat = sys.latency(&s, &arch);
        row(&[
            (*label).to_owned(),
            format!("{:.3} ms", lat.total * 1e3),
            format!("{:.1}%", lat.dequant_fraction() * 100.0),
        ]);
    }

    subbanner("(b) micro analysis: unit pressure (percent of kernel time)");
    row(&[
        "system".into(),
        "Mem. T.".into(),
        "Tensor Core".into(),
        "FMA".into(),
        "ALU".into(),
    ]);
    let bd = BitDecodingSys::kt4();
    for (label, sys) in [("Atom", &atom as &dyn DecodeSystem), ("BitDecoding", &bd)] {
        let lat = sys.latency(&s, &arch);
        let occ = lat.occupancy.max(1e-9);
        let total = lat.total.max(1e-12);
        let mem = (lat.mem_wall / total * 100.0).min(100.0);
        let tc = (lat.tc_wall / total * 100.0).min(100.0);
        let fma = (lat.t_cuda_fma / occ / total * 100.0).min(100.0);
        let alu = ((lat.t_cuda - lat.t_cuda_fma) / occ / total * 100.0).min(100.0);
        row(&[
            label.to_owned(),
            format!("{mem:.1}%"),
            format!("{tc:.1}%"),
            format!("{fma:.1}%"),
            format!("{alu:.1}%"),
        ]);
    }

    println!();
    println!("Paper reference: Atom/QServe spend ~45-50% of kernel time dequantizing;");
    println!("BitDecoding <15% (4-bit) and ~35% (2-bit). Micro: Atom 72% mem / 0% TC /");
    println!("19% FMA / 33% ALU vs BitDecoding 88% mem / 24% TC / 13% FMA / 13% ALU.");
}
