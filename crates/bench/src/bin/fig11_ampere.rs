//! Fig. 11 — Kernel performance on the high-bandwidth A100, where kernels
//! shift toward compute-bound and CUDA-core-only systems fall below the
//! FP16 baseline.

use bd_baselines::{BitDecodingSys, CudaOnly, DecodeSystem, FlashDecoding, Kivi};
use bd_bench::{banner, shape, speedup_table};
use bd_core::AttentionConfig;
use bd_gpu_sim::GpuArch;

fn main() {
    banner("Fig. 11: A100 kernel performance");
    let arch = GpuArch::a100();
    let flash = FlashDecoding::v2();
    let kivi4 = Kivi::int4();
    let kivi2 = Kivi::int2();
    let qserve = CudaOnly::qserve();
    let kt4 = BitDecodingSys::kt4();
    let kc4 = BitDecodingSys::kc4();
    let kc2 = BitDecodingSys::kc2();

    let attn_single = AttentionConfig::gqa(128, 16, 128);
    let kernels: Vec<&dyn DecodeSystem> = vec![&kivi4, &kivi2, &kt4, &kc4, &kc2];
    let single: Vec<(String, _)> = [1024usize, 10240, 102400]
        .into_iter()
        .map(|l| (format!("{}k", l / 1024), shape(1, attn_single, l)))
        .collect();
    speedup_table(
        "Single: bs=1, h_q=128, h_k=16, d=128 (GQA)",
        &single,
        &kernels,
        &flash,
        &arch,
    );

    let batches: Vec<(String, _)> = [8usize, 32, 64, 128]
        .into_iter()
        .map(|bs| (format!("bs={bs}"), shape(bs, attn_single, 32768)))
        .collect();
    speedup_table(
        "Batches: len=32k, h_q=128, h_k=16, d=128 (GQA)",
        &batches,
        &kernels,
        &flash,
        &arch,
    );

    let attn_pages = AttentionConfig::gqa(32, 8, 128);
    let paged_kt4 = kt4.paged(true);
    let paged_kc4 = kc4.paged(true);
    let paged_kc2 = kc2.paged(true);
    let paged: Vec<&dyn DecodeSystem> = vec![&qserve, &paged_kt4, &paged_kc4, &paged_kc2];
    let pages: Vec<(String, _)> = [8usize, 16, 32, 64]
        .into_iter()
        .map(|bs| (format!("bs={bs}"), shape(bs, attn_pages, 2048)))
        .collect();
    speedup_table(
        "Pages: len=2k, h_q=32, h_k=8, d=128 (GQA)",
        &pages,
        &paged,
        &flash,
        &arch,
    );

    println!();
    println!("Paper reference: BitDecoding up to ~3x; KIVI and QServe fall below the");
    println!("FP16 baseline; the 4-bit vs 2-bit gap narrows versus the RTX 4090.");
}
