//! Fig. 14 — Runtime overhead of the residual KV cache: FP16
//! FlashDecoding-v2 vs INT4 without a residual region (whole cache packed)
//! vs INT4 with the residual region (extra Residual Kernel launch).

use bd_baselines::{BitDecodingSys, DecodeSystem, FlashDecoding};
use bd_bench::{banner, fmt_ms, row, subbanner};
use bd_core::{AttentionConfig, DecodeShape};
use bd_gpu_sim::GpuArch;

fn main() {
    banner("Fig. 14: runtime overhead of the residual KV cache (RTX 4090)");
    let arch = GpuArch::rtx4090();
    let attn = AttentionConfig::gqa(32, 8, 128);
    let fp16 = FlashDecoding::v2();
    let int4 = BitDecodingSys::kc4();

    subbanner("per-step kernel latency");
    row(&[
        "seq len".into(),
        "FP16 FlashDec-v2".into(),
        "INT4 w/o residual".into(),
        "INT4 w/ residual".into(),
        "overhead".into(),
    ]);
    for len in [4096usize, 16384, 32768, 65536, 131072] {
        let batch = 8;
        let fp16_t = fp16.latency_s(&DecodeShape::new(batch, attn, len), &arch);
        // Without residual: the entire cache is packed; no second kernel.
        let without = int4.latency_s(&DecodeShape::new(batch, attn, len), &arch);
        // With residual: a 64-token FP16 tail adds the Residual Kernel.
        let with = int4.latency_s(&DecodeShape::new(batch, attn, len).with_residual(64), &arch);
        row(&[
            format!("{}K", len / 1024),
            fmt_ms(fp16_t),
            fmt_ms(without),
            fmt_ms(with),
            format!("+{:.1} us", (with - without) * 1e6),
        ]);
    }

    println!();
    println!("Paper reference (ms): FP16 0.087/0.220/0.400/0.764/1.487; INT4 w/o");
    println!("0.041/0.094/0.162/0.291/0.555; INT4 w/ 0.057/0.112/0.180/0.309/0.572 —");
    println!("a fixed ~17 us residual-kernel launch that vanishes relative to long");
    println!("contexts.");
}
