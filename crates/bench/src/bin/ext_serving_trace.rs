//! Extension experiment: latency under load. A Poisson request trace is
//! served with continuous batching and paged KV management; the cache
//! format shapes both admission capacity and decode speed, so low-bit
//! caches win on tail latency as well as throughput.

use bd_baselines::{BitDecodingSys, DecodeSystem, FlashDecoding, Kivi};
use bd_bench::{banner, row, subbanner};
use bd_gpu_sim::GpuArch;
use bd_llm::{simulate_continuous_batching, synth_trace, ModelConfig, WeightPrecision};

fn main() {
    banner("Extension 3: continuous-batching latency under load (LLaMA-3.1-8B, A100)");
    let model = ModelConfig::llama31_8b();
    let arch = GpuArch::a100();

    let fp16 = FlashDecoding::v2();
    let kivi = Kivi::int4();
    let kc4 = BitDecodingSys::kc4().paged(true);
    let kc2 = BitDecodingSys::kc2().paged(true);
    let systems: Vec<(&str, &dyn DecodeSystem)> = vec![
        ("FP16 FlashDecoding", &fp16),
        ("KIVI-4", &kivi),
        ("BitDecoding KC-4", &kc4),
        ("BitDecoding KC-2", &kc2),
    ];

    for rate in [0.5f64, 2.0, 6.0] {
        let trace = synth_trace(rate, 60.0, (2048, 16384), 128, 7);
        subbanner(&format!(
            "offered load {rate} req/s, {} requests, prompts 2K-16K, 128 generated tokens",
            trace.len()
        ));
        row(&[
            "system".into(),
            "p50 latency".into(),
            "p95 latency".into(),
            "tok/s".into(),
            "mean batch".into(),
            "peak pool".into(),
        ]);
        for (label, sys) in &systems {
            let r = simulate_continuous_batching(
                model,
                *sys,
                arch.clone(),
                WeightPrecision::Fp16,
                &trace,
                64,
            );
            row(&[
                (*label).to_owned(),
                format!("{:.2} s", r.p50_latency_s),
                format!("{:.2} s", r.p95_latency_s),
                format!("{:.0}", r.tokens_per_s),
                format!("{:.1}", r.mean_batch),
                format!("{:.0}%", r.peak_pool_utilization * 100.0),
            ]);
        }
    }
    println!();
    println!("Low-bit caches fit ~4x the sequences per page pool AND decode each step");
    println!("faster, so the tail-latency gap over FP16 widens with offered load.");
}
