//! Fig. 12 — End-to-end comparison with non-fused KIVI on LLaMA-3.1-8B
//! (A100): (a) single-batch generation-latency speedup at 32K/64K/128K
//! (with KIVI's 128K OOM), (b) decode throughput vs batch size at 4K.

use bd_baselines::{BitDecodingSys, DecodeSystem, FlashDecoding, Kivi};
use bd_bench::{banner, fmt_x, row, subbanner};
use bd_gpu_sim::GpuArch;
use bd_llm::{Engine, MemoryModel, ModelConfig, WeightPrecision};

fn main() {
    banner("Fig. 12: end-to-end vs KIVI (LLaMA-3.1-8B, A100)");
    let model = ModelConfig::llama31_8b();
    let arch = GpuArch::a100();
    let mem = MemoryModel::new(&model, &arch, WeightPrecision::Fp16);

    let fp16 = FlashDecoding::v2();
    let kivi4 = Kivi::int4();
    let kivi2 = Kivi::int2();
    let kc4 = BitDecodingSys::kc4();
    let kc2 = BitDecodingSys::kc2();
    let systems: Vec<(&str, &dyn DecodeSystem)> = vec![
        ("Kivi-4", &kivi4),
        ("Kivi-2", &kivi2),
        ("BitDecoding-KC-4", &kc4),
        ("BitDecoding-KC-2", &kc2),
    ];

    subbanner("(a) Single: generation latency speedup vs FP16 (bs=1)");
    row(&[
        "system".into(),
        "32K".into(),
        "64K".into(),
        "128K".into(),
        "32K attn".into(),
        "128K attn".into(),
    ]);
    for (label, sys) in &systems {
        let mut cells = vec![(*label).to_owned()];
        let mut attn_cells = Vec::new();
        for len in [32768usize, 65536, 131072] {
            if mem.check(&model, *sys, 1, len).is_err() {
                cells.push("OOM".into());
                continue;
            }
            let e_base = Engine::new(model, &fp16, arch.clone());
            let e_sys = Engine::new(model, *sys, arch.clone());
            let sp = e_base.generation_latency(1, len, 128) / e_sys.generation_latency(1, len, 128);
            cells.push(fmt_x(sp));
        }
        // Attention-layer-only speedups (isolates what the kernel changes;
        // see EXPERIMENTS.md on the e2e weight-streaming floor).
        for len in [32768usize, 131072] {
            if mem.check(&model, *sys, 1, len).is_err() {
                attn_cells.push("OOM".into());
                continue;
            }
            let e_base = Engine::new(model, &fp16, arch.clone());
            let e_sys = Engine::new(model, *sys, arch.clone());
            let sp = e_base.attention_step_latency(1, len) / e_sys.attention_step_latency(1, len);
            attn_cells.push(fmt_x(sp));
        }
        cells.extend(attn_cells);
        row(&cells);
    }

    subbanner("(b) Batches: decode throughput (tokens/s) at len=4k");
    let mut header = vec!["system".to_owned()];
    let batches = [8usize, 16, 24, 32, 40, 48];
    header.extend(batches.iter().map(|b| format!("bs={b}")));
    row(&header);
    let mut all: Vec<(&str, &dyn DecodeSystem)> = vec![("FlashDecoding-v2", &fp16)];
    all.extend(systems.iter().map(|(l, s)| (*l, *s)));
    for (label, sys) in all {
        let mut cells = vec![label.to_owned()];
        let engine = Engine::new(model, sys, arch.clone());
        for &bs in &batches {
            if mem.check(&model, sys, bs, 4096).is_err() {
                cells.push("OOM".into());
            } else {
                cells.push(format!("{:.0}", engine.throughput(bs, 4096)));
            }
        }
        row(&cells);
    }

    println!();
    println!("Paper reference: (a) BitDecoding up to 3.3x at 128K, KIVI OOMs at 128K;");
    println!("(b) KC-4/KC-2 reach ~900/1200 tok/s while KIVI peaks below 700.");
}
