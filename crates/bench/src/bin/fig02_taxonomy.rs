//! Fig. 2 — The low-bit KV-cache system taxonomy: separated kernels
//! (KIVI), CUDA-core-only fused kernels (Atom/QServe), and BitDecoding's
//! cooperative Tensor Core + CUDA core design, on one workload.

use bd_baselines::{BitDecodingSys, CudaOnly, DecodeSystem, FlashDecoding, Kivi};
use bd_bench::{banner, row, shape, subbanner};
use bd_core::AttentionConfig;
use bd_gpu_sim::GpuArch;

fn main() {
    banner("Fig. 2: system taxonomy on one workload (GQA 32/8, len=8k, bs=8, RTX 4090)");
    let arch = GpuArch::rtx4090();
    let s = shape(8, AttentionConfig::gqa(32, 8, 128), 8192);

    let fp16 = FlashDecoding::v2();
    let kivi = Kivi::int4();
    let qserve = CudaOnly::qserve();
    let bd = BitDecodingSys::kc4();

    subbanner("per-step attention latency and unit usage");
    row(&[
        "system (style)".into(),
        "latency".into(),
        "speedup".into(),
        "launches".into(),
        "TC busy".into(),
        "dequant".into(),
    ]);
    let base = fp16.latency_s(&s, &arch);
    for (label, sys) in [
        ("FlashAttention (FP16 fused)", &fp16 as &dyn DecodeSystem),
        ("KIVI (separated kernels)", &kivi),
        ("QServe (CUDA-core fused)", &qserve),
        ("BitDecoding (cooperative)", &bd),
    ] {
        let lat = sys.latency(&s, &arch);
        let launches: f64 = sys.plan(&s, &arch).iter().map(|p| p.launches).sum();
        row(&[
            label.to_owned(),
            format!("{:.3} ms", lat.total * 1e3),
            format!("{:.2}x", base / lat.total),
            format!("{launches:.0}"),
            format!("{:.1}%", lat.tc_utilization() * 100.0),
            format!("{:.1}%", lat.dequant_fraction() * 100.0),
        ]);
    }

    println!();
    println!("The taxonomy of paper Fig. 2: non-fused designs multiply launches and");
    println!("round trips; CUDA-only fusion leaves Tensor Cores idle and serializes");
    println!("dequantization; BitDecoding overlaps both units.");
}
