//! Extension experiments beyond the paper's evaluation:
//!
//! 1. **Rotation ablation** (RotateKV/QuaRot direction, paper §VII(a)):
//!    Hadamard-rotating Q/K before quantization rescues tensor-wise Key
//!    scaling from channel outliers — quantifying how much of KC's accuracy
//!    advantage a rotation recovers for the cheaper KT layout.
//! 2. **NVFP4 vs MXFP4** (paper §V-D(2) mentions both): finer E4M3 block
//!    scales vs power-of-two E8M0, on accuracy and on Blackwell kernel
//!    speed (scale-metadata traffic differs).

use bd_accuracy::{evaluate_scheme, evaluate_scheme_rotated, longbench_proxy};
use bd_baselines::{BitDecodingSys, DecodeSystem, FlashDecoding};
use bd_bench::{banner, row, shape, subbanner};
use bd_core::AttentionConfig;
use bd_gpu_sim::GpuArch;
use bd_kvcache::QuantScheme;

fn main() {
    banner("Extension 1: outlier-smoothing rotation (d=128, 1K tokens)");
    subbanner("attention fidelity with and without Q/K Hadamard rotation");
    row(&[
        "scheme".into(),
        "rel-RMSE".into(),
        "rotated".into(),
        "cosine".into(),
        "rotated".into(),
        "proxy".into(),
        "rotated".into(),
    ]);
    for scheme in [
        QuantScheme::kt4(),
        QuantScheme::kc4(),
        QuantScheme::kt2(),
        QuantScheme::kc2(),
    ] {
        let plain = evaluate_scheme(scheme, 128, 1024, 2);
        let rot = evaluate_scheme_rotated(scheme, 128, 1024, 2);
        row(&[
            scheme.label(),
            format!("{:.4}", plain.output_rel_rmse),
            format!("{:.4}", rot.output_rel_rmse),
            format!("{:.4}", plain.cosine),
            format!("{:.4}", rot.cosine),
            format!("{:.2}", longbench_proxy(&plain)),
            format!("{:.2}", longbench_proxy(&rot)),
        ]);
    }
    println!();
    println!("Rotation spreads hot Key channels across the head dim: tensor-wise (KT)");
    println!("scaling approaches channel-wise (KC) accuracy, enabling the cheaper");
    println!("metadata layout — the RotateKV/QuaRot co-design the paper anticipates.");

    banner("Extension 2: NVFP4 vs MXFP4 on Blackwell");
    subbanner("accuracy (synthetic outlier KV)");
    row(&[
        "format".into(),
        "rel-RMSE".into(),
        "cosine".into(),
        "scale bytes/token".into(),
    ]);
    for scheme in [QuantScheme::mxfp4(), QuantScheme::nvfp4()] {
        let acc = evaluate_scheme(scheme, 128, 1024, 2);
        row(&[
            scheme.label(),
            format!("{:.4}", acc.output_rel_rmse),
            format!("{:.4}", acc.cosine),
            format!("{:.1}", scheme.params_bytes_per_token(128)),
        ]);
    }

    subbanner("kernel speedup over FP16 (GQA 32/8, len=32K)");
    let attn = AttentionConfig::gqa(32, 8, 128);
    let flash = FlashDecoding::v2();
    let mut header = vec!["format".to_owned()];
    let batches = [1usize, 8, 64];
    header.extend(batches.iter().map(|b| format!("bs={b}")));
    row(&header);
    for (arch, schemes) in [
        (
            GpuArch::rtx5090(),
            [QuantScheme::mxfp4(), QuantScheme::nvfp4()],
        ),
        (
            GpuArch::rtx_pro6000(),
            [QuantScheme::mxfp4(), QuantScheme::nvfp4()],
        ),
    ] {
        for scheme in schemes {
            let sys = BitDecodingSys::new(scheme);
            let mut cells = vec![format!("{} @ {}", scheme.label(), arch.name)];
            for &bs in &batches {
                let s = shape(bs, attn, 32768);
                cells.push(format!(
                    "{:.2}x",
                    flash.latency_s(&s, &arch) / sys.latency_s(&s, &arch)
                ));
            }
            row(&cells);
        }
    }
    println!();
    println!("NVFP4's E4M3 scales track block maxima ~2x tighter than E8M0's powers of");
    println!("two at 2x the scale-metadata traffic — visible as slightly better accuracy");
    println!("at nearly identical kernel speed.");
}
