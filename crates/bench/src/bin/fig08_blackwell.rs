//! Fig. 8 — Kernel performance with MXFP4 on Blackwell (RTX 5090 and
//! RTX PRO 6000): Single (seq-len sweep, bs = 1) and Batches (batch sweep,
//! 8K context), speedups over FP16 FlashDecoding-v2.

use bd_baselines::{BitDecodingSys, DecodeSystem, FlashDecoding, Kivi};
use bd_bench::{banner, shape, speedup_table};
use bd_core::AttentionConfig;
use bd_gpu_sim::GpuArch;
use bd_kvcache::QuantScheme;

fn main() {
    banner("Fig. 8: Blackwell MXFP4 kernel performance");
    let flash = FlashDecoding::v2();
    let kivi4 = Kivi::int4();
    let mxfp4 = BitDecodingSys::new(QuantScheme::mxfp4());
    let systems: Vec<&dyn DecodeSystem> = vec![&kivi4, &mxfp4];

    for (arch, single_attn) in [
        (GpuArch::rtx5090(), AttentionConfig::gqa(128, 8, 128)),
        (GpuArch::rtx_pro6000(), AttentionConfig::gqa(32, 8, 128)),
    ] {
        banner(&format!("(a/b) {arch}"));

        let single: Vec<(String, _)> = [8192usize, 32768, 131072]
            .into_iter()
            .map(|l| (format!("{}k", l / 1024), shape(1, single_attn, l)))
            .collect();
        speedup_table(
            &format!("Single: bs=1, h_q={}, h_k=8, d=128", single_attn.heads_q),
            &single,
            &systems,
            &flash,
            &arch,
        );

        let batch_attn = AttentionConfig::gqa(32, 8, 128);
        let batches: Vec<(String, _)> = [8usize, 32, 128]
            .into_iter()
            .map(|bs| (format!("bs={bs}"), shape(bs, batch_attn, 8192)))
            .collect();
        speedup_table(
            "Batches: len_kv=8k, h_q=32, h_k=8, d=128",
            &batches,
            &systems,
            &flash,
            &arch,
        );
    }
    println!();
    println!("Paper reference: up to 8.6x (batched) and >4.3x (single 128k) on RTX 5090;");
    println!("up to 6.5x on RTX PRO 6000 at large batch.");
}
