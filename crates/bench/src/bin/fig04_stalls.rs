//! Fig. 4 — Warp-stall analysis: inserting dequantization into
//! FlashAttention's original warp partitioning (a single warp along N)
//! collapses compute throughput and Tensor-Core utilization; the Wn=4
//! layout restores them.

use bd_baselines::{BitDecodingSys, DecodeSystem, FlashDecoding};
use bd_bench::{banner, row, shape, subbanner};
use bd_core::{AttentionConfig, OptimizationFlags};
use bd_gpu_sim::GpuArch;

fn main() {
    banner("Fig. 4: dequantization stalls under the original warp layout (RTX 4090)");
    let arch = GpuArch::rtx4090();
    let s = shape(8, AttentionConfig::gqa(32, 8, 128), 32768);

    let fp16 = FlashDecoding::v2();
    let wn1 = BitDecodingSys::kc4().with_flags(OptimizationFlags {
        warp_parallelism: false,
        cooperative_softmax: false,
        ..OptimizationFlags::ALL
    });
    let wn4 = BitDecodingSys::kc4();

    subbanner("micro-level comparison");
    row(&[
        "kernel".into(),
        "latency".into(),
        "TC util".into(),
        "mem-stall share".into(),
        "issue rate".into(),
    ]);
    for (label, sys) in [
        ("W/O dequant (FP16 FA)", &fp16 as &dyn DecodeSystem),
        ("W/ dequant, Wn=1 (FA layout)", &wn1),
        ("W/ dequant, Wn=4 (ours)", &wn4),
    ] {
        let lat = sys.latency(&s, &arch);
        let occ = lat.occupancy.max(1e-9);
        // Exposed (non-overlapped) memory time as the "memory stall" proxy.
        let stall = ((lat.total - lat.tc_wall - lat.t_cuda / occ) / lat.total).clamp(0.0, 1.0);
        let issue: f64 = sys
            .plan(&s, &arch)
            .iter()
            .map(|p| p.cuda.issue_slots() + p.tc_macs() / 256.0)
            .sum::<f64>()
            / lat.total;
        row(&[
            label.to_owned(),
            format!("{:.3} ms", lat.total * 1e3),
            format!("{:.1}%", lat.tc_utilization() * 100.0),
            format!("{:.1}%", stall * 100.0),
            format!("{:.2e}/s", issue),
        ]);
    }

    println!();
    println!("Paper reference (Fig. 4b): with dequant under the original layout, memory");
    println!("stalls rise and compute throughput / TC utilization drop by ~2x; the Wn");
    println!("re-partitioning recovers them.");
}
