//! Table II — Latency of quantization + packing during inference: Marlin-
//! and Ladder-style transform kernels vs BitDecoding's fused path, for a
//! 128K-token prefill and a single decode step.

use bd_baselines::{table2_row, TransformKind};
use bd_bench::{banner, row, subbanner};
use bd_gpu_sim::GpuArch;
use bd_kvcache::QuantScheme;

fn main() {
    banner("Table II: quantization + packing latency (128K context, A100)");
    let arch = GpuArch::a100();
    let seq = 131072;
    let dim = 128;

    subbanner("latency (ms)");
    row(&["system".into(), "Prefill".into(), "Decode".into()]);
    for kind in [
        TransformKind::Marlin,
        TransformKind::Ladder,
        TransformKind::BitDecoding,
    ] {
        let (prefill, decode) = table2_row(kind, &arch, seq, dim, QuantScheme::kc4(), 128);
        row(&[
            kind.label().to_owned(),
            format!("{prefill:.4}"),
            format!("{decode:.4}"),
        ]);
    }

    println!();
    println!("Paper reference (ms): Marlin 58.02 / 0.41; Ladder 4.79 / 0.65;");
    println!("BitDecoding 0.0599 / 0.008. Weight-oriented transforms must re-run layout");
    println!("passes over the dynamic cache; BitDecoding's fused pack touches only the");
    println!("residual block.");
}
