//! Fig. 16 — Breakdown of BitDecoding's optimizations across architecture
//! generations: continuous-packing baseline → +layout induction → +warp
//! parallelism → +software pipeline, as speedups over the baseline.

use bd_baselines::{BitDecodingSys, ContinuousPacking, DecodeSystem};
use bd_bench::{banner, fmt_x, row, shape, subbanner};
use bd_core::{AttentionConfig, OptimizationFlags};
use bd_gpu_sim::GpuArch;

fn main() {
    banner("Fig. 16: optimization breakdown across architectures");
    let attn = AttentionConfig::gqa(32, 8, 128);
    let s = shape(8, attn, 8192);
    let baseline = ContinuousPacking::kc4();

    let stages: Vec<(&str, OptimizationFlags)> = vec![
        (
            "+ Layout",
            OptimizationFlags {
                layout_induction: true,
                warp_parallelism: false,
                software_pipeline: false,
                cooperative_softmax: false,
            },
        ),
        (
            "+ Layout + Warps",
            OptimizationFlags {
                layout_induction: true,
                warp_parallelism: true,
                software_pipeline: false,
                cooperative_softmax: true,
            },
        ),
        ("+ Layout + Warps + Pipeline", OptimizationFlags::ALL),
    ];

    subbanner("speedup over the continuous-packing baseline (GQA, len=8k, bs=8)");
    let mut header = vec!["architecture".to_owned(), "Baseline".to_owned()];
    header.extend(stages.iter().map(|(l, _)| (*l).to_owned()));
    row(&header);

    for arch in [GpuArch::a100(), GpuArch::h100(), GpuArch::rtx5090()] {
        let base_t = baseline.latency_s(&s, &arch);
        let mut cells = vec![arch.name.to_owned(), fmt_x(1.0)];
        for (_, flags) in &stages {
            let sys = BitDecodingSys::kc4().with_flags(*flags);
            cells.push(fmt_x(base_t / sys.latency_s(&s, &arch)));
        }
        row(&cells);
    }

    println!();
    println!("Paper reference: layout induction unlocks Tensor Cores, warp parallelism");
    println!("adds a large further gain, the pipeline finishes at up to ~8-10x over the");
    println!("continuous-packing baseline, growing with architecture generation.");
}
