//! Seeded arrival-trace generators for serving benchmarks.
//!
//! Serving benchmarks need *reproducible* offered load: the same seed must
//! produce the same trace on every machine and every run, with no wall
//! clock anywhere. Both generators here drive a SplitMix64 stream — the
//! same tiny PRNG the kernels' property tests use — so a `(seed, params)`
//! pair fully determines the workload.
//!
//! Two arrival processes are provided:
//!
//! - [`poisson_trace`] — memoryless arrivals at a constant rate, the
//!   classic open-loop baseline.
//! - [`bursty_trace`] — a two-state Markov-modulated Poisson process
//!   (calm ↔ burst) that concentrates arrivals into episodes, the shape
//!   that actually stresses admission control and preemption. Its mean
//!   rate equals the requested rate, so bursty and Poisson traces of the
//!   same `(rate, duration)` are comparable head-to-head.

use bd_llm::Request;

/// SplitMix64: tiny, seedable, and identical everywhere. Each call
/// advances the state by the golden-ratio increment and mixes it.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the stream. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `(0, 1]` — never zero, so `ln()` is always finite.
    pub fn unit_open(&mut self) -> f64 {
        (((self.next_u64() >> 11) + 1) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponential draw with the given rate (events per second).
    pub fn exp(&mut self, rate: f64) -> f64 {
        -self.unit_open().ln() / rate
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }
}

/// Per-request size distribution shared by both generators: log-uniform
/// prompt lengths (matching [`bd_llm::synth_trace`]) and a fixed decode
/// budget.
#[derive(Clone, Copy, Debug)]
pub struct RequestShape {
    /// Inclusive prompt-length bounds in tokens.
    pub prompt_range: (usize, usize),
    /// Tokens each request generates.
    pub gen_tokens: usize,
}

impl RequestShape {
    fn sample(&self, rng: &mut SplitMix64) -> (usize, usize) {
        let (lo, hi) = self.prompt_range;
        let lu = (lo as f64).ln() + rng.unit_open() * ((hi as f64).ln() - (lo as f64).ln());
        (lu.exp().round() as usize, self.gen_tokens)
    }
}

/// Seeded Poisson arrivals: exponential inter-arrival times at
/// `rate_rps`, truncated at `duration_s`. Deterministic in `seed`.
pub fn poisson_trace(
    rate_rps: f64,
    duration_s: f64,
    shape: RequestShape,
    seed: u64,
) -> Vec<Request> {
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0f64;
    let mut out = Vec::new();
    loop {
        t += rng.exp(rate_rps);
        if t >= duration_s {
            return out;
        }
        let (prompt_tokens, gen_tokens) = shape.sample(&mut rng);
        out.push(Request {
            arrival_s: t,
            prompt_tokens,
            gen_tokens,
        });
    }
}

/// Parameters of the two-state burst process used by [`bursty_trace`].
#[derive(Clone, Copy, Debug)]
pub struct BurstProfile {
    /// Burst-state arrival rate as a multiple of the calm rate (> 1).
    pub burst_factor: f64,
    /// Mean dwell time in the calm state, seconds.
    pub calm_dwell_s: f64,
    /// Mean dwell time in the burst state, seconds.
    pub burst_dwell_s: f64,
}

impl Default for BurstProfile {
    fn default() -> Self {
        Self {
            burst_factor: 8.0,
            calm_dwell_s: 4.0,
            burst_dwell_s: 0.5,
        }
    }
}

impl BurstProfile {
    /// `(calm_rate, burst_rate)` whose dwell-weighted mean equals
    /// `mean_rps`.
    fn rates(&self, mean_rps: f64) -> (f64, f64) {
        // mean = (calm*dwell_c + calm*factor*dwell_b) / (dwell_c + dwell_b)
        let total = self.calm_dwell_s + self.burst_dwell_s;
        let calm = mean_rps * total / (self.calm_dwell_s + self.burst_factor * self.burst_dwell_s);
        (calm, calm * self.burst_factor)
    }
}

/// Seeded bursty arrivals: a Markov-modulated Poisson process that
/// alternates between a calm state and a burst state (exponential dwell
/// times), emitting Poisson arrivals at the state's rate. The
/// dwell-weighted mean rate equals `mean_rps`, so the trace is directly
/// comparable to `poisson_trace(mean_rps, ..)`. Deterministic in `seed`.
pub fn bursty_trace(
    mean_rps: f64,
    duration_s: f64,
    shape: RequestShape,
    profile: BurstProfile,
    seed: u64,
) -> Vec<Request> {
    let (calm_rate, burst_rate) = profile.rates(mean_rps);
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::new();
    let mut t = 0.0f64;
    let mut bursting = false;
    // End of the current state's dwell; arrivals past it are re-drawn in
    // the next state (thinning-free state switching: the exponential's
    // memorylessness makes restarting the draw at the boundary exact).
    let mut state_end = rng.exp(1.0 / profile.calm_dwell_s);
    while t < duration_s {
        let rate = if bursting { burst_rate } else { calm_rate };
        let next = t + rng.exp(rate);
        if next >= state_end {
            t = state_end;
            bursting = !bursting;
            let dwell = if bursting {
                profile.burst_dwell_s
            } else {
                profile.calm_dwell_s
            };
            state_end += rng.exp(1.0 / dwell);
            continue;
        }
        t = next;
        if t >= duration_s {
            break;
        }
        let (prompt_tokens, gen_tokens) = shape.sample(&mut rng);
        out.push(Request {
            arrival_s: t,
            prompt_tokens,
            gen_tokens,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: RequestShape = RequestShape {
        prompt_range: (256, 4096),
        gen_tokens: 64,
    };

    #[test]
    fn poisson_trace_is_deterministic_and_ordered() {
        let a = poisson_trace(2.0, 60.0, SHAPE, 0xBD);
        let b = poisson_trace(2.0, 60.0, SHAPE, 0xBD);
        assert_eq!(a, b, "same seed must reproduce the trace exactly");
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].arrival_s <= w[1].arrival_s);
        }
        for r in &a {
            assert!(r.arrival_s < 60.0);
            assert!((256..=4096 + 1).contains(&r.prompt_tokens));
            assert_eq!(r.gen_tokens, 64);
        }
        let c = poisson_trace(2.0, 60.0, SHAPE, 0xBE);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn poisson_rate_is_approximately_honoured() {
        let trace = poisson_trace(5.0, 400.0, SHAPE, 7);
        let rate = trace.len() as f64 / 400.0;
        assert!(
            (rate - 5.0).abs() < 0.5,
            "empirical rate {rate:.2} rps far from 5.0"
        );
    }

    #[test]
    fn bursty_trace_is_deterministic_and_mean_preserving() {
        let profile = BurstProfile::default();
        let a = bursty_trace(5.0, 400.0, SHAPE, profile, 0xBD);
        let b = bursty_trace(5.0, 400.0, SHAPE, profile, 0xBD);
        assert_eq!(a, b, "same seed must reproduce the trace exactly");
        for w in a.windows(2) {
            assert!(w[0].arrival_s <= w[1].arrival_s);
        }
        // Dwell-weighted mean rate ≈ requested mean rate.
        let rate = a.len() as f64 / 400.0;
        assert!(
            (rate - 5.0).abs() < 1.0,
            "empirical mean rate {rate:.2} rps far from 5.0"
        );
    }

    #[test]
    fn bursty_trace_actually_bursts() {
        // Compare the dispersion of per-second arrival counts: a Poisson
        // process has variance ≈ mean; the burst process must be clearly
        // over-dispersed.
        let dispersion = |trace: &[Request]| {
            let mut counts = vec![0f64; 400];
            for r in trace {
                counts[(r.arrival_s as usize).min(399)] += 1.0;
            }
            let mean = counts.iter().sum::<f64>() / counts.len() as f64;
            let var =
                counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64;
            var / mean.max(1e-9)
        };
        let poisson = poisson_trace(5.0, 400.0, SHAPE, 11);
        let bursty = bursty_trace(5.0, 400.0, SHAPE, BurstProfile::default(), 11);
        let dp = dispersion(&poisson);
        let db = dispersion(&bursty);
        assert!(
            db > 2.0 * dp,
            "bursty dispersion {db:.2} not clearly above poisson {dp:.2}"
        );
    }

    #[test]
    fn splitmix_draws_are_in_range() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..1000 {
            let u = rng.unit_open();
            assert!(u > 0.0 && u <= 1.0);
            let r = rng.range(3, 9);
            assert!((3..=9).contains(&r));
        }
    }
}
