//! Criterion microbenches over the functional hot paths: quantization,
//! packing, fast vs slow dequantization, fragment mapping, MMA tiles,
//! codec round trips, softmax tiles, and a full functional decode step.

use bd_core::{AttentionConfig, BitDecoder, FragmentCodec, OnlineSoftmax};
use bd_gpu_sim::{ldmatrix, mma, AccFragment, FragmentLayout, GpuArch, MmaShape, Operand, Tile};
use bd_kvcache::{BlockCodec, PackLayout, QuantScheme};
use bd_lowbit::{fastpath, pack_u32, quantize_group, BitWidth, PackOrder, QuantParams};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_quantize(c: &mut Criterion) {
    let values: Vec<f32> = (0..4096).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
    c.bench_function("quantize_group_4096_int4", |b| {
        b.iter(|| quantize_group(black_box(&values), BitWidth::B4))
    });
    c.bench_function("quantize_group_4096_int2", |b| {
        b.iter(|| quantize_group(black_box(&values), BitWidth::B2))
    });
}

fn bench_dequant_paths(c: &mut Criterion) {
    let params = QuantParams::from_min_max(-2.0, 2.0, BitWidth::B4);
    let codes: Vec<u8> = (0..8).collect();
    let reg = pack_u32(&codes, BitWidth::B4, PackOrder::FastDequant);
    c.bench_function("dequant_fast_lop3_8xint4", |b| {
        b.iter(|| fastpath::dequant_register(black_box(reg), BitWidth::B4, params))
    });
    c.bench_function("dequant_slow_cast_8xint4", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(8);
            for &code in &codes {
                out.push(params.dequantize(black_box(code)));
            }
            out
        })
    });
}

fn bench_fragments(c: &mut Criterion) {
    let layout = FragmentLayout::new(MmaShape::M16N8K16, Operand::B);
    let tile = Tile::from_fn(16, 8, |r, col| (r * 8 + col) as f32);
    c.bench_function("ldmatrix_16x8", |b| {
        b.iter(|| ldmatrix(black_box(&tile), layout))
    });

    let a_tile = Tile::from_fn(16, 16, |r, col| ((r + col) % 5) as f32 - 2.0);
    let b_tile = Tile::from_fn(16, 8, |r, col| ((r * 3 + col) % 7) as f32 * 0.5);
    let fa = ldmatrix(&a_tile, FragmentLayout::new(MmaShape::M16N8K16, Operand::A));
    let fb = ldmatrix(&b_tile, layout);
    c.bench_function("mma_m16n8k16", |b| {
        b.iter_batched(
            || AccFragment::zeroed(MmaShape::M16N8K16),
            |mut acc| mma(MmaShape::M16N8K16, black_box(&fa), black_box(&fb), &mut acc),
            BatchSize::SmallInput,
        )
    });
}

fn bench_codec(c: &mut Criterion) {
    let layout = PackLayout::sm80_default();
    let codec = FragmentCodec::new(layout);
    let scheme = QuantScheme::kc4();
    let nr = 128;
    let dim = 128;
    let k: Vec<Vec<f32>> = (0..nr)
        .map(|t| {
            (0..dim)
                .map(|ch| ((t * dim + ch) as f32 * 0.61).sin())
                .collect()
        })
        .collect();
    let v = k.clone();
    c.bench_function("fragment_codec_encode_block_128x128", |b| {
        b.iter(|| codec.encode(black_box(&k), black_box(&v), scheme))
    });
    let block = codec.encode(&k, &v, scheme);
    c.bench_function("fragment_codec_decode_block_128x128", |b| {
        b.iter(|| codec.decode(black_box(&block), scheme))
    });
}

fn bench_softmax(c: &mut Criterion) {
    let s = Tile::from_fn(4, 128, |r, col| ((r * 128 + col) as f32 * 0.17).sin() * 2.0);
    let v = Tile::from_fn(128, 64, |r, col| ((r * 64 + col) as f32 * 0.23).cos());
    c.bench_function("online_softmax_tile_4x128", |b| {
        b.iter_batched(
            || OnlineSoftmax::new(4, 64),
            |mut st| st.step_tile_warped(black_box(&s), black_box(&v), 4, true),
            BatchSize::SmallInput,
        )
    });
}

fn bench_decode(c: &mut Criterion) {
    let dec = BitDecoder::builder(GpuArch::rtx4090())
        .attention(AttentionConfig::gqa(8, 2, 32))
        .scheme(QuantScheme::kc4())
        .build();
    let mut cache = dec.new_cache(1);
    let codec = dec.codec();
    let kv: Vec<Vec<f32>> = (0..256)
        .map(|t| {
            (0..32)
                .map(|ch| ((t * 32 + ch) as f32 * 0.37).sin())
                .collect()
        })
        .collect();
    for head in 0..cache.heads() {
        cache.prefill(head, &kv, &kv, &codec).unwrap();
    }
    let q = vec![(0..8)
        .map(|h| {
            (0..32)
                .map(|ch| ((h * 32 + ch) as f32 * 0.71).sin())
                .collect()
        })
        .collect()];
    c.bench_function("functional_decode_step_gqa8x2_len256", |b| {
        b.iter(|| dec.decode(black_box(&q), black_box(&cache)).unwrap())
    });

    let shape = bd_core::DecodeShape::new(8, AttentionConfig::gqa(32, 8, 128), 32768);
    c.bench_function("analytic_latency_evaluation", |b| {
        b.iter(|| dec.latency(black_box(&shape)))
    });
}

criterion_group!(
    benches,
    bench_quantize,
    bench_dequant_paths,
    bench_fragments,
    bench_codec,
    bench_softmax,
    bench_decode
);
criterion_main!(benches);
