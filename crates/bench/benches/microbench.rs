//! Criterion microbenches over the functional hot paths: quantization,
//! packing, fast vs slow dequantization, fragment mapping, MMA tiles,
//! codec round trips, softmax tiles, a full functional decode step, and
//! the fused-vs-materializing decode comparison that records the
//! performance trajectory in `BENCH_decode.json`.

use bd_core::codec::FragmentCodec;
use bd_core::{
    attend_packed_blocks, attend_packed_blocks_fused, attend_packed_blocks_parallel,
    AttentionConfig, BitDecoder, MatmulEngine, OnlineSoftmax,
};
use bd_gpu_sim::{ldmatrix, mma, AccFragment, FragmentLayout, GpuArch, MmaShape, Operand, Tile};
use bd_kvcache::{BlockCodec, PackLayout, PackedBlock, QuantScheme, TokenMatrix};
use bd_lowbit::{fastpath, pack_u32, quantize_group, BitWidth, PackOrder, QuantParams};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn bench_quantize(c: &mut Criterion) {
    let values: Vec<f32> = (0..4096).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
    c.bench_function("quantize_group_4096_int4", |b| {
        b.iter(|| quantize_group(black_box(&values), BitWidth::B4))
    });
    c.bench_function("quantize_group_4096_int2", |b| {
        b.iter(|| quantize_group(black_box(&values), BitWidth::B2))
    });
}

fn bench_dequant_paths(c: &mut Criterion) {
    let params = QuantParams::from_min_max(-2.0, 2.0, BitWidth::B4);
    let codes: Vec<u8> = (0..8).collect();
    let reg = pack_u32(&codes, BitWidth::B4, PackOrder::FastDequant);
    c.bench_function("dequant_fast_lop3_8xint4", |b| {
        b.iter(|| fastpath::dequant_register(black_box(reg), BitWidth::B4, params))
    });
    c.bench_function("dequant_slow_cast_8xint4", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(8);
            for &code in &codes {
                out.push(params.dequantize(black_box(code)));
            }
            out
        })
    });
}

fn bench_fragments(c: &mut Criterion) {
    let layout = FragmentLayout::new(MmaShape::M16N8K16, Operand::B);
    let tile = Tile::from_fn(16, 8, |r, col| (r * 8 + col) as f32);
    c.bench_function("ldmatrix_16x8", |b| {
        b.iter(|| ldmatrix(black_box(&tile), layout))
    });

    let a_tile = Tile::from_fn(16, 16, |r, col| ((r + col) % 5) as f32 - 2.0);
    let b_tile = Tile::from_fn(16, 8, |r, col| ((r * 3 + col) % 7) as f32 * 0.5);
    let fa = ldmatrix(&a_tile, FragmentLayout::new(MmaShape::M16N8K16, Operand::A));
    let fb = ldmatrix(&b_tile, layout);
    c.bench_function("mma_m16n8k16", |b| {
        b.iter_batched(
            || AccFragment::zeroed(MmaShape::M16N8K16),
            |mut acc| mma(MmaShape::M16N8K16, black_box(&fa), black_box(&fb), &mut acc),
            BatchSize::SmallInput,
        )
    });
}

fn synth_matrix(tokens: usize, dim: usize, freq: f32) -> TokenMatrix {
    TokenMatrix::from_fn(tokens, dim, |t, ch| ((t * dim + ch) as f32 * freq).sin())
}

fn bench_codec(c: &mut Criterion) {
    let layout = PackLayout::sm80_default();
    let codec = FragmentCodec::new(layout);
    let scheme = QuantScheme::kc4();
    let k = synth_matrix(128, 128, 0.61);
    let v = k.clone();
    c.bench_function("fragment_codec_encode_block_128x128", |b| {
        b.iter(|| codec.encode(black_box(&k), black_box(&v), scheme))
    });
    let block = codec.encode(&k, &v, scheme);
    c.bench_function("fragment_codec_decode_block_128x128", |b| {
        b.iter(|| codec.decode(black_box(&block), scheme))
    });
    c.bench_function("fragment_codec_decode_fused_block_128x128", |b| {
        let mut kb = TokenMatrix::new(0);
        let mut vb = TokenMatrix::new(0);
        b.iter(|| codec.decode_block_fused(black_box(&block), scheme, &mut kb, &mut vb))
    });
}

fn bench_softmax(c: &mut Criterion) {
    let s = Tile::from_fn(4, 128, |r, col| ((r * 128 + col) as f32 * 0.17).sin() * 2.0);
    let v = Tile::from_fn(128, 64, |r, col| ((r * 64 + col) as f32 * 0.23).cos());
    c.bench_function("online_softmax_tile_4x128", |b| {
        b.iter_batched(
            || OnlineSoftmax::new(4, 64),
            |mut st| st.step_tile_warped(black_box(&s), black_box(&v), 4, true),
            BatchSize::SmallInput,
        )
    });
}

fn bench_decode(c: &mut Criterion) {
    let dec = BitDecoder::builder(GpuArch::rtx4090())
        .attention(AttentionConfig::gqa(8, 2, 32))
        .scheme(QuantScheme::kc4())
        .build();
    let mut cache = dec.new_cache(1);
    let codec = dec.codec();
    let kv = synth_matrix(256, 32, 0.37);
    for head in 0..cache.heads() {
        cache.prefill(head, &kv, &kv, &codec).unwrap();
    }
    let q = vec![(0..8)
        .map(|h| {
            (0..32)
                .map(|ch| ((h * 32 + ch) as f32 * 0.71).sin())
                .collect()
        })
        .collect()];
    c.bench_function("functional_decode_step_gqa8x2_len256", |b| {
        b.iter(|| dec.decode(black_box(&q), black_box(&cache)).unwrap())
    });

    let shape = bd_core::DecodeShape::new(8, AttentionConfig::gqa(32, 8, 128), 32768);
    c.bench_function("analytic_latency_evaluation", |b| {
        b.iter(|| dec.latency(black_box(&shape)))
    });
}

/// Wall-clock for one invocation of `f`, repeated until `budget` is spent
/// (at least `min_iters` times); returns the minimum seconds observed.
fn time_best(min_iters: usize, budget: Duration, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    let mut iters = 0usize;
    let start = Instant::now();
    while iters < min_iters || start.elapsed() < budget {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
        iters += 1;
        if iters >= 10_000 {
            break;
        }
    }
    best
}

struct DecodeBenchRow {
    scheme: QuantScheme,
    context: usize,
    materializing_tok_s: f64,
    fused_tok_s: f64,
    parallel_tok_s: f64,
}

/// The decode-path trajectory benchmark: materializing vs fused vs
/// thread-parallel fused, at 4-bit and 2-bit over 4K/32K/128K contexts.
/// KV-tokens/sec = context length / one decode-step attention pass.
/// Results are printed and recorded in `BENCH_decode.json` at the repo
/// root so later PRs have a perf baseline.
///
/// This is a multi-second workload that rewrites the committed baseline
/// file; set `BENCH_DECODE=0` to skip it (e.g. when iterating on the
/// quick microbenches above), or `BENCH_DECODE_JSON=0` to run it without
/// touching `BENCH_decode.json`.
fn bench_fused_vs_materializing(_c: &mut Criterion) {
    if std::env::var("BENCH_DECODE").as_deref() == Ok("0") {
        println!("decode trajectory bench skipped (BENCH_DECODE=0)");
        return;
    }
    let layout = PackLayout::sm80_default();
    let codec = FragmentCodec::new(layout);
    let d = 64;
    let gq = 4;
    let scale = 1.0 / (d as f32).sqrt();
    let q: Vec<Vec<f32>> = (0..gq)
        .map(|g| {
            (0..d)
                .map(|ch| ((g * d + ch) as f32 * 0.71).sin())
                .collect()
        })
        .collect();

    let mut rows = Vec::new();
    for scheme in [QuantScheme::kc4(), QuantScheme::kc2()] {
        let nr = layout.residual_block(scheme.int_width().unwrap());
        for context in [4096usize, 32768, 131072] {
            let n_blocks = context / nr;
            let blocks: Vec<PackedBlock> = (0..n_blocks)
                .map(|b| {
                    let k = synth_matrix(nr, d, 0.37 + b as f32 * 1e-4);
                    let v = synth_matrix(nr, d, 0.53 + b as f32 * 1e-4);
                    codec.encode(&k, &v, scheme)
                })
                .collect();

            // Budget shrinks as the materializing path slows with context.
            let budget = Duration::from_millis(if context > 40_000 { 200 } else { 400 });
            let t_mat = time_best(2, budget, || {
                let mut st = OnlineSoftmax::new(gq, d);
                attend_packed_blocks(
                    &q,
                    black_box(&blocks),
                    &codec,
                    scheme,
                    scale,
                    4,
                    true,
                    MatmulEngine::Mma,
                    &mut st,
                );
                black_box(st.finish());
            });
            let t_fused = time_best(2, budget, || {
                let mut st = OnlineSoftmax::new(gq, d);
                attend_packed_blocks_fused(
                    &q,
                    black_box(&blocks),
                    &codec,
                    scheme,
                    scale,
                    MatmulEngine::Mma,
                    &mut st,
                );
                black_box(st.finish());
            });
            let t_par = time_best(2, budget, || {
                let mut st = OnlineSoftmax::new(gq, d);
                attend_packed_blocks_parallel(
                    &q,
                    black_box(&blocks),
                    &codec,
                    scheme,
                    scale,
                    MatmulEngine::Mma,
                    &mut st,
                );
                black_box(st.finish());
            });

            let row = DecodeBenchRow {
                scheme,
                context,
                materializing_tok_s: context as f64 / t_mat,
                fused_tok_s: context as f64 / t_fused,
                parallel_tok_s: context as f64 / t_par,
            };
            println!(
                "decode {:>5} ctx {:>7}: materializing {:>11.0} tok/s | fused {:>12.0} tok/s ({:>5.1}x) | parallel {:>12.0} tok/s ({:>5.1}x)",
                row.scheme.label(),
                row.context,
                row.materializing_tok_s,
                row.fused_tok_s,
                row.fused_tok_s / row.materializing_tok_s,
                row.parallel_tok_s,
                row.parallel_tok_s / row.materializing_tok_s,
            );
            rows.push(row);
        }
    }
    write_bench_json(&rows);
}

fn write_bench_json(rows: &[DecodeBenchRow]) {
    if std::env::var("BENCH_DECODE_JSON").as_deref() == Ok("0") {
        println!("BENCH_decode.json left untouched (BENCH_DECODE_JSON=0)");
        return;
    }
    let mut json = String::from(
        "{\n  \"bench\": \"fused_vs_materializing_decode\",\n  \"unit\": \"kv_tokens_per_second\",\n  \"head_dim\": 64,\n  \"query_group\": 4,\n  \"engine\": \"mma.m16n8k16\",\n  \"results\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"context\": {}, \"materializing_tok_s\": {:.0}, \"fused_tok_s\": {:.0}, \"parallel_tok_s\": {:.0}, \"fused_speedup\": {:.2}, \"parallel_speedup\": {:.2}}}{}\n",
            r.scheme.label(),
            r.context,
            r.materializing_tok_s,
            r.fused_tok_s,
            r.parallel_tok_s,
            r.fused_tok_s / r.materializing_tok_s,
            r.parallel_tok_s / r.materializing_tok_s,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decode.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_quantize,
    bench_dequant_paths,
    bench_fragments,
    bench_codec,
    bench_softmax,
    bench_decode,
    bench_fused_vs_materializing
);
criterion_main!(benches);
