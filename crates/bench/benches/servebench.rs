//! Serving microbench: aggregate KV-tokens/second of the `bd-serve`
//! batched decode runtime vs **batch size and device count**, at 4-bit and
//! 2-bit, on device-pinned worker groups. Results are printed and recorded
//! in **`BENCH_serve.json`** at the repo root — the serving-throughput
//! trajectory baseline for later PRs.
//!
//! Set `BENCH_SERVE=0` to skip the run, or `BENCH_SERVE_JSON=0` to run it
//! without rewriting the committed baseline file.
//!
//! Reading the numbers: each `(sequence, kv-head, device)` work unit runs
//! on its device's pinned group, so aggregate throughput scales with
//! batch × devices up to the machine's core count. On a single-core
//! container (the reference environment) the honest signal is *flatness*:
//! the scheduler sustains the full single-core fused-kernel rate at every
//! batch size and device count — batching and sharding add no measurable
//! overhead — while per-sequence throughput divides by the batch. On a
//! multi-core box the aggregate column grows until cores saturate. The
//! per-device utilization column reports load balance relative to the
//! critical-path device (1.0 = perfectly balanced; 4 heads over 1/2/4
//! devices always balance exactly).

use bd_bench::traces::{bursty_trace, BurstProfile, RequestShape};
use bd_core::AttentionConfig;
use bd_gpu_sim::{builtin_topology, GpuArch};
use bd_kvcache::{Partitioning, QuantScheme};
use bd_llm::{
    serve_prefix_cache_functional, serve_shared_prompt_functional,
    serve_trace_policy_functional_obs, ServePolicy,
};
use bd_serve::{
    FaultPlan, ObsConfig, Quantiles, RequestId, ServeConfig, ServeSession, SloSummary, SpanTracer,
    SynthSequence,
};
use criterion::{criterion_group, criterion_main, Criterion};

const PROMPT: usize = 2048;
const GEN: usize = 4;
const WORKERS: usize = 2; // per device group

struct ServeBenchRow {
    scheme: QuantScheme,
    devices: usize,
    batch: usize,
    steps: usize,
    kv_tokens: u64,
    kv_tok_s: f64,
    per_seq_tok_s: f64,
    device_utilization: f64,
    interconnect_s: f64,
}

/// Best-of-`reps` run of one (scheme, devices, batch) configuration: each
/// rep builds a fresh session, so the best rep reflects steady-state
/// decode throughput rather than allocator warm-up or scheduler noise.
fn run_best(
    scheme: QuantScheme,
    devices: usize,
    batch: usize,
    reps: usize,
    obs: ObsConfig,
) -> ServeBenchRow {
    let mut best = run_config(scheme, devices, batch, obs);
    for _ in 1..reps {
        let row = run_config(scheme, devices, batch, obs);
        if row.kv_tok_s > best.kv_tok_s {
            best = row;
        }
    }
    best
}

fn run_config(scheme: QuantScheme, devices: usize, batch: usize, obs: ObsConfig) -> ServeBenchRow {
    let attn = AttentionConfig::gqa(8, 4, 64);
    let decoder = bd_core::BitDecoder::builder(GpuArch::rtx4090())
        .attention(attn)
        .scheme(scheme)
        .paged(true)
        .build();
    let pages_per_seq = (PROMPT + GEN).div_ceil(64) + 1;
    let config = ServeConfig::new(batch * pages_per_seq, 64, WORKERS, batch)
        .with_devices(devices, Partitioning::HeadModulo);
    let mut session = ServeSession::new(decoder, config).with_obs(obs);
    for i in 0..batch {
        session
            .submit(Box::new(SynthSequence::new(attn, i as u64, PROMPT, GEN)))
            .expect("fits pool");
    }
    let summary = session.run_to_completion();
    assert_eq!(summary.completed, batch);
    ServeBenchRow {
        scheme,
        devices: summary.devices,
        batch,
        steps: summary.steps,
        kv_tokens: summary.kv_tokens,
        kv_tok_s: summary.kv_tokens_per_s,
        per_seq_tok_s: summary.kv_tokens_per_s / batch as f64,
        device_utilization: summary.mean_device_utilization,
        interconnect_s: summary.modeled_interconnect_s,
    }
}

/// One policy's outcome on the over-subscribed scenario.
struct PolicyBenchRow {
    policy: &'static str,
    kv_tok_s: f64,
    p50_completion: usize,
    p95_completion: usize,
    late_small_completion: usize,
    preemptions: usize,
    swap_mib: f64,
}

/// Percentile over completion steps (nearest-rank).
fn percentile(sorted: &[usize], p: f64) -> usize {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank - 1]
}

/// The head-of-line scenario: a page pool sized for roughly **half** the
/// offered load, hit by four big early requests and four small late
/// arrivals. FCFS makes the small requests wait out the big ones;
/// preemption and SRF let them through. All three policies decode the
/// identical token values (the proptests pin that down bitwise); only the
/// completion-step distribution moves.
fn run_oversubscribed(policy: ServePolicy) -> PolicyBenchRow {
    run_oversubscribed_obs(policy, ObsConfig::off()).0
}

/// [`run_oversubscribed`] with an observability config; returns the SLO
/// rollup alongside the row (all-zero unless lifecycle tracking was on).
fn run_oversubscribed_obs(policy: ServePolicy, obs: ObsConfig) -> (PolicyBenchRow, SloSummary) {
    let attn = AttentionConfig::gqa(8, 4, 64);
    let decoder = bd_core::BitDecoder::builder(GpuArch::rtx4090())
        .attention(attn)
        .scheme(QuantScheme::kc4())
        .paged(true)
        .build();
    let page_tokens = 64;
    let big = (1024usize, 16usize);
    let small = (128usize, 8usize);
    let demand =
        4 * (big.0 + big.1).div_ceil(page_tokens) + 4 * (small.0 + small.1).div_ceil(page_tokens);
    let config = ServeConfig::new(demand / 2, page_tokens, WORKERS, 8);
    let mut session = policy.install(ServeSession::new(decoder, config).with_obs(obs));
    let mut ids: Vec<RequestId> = Vec::new();
    for i in 0..4u64 {
        ids.push(
            session
                .submit(Box::new(SynthSequence::new(attn, i, big.0, big.1)))
                .expect("fits pool"),
        );
    }
    // The small requests arrive once the big ones are decoding.
    for i in 4..8u64 {
        ids.push(
            session
                .submit_at(
                    2 + i as usize,
                    Box::new(SynthSequence::new(attn, i, small.0, small.1)),
                )
                .expect("fits pool"),
        );
    }
    let summary = session.run_to_completion();
    assert_eq!(summary.completed, 8);
    let mut completions: Vec<usize> = ids
        .iter()
        .map(|id| session.completion_step(*id).expect("completed"))
        .collect();
    let late_small_completion = completions[7];
    completions.sort_unstable();
    let row = PolicyBenchRow {
        policy: session.policy_label(),
        kv_tok_s: summary.kv_tokens_per_s,
        p50_completion: percentile(&completions, 50.0),
        p95_completion: percentile(&completions, 95.0),
        late_small_completion,
        preemptions: summary.preemptions,
        swap_mib: summary.swap_bytes / (1024.0 * 1024.0),
    };
    (row, summary.slo)
}

/// The trace-driven SLO scenario: a seeded bursty (two-state MMPP)
/// arrival trace from `bd_bench::traces` enters the session mid-run via
/// `submit_at`, served by the preempting policy with lifecycle tracking
/// on. Returns the SLO rollup and the trace length. Deterministic in the
/// hard-coded seed.
fn run_bursty_slo() -> (SloSummary, usize) {
    let attn = AttentionConfig::gqa(8, 4, 64);
    let shape = RequestShape {
        prompt_range: (256, 1024),
        gen_tokens: 16,
    };
    let trace = bursty_trace(1.0, 24.0, shape, BurstProfile::default(), 0xBD);
    // Pool sized well under the peak burst demand: every request fits on
    // its own, but burst episodes queue (and preempt) behind the pool.
    let config = ServeConfig::new(48, 64, WORKERS, 8);
    let report = serve_trace_policy_functional_obs(
        GpuArch::rtx4090(),
        attn,
        QuantScheme::kc4(),
        &trace,
        2.0,
        config,
        ServePolicy::FcfsPreempt,
        ObsConfig::off().with_lifecycle(true),
    )
    .expect("every trace request fits the pool");
    assert_eq!(report.completed, trace.len());
    (report.slo, trace.len())
}

/// One heterogeneous-fleet run's outcome.
struct HeterogeneousRow {
    partitioning: &'static str,
    heads_per_device: Vec<usize>,
    kv_tok_s: f64,
    /// Mean per-device utilization relative to the critical-path device,
    /// speed-aware: each device's tokens are normalized by its modeled
    /// throughput weight before comparing against the slowest-finishing
    /// device. 1.0 = the fleet is perfectly balanced in *time*.
    critical_path_utilization: f64,
    interconnect_s: f64,
}

/// The mixed 2×H100 + 2×A100 fleet (`profiles/mixed_h100_a100.topo`):
/// 16 KV heads apportioned by modeled decode throughput (weighted →
/// [5, 5, 3, 3]) vs uniformly (head-modulo → [4, 4, 4, 4]) on the same
/// hierarchical fabric. Both runs emit bitwise-identical token streams;
/// only the load balance and the modeled clock move.
fn run_heterogeneous() -> Vec<HeterogeneousRow> {
    let attn = AttentionConfig::gqa(16, 16, 64);
    let (batch, prompt, gen, page_tokens) = (4usize, 512usize, 4usize, 64usize);
    let pages_per_seq = (prompt + gen).div_ceil(page_tokens) + 1;
    let topo = builtin_topology("mixed_h100_a100").expect("shipped topology");
    let mut rows = Vec::new();
    let mut streams: Vec<Vec<Vec<u32>>> = Vec::new();
    for (label, partitioning) in [
        ("weighted", None),
        ("head_modulo", Some(Partitioning::HeadModulo)),
    ] {
        let decoder = bd_core::BitDecoder::builder(GpuArch::rtx4090())
            .attention(attn)
            .scheme(QuantScheme::kc4())
            .paged(true)
            .build();
        let mut config = ServeConfig::new(batch * pages_per_seq, page_tokens, WORKERS, batch)
            .with_topology(topo.clone());
        if let Some(p) = partitioning {
            config = config.with_devices(4, p);
        }
        let mut session = ServeSession::new(decoder, config);
        let ids: Vec<RequestId> = (0..batch)
            .map(|i| {
                session
                    .submit(Box::new(SynthSequence::new(attn, i as u64, prompt, gen)))
                    .expect("fits pool")
            })
            .collect();
        let summary = session.run_to_completion();
        assert_eq!(summary.completed, batch);
        streams.push(
            ids.iter()
                .map(|id| session.stream(*id).expect("completed").to_vec())
                .collect(),
        );
        rows.push(HeterogeneousRow {
            partitioning: label,
            heads_per_device: (0..session.devices())
                .map(|d| {
                    session
                        .store()
                        .device_stats(bd_kvcache::DeviceId(d as u32))
                        .heads
                })
                .collect(),
            kv_tok_s: summary.kv_tokens_per_s,
            critical_path_utilization: summary.mean_device_utilization,
            interconnect_s: summary.modeled_interconnect_s,
        });
    }
    assert_eq!(
        streams[0], streams[1],
        "weighted and modulo placement must emit bitwise-identical streams"
    );
    assert_eq!(rows[0].heads_per_device, vec![5, 5, 3, 3]);
    assert_eq!(rows[1].heads_per_device, vec![4, 4, 4, 4]);
    assert!(
        rows[0].critical_path_utilization > rows[1].critical_path_utilization,
        "weighted placement must balance the mixed fleet better than modulo ({:.3} vs {:.3})",
        rows[0].critical_path_utilization,
        rows[1].critical_path_utilization,
    );
    rows
}

/// Decode length of the shared-prefix long-run mode: long enough that
/// steady-state decode (not prefill) dominates the wall clock, so the
/// cascade kernel's compute dedup shows up in the throughput column.
const GEN_SHARED: usize = 64;

/// One shared-prefix scenario's outcome: `sequences` requests carrying
/// the same long prompt, served with and without copy-on-write prefix
/// sharing (which, when on, also lets the scheduler form cascade
/// shared-prefix attention groups that walk the shared packed pages once
/// per step).
struct SharedPrefixRow {
    sequences: usize,
    mode: &'static str,
    gen_tokens: usize,
    steps: usize,
    peak_pages: usize,
    kv_tok_s: f64,
    /// Shared throughput over the paired unshared run (1.0 for unshared).
    speedup: f64,
    forks: usize,
    bytes_saved_kib: f64,
    shared_attn_groups: usize,
    prefix_pages_walked_saved: usize,
}

/// N sequences sharing the 2048-token prompt vs the same N prefilling it
/// privately — identical token output (the proptests pin that down
/// bitwise), different physical page footprint AND different compute:
/// the shared run's cascade groups stream each packed prefix page through
/// the dequant LUTs once per `(group, head)` instead of once per sharer.
/// Best-of-`reps` on the throughput column, like [`run_best`].
fn run_shared_prefix(sequences: usize, share: bool, reps: usize) -> SharedPrefixRow {
    let attn = AttentionConfig::gqa(8, 4, 64);
    let page_tokens = 64;
    let pages_per_seq = (PROMPT + GEN_SHARED).div_ceil(page_tokens) + 1;
    let run = || {
        let config = ServeConfig::new(sequences * pages_per_seq, page_tokens, WORKERS, sequences);
        serve_shared_prompt_functional(
            GpuArch::rtx4090(),
            attn,
            QuantScheme::kc4(),
            sequences,
            PROMPT,
            GEN_SHARED,
            share,
            config,
        )
        .expect("fits pool")
    };
    let mut report = run();
    for _ in 1..reps {
        let rep = run();
        if rep.kv_tokens_per_s > report.kv_tokens_per_s {
            report = rep;
        }
    }
    assert_eq!(report.completed, sequences);
    if share {
        // In-run reconciliation at devices=1 with a page- and
        // block-aligned prompt: every step forms one group per KV head
        // covering all N sharers, and each group skips the full
        // 2048-token shared prefix for all but one sharer. `gen <
        // residual_block` means no mid-run block flush, so no CoW break
        // ever shrinks the shared run.
        let shared_pages = PROMPT / page_tokens;
        assert_eq!(
            report.shared_attn_groups,
            attn.heads_kv * report.steps,
            "{sequences} sharers: cascade groups did not form every step"
        );
        assert_eq!(
            report.prefix_pages_walked_saved,
            attn.heads_kv * (sequences - 1) * shared_pages * report.steps,
            "{sequences} sharers: pages-walked-saved disagrees with the sharing stats"
        );
    } else {
        assert_eq!(report.shared_attn_groups, 0, "unshared run formed a group");
        assert_eq!(report.prefix_pages_walked_saved, 0);
    }
    SharedPrefixRow {
        sequences,
        mode: if share { "shared" } else { "unshared" },
        gen_tokens: GEN_SHARED,
        steps: report.steps,
        peak_pages: report.peak_physical_pages,
        kv_tok_s: report.kv_tokens_per_s,
        speedup: 1.0,
        forks: report.forks,
        bytes_saved_kib: report.peak_shared_bytes_saved as f64 / 1024.0,
        shared_attn_groups: report.shared_attn_groups,
        prefix_pages_walked_saved: report.prefix_pages_walked_saved,
    }
}

/// One content-dedup scenario's outcome: `tenants` *independent*
/// requests (no `fork` call anywhere) that happen to carry the same
/// 2048-token prompt, served with the radix prefix cache on ("radix")
/// or off ("cold").
struct PrefixCacheRow {
    tenants: usize,
    mode: &'static str,
    steps: usize,
    peak_pages: usize,
    kv_tok_s: f64,
    hits: usize,
    misses: usize,
    pages_reused: usize,
    bytes_reused_kib: f64,
    shared_attn_groups: usize,
}

/// N identical-prompt tenants submitted independently: with the cache on,
/// every tenant after the first adopts the sealed prompt page runs by
/// content hash — no fork API, no coordination — and the adopted pages
/// feed the same cascade attention groups an explicit fork would.
/// Returns the row plus the token streams for the bitwise check.
fn run_prefix_cache(tenants: usize, cache: bool, reps: usize) -> (PrefixCacheRow, Vec<Vec<u32>>) {
    let attn = AttentionConfig::gqa(8, 4, 64);
    let page_tokens = 64;
    let pages_per_seq = (PROMPT + GEN_SHARED).div_ceil(page_tokens) + 1;
    let run = || {
        let config = ServeConfig::new(tenants * pages_per_seq, page_tokens, WORKERS, tenants);
        serve_prefix_cache_functional(
            GpuArch::rtx4090(),
            attn,
            QuantScheme::kc4(),
            tenants,
            PROMPT,
            GEN_SHARED,
            cache,
            config,
        )
        .expect("fits pool")
    };
    let mut report = run();
    for _ in 1..reps {
        let rep = run();
        if rep.kv_tokens_per_s > report.kv_tokens_per_s {
            report = rep;
        }
    }
    assert_eq!(report.completed, tenants);
    assert_eq!(report.forks, 0, "content dedup must not fork");
    let prompt_pages = PROMPT / page_tokens;
    if cache {
        // The 2048-token prompt is run-aligned at KC-4 (Nr = 128, 2 pages
        // per run), so adoption is exact: one miss seeds the index and
        // every later tenant reuses the full 32-page prompt.
        assert_eq!(report.prefix_cache_misses, 1);
        assert_eq!(report.prefix_cache_hits, tenants - 1);
        assert_eq!(report.prefix_pages_reused, (tenants - 1) * prompt_pages);
        assert!(
            report.shared_attn_groups > 0,
            "{tenants} tenants: radix hits formed no cascade groups"
        );
    } else {
        assert_eq!(report.prefix_cache_hits + report.prefix_pages_reused, 0);
        assert_eq!(report.shared_attn_groups, 0, "cold run formed a group");
    }
    let row = PrefixCacheRow {
        tenants,
        mode: if cache { "radix" } else { "cold" },
        steps: report.steps,
        peak_pages: report.peak_physical_pages,
        kv_tok_s: report.kv_tokens_per_s,
        hits: report.prefix_cache_hits,
        misses: report.prefix_cache_misses,
        pages_reused: report.prefix_pages_reused,
        bytes_reused_kib: report.prefix_bytes_reused as f64 / 1024.0,
        shared_attn_groups: report.shared_attn_groups,
    };
    (row, report.token_streams)
}

/// One degraded-mode scenario's outcome: the fixed 6-request workload
/// under a fault plan (or none).
struct DegradedRow {
    mode: &'static str,
    devices_end: usize,
    kv_tok_s: f64,
    mean_first_token_step: f64,
    mean_completion_step: f64,
    faults: usize,
    recoveries: usize,
    degraded_steps: usize,
}

/// The same 6-request workload on 4 devices, three ways: healthy,
/// post-failure (a device dies before decode starts, so the whole run
/// executes on 3 survivors), and recovery-in-progress (the loss strikes
/// mid-run, so the run also pays the recompute replays). Token values are
/// identical in all three (the chaos proptests pin that down bitwise);
/// only throughput and the completion/TTFT trajectory move.
fn run_degraded(mode: &'static str, plan: FaultPlan) -> DegradedRow {
    let attn = AttentionConfig::gqa(8, 4, 64);
    let decoder = bd_core::BitDecoder::builder(GpuArch::rtx4090())
        .attention(attn)
        .scheme(QuantScheme::kc4())
        .paged(true)
        .build();
    let (batch, prompt, gen, page_tokens) = (6usize, 512usize, 8usize, 64usize);
    let pages = batch * (prompt + gen).div_ceil(page_tokens) + 2;
    let config = ServeConfig::new(pages, page_tokens, WORKERS, batch)
        .with_devices(4, Partitioning::HeadModulo);
    let mut session = ServeSession::new(decoder, config).with_faults(plan);
    let ids: Vec<RequestId> = (0..batch)
        .map(|i| {
            session
                .submit(Box::new(SynthSequence::new(attn, i as u64, prompt, gen)))
                .expect("fits pool")
        })
        .collect();
    let mut first_token: Vec<Option<usize>> = vec![None; ids.len()];
    let start = session.metrics().len();
    while let Some(m) = session.step() {
        for (slot, id) in first_token.iter_mut().zip(&ids) {
            if slot.is_none() && session.stream(*id).is_some_and(|s| !s.is_empty()) {
                *slot = Some(m.step);
            }
        }
    }
    let run = &session.metrics()[start..];
    let kv_tokens: u64 = run.iter().map(|m| m.kv_tokens as u64).sum();
    let wall_s: f64 = run.iter().map(|m| m.wall_s).sum();
    let completions: Vec<usize> = ids
        .iter()
        .map(|id| session.completion_step(*id).expect("completed"))
        .collect();
    DegradedRow {
        mode,
        devices_end: session.devices(),
        kv_tok_s: if wall_s > 0.0 {
            kv_tokens as f64 / wall_s
        } else {
            0.0
        },
        mean_first_token_step: first_token
            .iter()
            .map(|t| t.expect("streamed") as f64)
            .sum::<f64>()
            / ids.len() as f64,
        mean_completion_step: completions.iter().sum::<usize>() as f64 / ids.len() as f64,
        faults: run.iter().map(|m| m.faults_injected).sum(),
        recoveries: run.iter().map(|m| m.recoveries).sum(),
        degraded_steps: run.iter().filter(|m| m.degraded).count(),
    }
}

/// Gate on the disabled instruments' cost: a default-config session keeps
/// the tracer plumbed through the hot path, so begin/end must stay in the
/// nanosecond range. Measured over enough iterations to swamp timer
/// resolution; the bound is loose enough for a busy single-core container
/// and tight enough to catch an accidental always-on lock or clock read
/// (hundreds of ns).
fn assert_noop_obs_is_cheap() {
    let tracer = SpanTracer::disabled();
    let iters = 1_000_000u64;
    let t = std::time::Instant::now();
    for _ in 0..iters {
        let s = std::hint::black_box(tracer.begin());
        tracer.end(s, "noop", 0);
    }
    let ns_per_op = t.elapsed().as_nanos() as f64 / iters as f64;
    println!("obs disabled span begin/end: {ns_per_op:.1} ns per pair");
    assert!(
        ns_per_op < 250.0,
        "disabled tracer costs {ns_per_op:.1} ns per begin/end pair"
    );
}

fn bench_serve(_c: &mut Criterion) {
    if std::env::var("BENCH_SERVE").as_deref() == Ok("0") {
        println!("serve trajectory bench skipped (BENCH_SERVE=0)");
        return;
    }
    assert_noop_obs_is_cheap();
    let mut rows = Vec::new();
    for scheme in [QuantScheme::kc4(), QuantScheme::kc2()] {
        for devices in [1usize, 2, 4] {
            for batch in [1usize, 4, 16] {
                // Small runs are cheap: average out noise with more reps.
                let reps = if batch <= 4 { 3 } else { 2 };
                let row = run_best(scheme, devices, batch, reps, ObsConfig::default());
                println!(
                    "serve {:>5} dev {:>2} batch {:>2}: {:>4} steps, {:>8} kv tokens, aggregate {:>9.0} kv-tok/s ({:>8.0} per seq), dev util {:>4.2}, allreduce {:>6.1} us",
                    row.scheme.label(),
                    row.devices,
                    row.batch,
                    row.steps,
                    row.kv_tokens,
                    row.kv_tok_s,
                    row.per_seq_tok_s,
                    row.device_utilization,
                    row.interconnect_s * 1e6,
                );
                rows.push(row);
            }
        }
    }
    // Scheduler-policy comparison under an over-subscribed pool (~half
    // the offered load).
    let policy_rows: Vec<PolicyBenchRow> = [
        ServePolicy::Fcfs,
        ServePolicy::FcfsPreempt,
        ServePolicy::ShortestRemainingFirst,
    ]
    .into_iter()
    .map(run_oversubscribed)
    .collect();
    for r in &policy_rows {
        println!(
            "oversubscribed {:>24}: {:>9.0} kv-tok/s, completion p50 {:>3} p95 {:>3}, late small done @{:>3}, {} preemptions, {:>6.2} MiB swapped",
            r.policy,
            r.kv_tok_s,
            r.p50_completion,
            r.p95_completion,
            r.late_small_completion,
            r.preemptions,
            r.swap_mib,
        );
    }
    // Request-lifecycle SLO distributions: a seeded *bursty* arrival
    // trace (two-state MMPP from `bd_bench::traces`) entering mid-run via
    // `submit_at`, served by the preempting policy with lifecycle
    // tracking on. Bursts over-subscribe the pool in episodes, so the
    // tail quantiles reflect queueing under realistic open-loop load
    // rather than a hand-placed worst case. Deterministic in the seed.
    let (slo, slo_submitted) = run_bursty_slo();
    assert_eq!(
        slo.completed, slo.submitted,
        "tracked run must complete all requests"
    );
    assert_eq!(slo.submitted as usize, slo_submitted);
    assert!(slo.ttft_steps.p99 >= slo.ttft_steps.p50);
    println!(
        "slo (bursty trace, fcfs-preempt): {} requests, ttft steps p50 {:.0} p99 {:.0}, tbt steps p99 {:.0}, queue wait p99 {:.0}, goodput p50 {:.0} tok/s, {} preemptions attributed",
        slo.submitted,
        slo.ttft_steps.p50,
        slo.ttft_steps.p99,
        slo.tbt_steps.p99,
        slo.queue_wait_steps.p99,
        slo.goodput_tok_s.p50,
        slo.preemptions,
    );
    // Heterogeneous fleet: the mixed 2×H100 + 2×A100 topology, weighted
    // placement vs head-modulo on the same fabric.
    let het_rows = run_heterogeneous();
    for r in &het_rows {
        println!(
            "heterogeneous {:>12}: heads/device {:?}, {:>9.0} kv-tok/s, critical-path dev util {:>5.3}, allreduce {:>6.1} us",
            r.partitioning, r.heads_per_device, r.kv_tok_s, r.critical_path_utilization,
            r.interconnect_s * 1e6,
        );
    }
    // Shared-prefix long-run comparison: N sequences over one 2048-token
    // prompt decoding 64 tokens each, with and without copy-on-write page
    // sharing (sharing also enables cascade grouped attention).
    let mut shared_rows: Vec<SharedPrefixRow> = Vec::new();
    for sequences in [2usize, 4, 8, 16] {
        for share in [false, true] {
            let mut row = run_shared_prefix(sequences, share, 2);
            if share {
                let unshared = shared_rows.last().expect("paired unshared row first");
                row.speedup = row.kv_tok_s / unshared.kv_tok_s;
            }
            println!(
                "shared-prefix {:>2} seqs {:>8}: peak {:>4} pages, {:>9.0} kv-tok/s ({:>5.2}x), {} forks, {:>7.1} KiB deduped, {:>4} groups, {:>6} prefix pages not re-walked",
                row.sequences, row.mode, row.peak_pages, row.kv_tok_s, row.speedup,
                row.forks, row.bytes_saved_kib, row.shared_attn_groups,
                row.prefix_pages_walked_saved,
            );
            shared_rows.push(row);
        }
    }
    // The acceptance bars: at equal output, the shared run's physical
    // page usage is strictly below the unshared run's, and at 8+ sharers
    // the cascade compute dedup must buy real aggregate throughput.
    for pair in shared_rows.chunks(2) {
        assert!(
            pair[1].peak_pages < pair[0].peak_pages,
            "sharing did not shrink the page footprint at {} seqs ({} vs {})",
            pair[0].sequences,
            pair[1].peak_pages,
            pair[0].peak_pages,
        );
        if pair[0].sequences >= 8 {
            assert!(
                pair[1].speedup >= 1.5,
                "{} sharers: shared aggregate {:.0} kv-tok/s is only {:.2}x the unshared {:.0}",
                pair[0].sequences,
                pair[1].kv_tok_s,
                pair[1].speedup,
                pair[0].kv_tok_s,
            );
        }
    }
    // Content-addressed dedup: the same identical-prompt workload with NO
    // fork calls — independent tenants, deduped purely by the radix
    // prefix cache — against the cold (cache-off) twin.
    let mut prefix_rows: Vec<PrefixCacheRow> = Vec::new();
    for tenants in [2usize, 8] {
        let (cold_row, cold_streams) = run_prefix_cache(tenants, false, 1);
        let (radix_row, radix_streams) = run_prefix_cache(tenants, true, 2);
        assert_eq!(
            radix_streams, cold_streams,
            "{tenants} tenants: the radix cache changed token values"
        );
        assert!(
            radix_row.peak_pages < cold_row.peak_pages,
            "{} tenants: content dedup did not shrink the footprint ({} vs {})",
            tenants,
            radix_row.peak_pages,
            cold_row.peak_pages,
        );
        for row in [cold_row, radix_row] {
            println!(
                "prefix-cache {:>2} tenants {:>5}: peak {:>4} pages, {:>9.0} kv-tok/s, {} hits {} misses, {:>4} pages adopted, {:>8.1} KiB reused, {:>4} groups",
                row.tenants, row.mode, row.peak_pages, row.kv_tok_s, row.hits,
                row.misses, row.pages_reused, row.bytes_reused_kib,
                row.shared_attn_groups,
            );
            prefix_rows.push(row);
        }
    }
    // The acceptance bar: at 8 tenants, transparent content dedup matches
    // the explicit-fork shared-prefix footprint to within one page run
    // (KC-4 at 64-token pages: 2 pages) — the fork API buys nothing the
    // content hash does not.
    let fork_baseline = shared_rows
        .iter()
        .find(|r| r.sequences == 8 && r.mode == "shared")
        .expect("8-sequence shared row");
    let radix_8 = prefix_rows
        .iter()
        .find(|r| r.tenants == 8 && r.mode == "radix")
        .expect("8-tenant radix row");
    assert!(
        radix_8.peak_pages <= fork_baseline.peak_pages + 2,
        "8 tenants: radix peak {} pages strays beyond one page run of the explicit-fork baseline {}",
        radix_8.peak_pages,
        fork_baseline.peak_pages,
    );
    // Degraded-mode trajectory: the same workload healthy, after a
    // device loss, and with the loss striking mid-run.
    let degraded_rows: Vec<DegradedRow> = [
        ("healthy_4dev", FaultPlan::new()),
        ("post_failure_3dev", FaultPlan::new().device_loss(0, 2)),
        ("recovery_in_progress", FaultPlan::new().device_loss(4, 2)),
    ]
    .into_iter()
    .map(|(mode, plan)| run_degraded(mode, plan))
    .collect();
    for r in &degraded_rows {
        println!(
            "degraded {:>22}: {:>9.0} kv-tok/s on {} devices, first token @{:>4.1}, completion @{:>4.1}, {} faults, {} recoveries, {} degraded steps",
            r.mode,
            r.kv_tok_s,
            r.devices_end,
            r.mean_first_token_step,
            r.mean_completion_step,
            r.faults,
            r.recoveries,
            r.degraded_steps,
        );
    }
    // The acceptance bar: the mid-run loss pays its recompute replays in
    // completion steps, and both faulted runs end on 3 devices.
    assert_eq!(degraded_rows[0].devices_end, 4);
    assert_eq!(degraded_rows[1].devices_end, 3);
    assert_eq!(degraded_rows[2].devices_end, 3);
    assert!(
        degraded_rows[2].mean_completion_step >= degraded_rows[0].mean_completion_step,
        "recovery-in-progress cannot complete earlier than healthy"
    );
    write_bench_json(
        &rows,
        &policy_rows,
        &shared_rows,
        &prefix_rows,
        &degraded_rows,
        &het_rows,
        &slo,
    );
}

/// Renders one [`Quantiles`] block with a stable key order.
fn quantiles_json(q: &Quantiles) -> String {
    format!(
        "{{\"count\": {}, \"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}, \"max\": {:.1}, \"mean\": {:.2}}}",
        q.count, q.p50, q.p90, q.p99, q.max, q.mean
    )
}

#[allow(clippy::too_many_arguments)]
fn write_bench_json(
    rows: &[ServeBenchRow],
    policy_rows: &[PolicyBenchRow],
    shared_rows: &[SharedPrefixRow],
    prefix_rows: &[PrefixCacheRow],
    degraded_rows: &[DegradedRow],
    het_rows: &[HeterogeneousRow],
    slo: &SloSummary,
) {
    if std::env::var("BENCH_SERVE_JSON").as_deref() == Ok("0") {
        println!("BENCH_serve.json left untouched (BENCH_SERVE_JSON=0)");
        return;
    }
    let mut json = String::from(
        "{\n  \"bench\": \"serve_batched_decode\",\n  \"unit\": \"aggregate_kv_tokens_per_second\",\n  \"attention\": \"gqa_8q_4kv_d64\",\n  \"prompt_tokens\": 2048,\n  \"gen_tokens\": 4,\n  \"workers_per_device\": 2,\n  \"partitioning\": \"head_modulo\",\n  \"provenance\": {\"gpu\": \"rtx4090\", \"topology\": \"flat_nvlink4_pcie_host\", \"page_tokens\": 64, \"devices\": [1, 2, 4], \"schemes\": [\"kc4\", \"kc2\"], \"batches\": [1, 4, 16], \"policies\": [\"fcfs\", \"fcfs-preempt\", \"shortest-remaining-first\"], \"obs\": \"default-off\"},\n  \"results\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"devices\": {}, \"batch\": {}, \"steps\": {}, \"kv_tokens\": {}, \"aggregate_kv_tok_s\": {:.0}, \"per_seq_kv_tok_s\": {:.0}, \"mean_device_utilization\": {:.3}, \"modeled_allreduce_us\": {:.1}}}{}\n",
            r.scheme.label(),
            r.devices,
            r.batch,
            r.steps,
            r.kv_tokens,
            r.kv_tok_s,
            r.per_seq_tok_s,
            r.device_utilization,
            r.interconnect_s * 1e6,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"oversubscribed\": [\n");
    for (i, r) in policy_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"aggregate_kv_tok_s\": {:.0}, \"p50_completion_step\": {}, \"p95_completion_step\": {}, \"late_small_completion_step\": {}, \"preemptions\": {}, \"swap_mib\": {:.2}}}{}\n",
            r.policy,
            r.kv_tok_s,
            r.p50_completion,
            r.p95_completion,
            r.late_small_completion,
            r.preemptions,
            r.swap_mib,
            if i + 1 == policy_rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"heterogeneous\": [\n");
    for (i, r) in het_rows.iter().enumerate() {
        let heads: Vec<String> = r.heads_per_device.iter().map(usize::to_string).collect();
        json.push_str(&format!(
            "    {{\"topology\": \"mixed_h100_a100\", \"partitioning\": \"{}\", \"heads_per_device\": [{}], \"aggregate_kv_tok_s\": {:.0}, \"critical_path_device_utilization\": {:.3}, \"modeled_allreduce_us\": {:.1}}}{}\n",
            r.partitioning,
            heads.join(", "),
            r.kv_tok_s,
            r.critical_path_utilization,
            r.interconnect_s * 1e6,
            if i + 1 == het_rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"slo\": {{\"scenario\": \"bursty_fcfs_preempt\", \"submitted\": {}, \"completed\": {}, \"preemptions\": {}, \"resumes\": {}, \"ttft_steps\": {}, \"tbt_steps\": {}, \"queue_wait_steps\": {}, \"goodput_tok_s\": {}, \"aggregate_goodput_tok_s\": {:.0}}},\n",
        slo.submitted,
        slo.completed,
        slo.preemptions,
        slo.resumes,
        quantiles_json(&slo.ttft_steps),
        quantiles_json(&slo.tbt_steps),
        quantiles_json(&slo.queue_wait_steps),
        quantiles_json(&slo.goodput_tok_s),
        slo.aggregate_goodput_tok_s,
    ));
    json.push_str("  \"shared_prefix\": [\n");
    for (i, r) in shared_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"sequences\": {}, \"mode\": \"{}\", \"gen_tokens\": {}, \"steps\": {}, \"peak_physical_pages\": {}, \"aggregate_kv_tok_s\": {:.0}, \"speedup_vs_unshared\": {:.2}, \"forks\": {}, \"peak_bytes_deduped_kib\": {:.1}, \"shared_attn_groups\": {}, \"prefix_pages_walked_saved\": {}}}{}\n",
            r.sequences,
            r.mode,
            r.gen_tokens,
            r.steps,
            r.peak_pages,
            r.kv_tok_s,
            r.speedup,
            r.forks,
            r.bytes_saved_kib,
            r.shared_attn_groups,
            r.prefix_pages_walked_saved,
            if i + 1 == shared_rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"prefix_cache\": [\n");
    for (i, r) in prefix_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tenants\": {}, \"mode\": \"{}\", \"steps\": {}, \"peak_physical_pages\": {}, \"aggregate_kv_tok_s\": {:.0}, \"prefix_cache_hits\": {}, \"prefix_cache_misses\": {}, \"prefix_pages_reused\": {}, \"prefix_bytes_reused_kib\": {:.1}, \"shared_attn_groups\": {}}}{}\n",
            r.tenants,
            r.mode,
            r.steps,
            r.peak_pages,
            r.kv_tok_s,
            r.hits,
            r.misses,
            r.pages_reused,
            r.bytes_reused_kib,
            r.shared_attn_groups,
            if i + 1 == prefix_rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"degraded\": [\n");
    for (i, r) in degraded_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"devices_end\": {}, \"aggregate_kv_tok_s\": {:.0}, \"mean_first_token_step\": {:.1}, \"mean_completion_step\": {:.1}, \"faults_injected\": {}, \"recoveries\": {}, \"degraded_steps\": {}}}{}\n",
            r.mode,
            r.devices_end,
            r.kv_tok_s,
            r.mean_first_token_step,
            r.mean_completion_step,
            r.faults,
            r.recoveries,
            r.degraded_steps,
            if i + 1 == degraded_rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
