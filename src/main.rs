//! `bitdecoding` — command-line front end for the BitDecoding-RS simulator.
//!
//! ```text
//! bitdecoding archs                          list modelled GPUs
//! bitdecoding price  <arch> <scheme> <hq> <hkv> <d> <len> [batch]
//!                                            price one decode step vs FP16
//! bitdecoding sweep  <arch> <scheme>         speedup curve over context
//! bitdecoding serve  <arch> <scheme> <len>   max serving throughput (8B model)
//! ```

use bitdecoding::baselines::{speedup, BitDecodingSys, DecodeSystem, FlashDecoding};
use bitdecoding::llm::{max_throughput, ModelConfig, WeightPrecision};
use bitdecoding::{AttentionConfig, DecodeShape, GpuArch, QuantScheme};
use std::process::ExitCode;

fn parse_arch(name: &str) -> Option<GpuArch> {
    GpuArch::all().into_iter().find(|a| {
        a.name.to_lowercase().replace(' ', "") == name.to_lowercase().replace(['-', '_', ' '], "")
    })
}

fn parse_scheme(name: &str) -> Option<QuantScheme> {
    match name.to_lowercase().replace('_', "-").as_str() {
        "kt4" | "kt-4" => Some(QuantScheme::kt4()),
        "kc4" | "kc-4" => Some(QuantScheme::kc4()),
        "kt2" | "kt-2" => Some(QuantScheme::kt2()),
        "kc2" | "kc-2" => Some(QuantScheme::kc2()),
        "mxfp4" => Some(QuantScheme::mxfp4()),
        "nvfp4" => Some(QuantScheme::nvfp4()),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  bitdecoding archs");
    eprintln!("  bitdecoding price <arch> <scheme> <hq> <hkv> <d> <len> [batch]");
    eprintln!("  bitdecoding sweep <arch> <scheme>");
    eprintln!("  bitdecoding serve <arch> <scheme> <len>");
    eprintln!();
    eprintln!("archs: a100, rtx4090, h100, rtx5090, rtxpro6000");
    eprintln!("schemes: kt4, kc4, kt2, kc2, mxfp4, nvfp4");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("archs") => {
            println!(
                "{:<14}{:>6}{:>12}{:>12}{:>12}{:>12}{:>10}",
                "name", "SMs", "BW GB/s", "FP16 TF", "FP8 TF", "FP4 TF", "DRAM GB"
            );
            for a in GpuArch::all() {
                println!(
                    "{:<14}{:>6}{:>12.0}{:>12.0}{:>12.0}{:>12.0}{:>10.0}",
                    a.name,
                    a.sms,
                    a.dram_bw_gbs,
                    a.tc_fp16_tflops,
                    a.tc_fp8_tflops,
                    a.tc_fp4_tflops,
                    a.dram_gb
                );
            }
            ExitCode::SUCCESS
        }
        Some("price") if args.len() >= 7 => {
            let (Some(arch), Some(scheme)) = (parse_arch(&args[1]), parse_scheme(&args[2])) else {
                return usage();
            };
            let parse = |s: &String| s.parse::<usize>().ok();
            let (Some(hq), Some(hkv), Some(d), Some(len)) = (
                parse(&args[3]),
                parse(&args[4]),
                parse(&args[5]),
                parse(&args[6]),
            ) else {
                return usage();
            };
            let batch = args.get(7).and_then(parse).unwrap_or(1);
            let attn = AttentionConfig::new(hq, hkv, d);
            let shape = DecodeShape::new(batch, attn, len).with_residual(64.min(len / 2));
            let sys = BitDecodingSys::new(scheme);
            let base = FlashDecoding::v2();
            let lat = sys.latency(&shape, &arch);
            println!("workload : {attn}, len {len}, batch {batch} on {arch}");
            println!("kernel   : {lat}");
            println!("tc util  : {:.1}%", lat.tc_utilization() * 100.0);
            println!("dequant  : {:.1}% of step", lat.dequant_fraction() * 100.0);
            println!(
                "speedup  : {:.2}x over FP16 FlashDecoding-v2",
                speedup(&sys, &base, &shape, &arch)
            );
            ExitCode::SUCCESS
        }
        Some("sweep") if args.len() >= 3 => {
            let (Some(arch), Some(scheme)) = (parse_arch(&args[1]), parse_scheme(&args[2])) else {
                return usage();
            };
            let attn = AttentionConfig::gqa(32, 8, 128);
            let sys = BitDecodingSys::new(scheme);
            let base = FlashDecoding::v2();
            println!("{} {} (GQA 32/8, d=128, bs=8):", arch.name, scheme);
            println!("{:>10}{:>14}{:>14}", "context", "latency", "speedup");
            for len in [1024usize, 4096, 16384, 65536, 131072] {
                let shape = DecodeShape::new(8, attn, len).with_residual(64);
                println!(
                    "{:>9}K{:>11.3} ms{:>13.2}x",
                    len / 1024,
                    sys.latency_s(&shape, &arch) * 1e3,
                    speedup(&sys, &base, &shape, &arch)
                );
            }
            ExitCode::SUCCESS
        }
        Some("serve") if args.len() >= 4 => {
            let (Some(arch), Some(scheme)) = (parse_arch(&args[1]), parse_scheme(&args[2])) else {
                return usage();
            };
            let Some(len) = args[3].parse::<usize>().ok() else {
                return usage();
            };
            let model = ModelConfig::llama31_8b();
            let sys = BitDecodingSys::new(scheme).paged(true);
            let fp16 = FlashDecoding::v2();
            let r = max_throughput(model, &sys, arch.clone(), WeightPrecision::Fp16, len);
            let b = max_throughput(model, &fp16, arch, WeightPrecision::Fp16, len);
            println!("{} at {len} tokens/seq:", model);
            println!(
                "  {:<22}{:>9.1} tok/s (batch {})",
                sys.label(),
                r.tokens_per_s,
                r.batch
            );
            println!(
                "  {:<22}{:>9.1} tok/s (batch {})",
                b.system, b.tokens_per_s, b.batch
            );
            println!("  ratio: {:.2}x", r.tokens_per_s / b.tokens_per_s.max(1e-9));
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
