#![warn(missing_docs)]

//! # bitdecoding — facade crate for BitDecoding-RS
//!
//! A full-system Rust reproduction of **"BitDecoding: Unlocking Tensor
//! Cores for Long-Context LLMs with Low-Bit KV Cache"** (HPCA 2026) on a
//! simulated GPU substrate. See `README.md` for the architecture overview
//! and `DESIGN.md` for the substitution rationale (no GPU is required —
//! or used).
//!
//! This crate re-exports the workspace's public API under stable paths:
//!
//! * [`lowbit`] — numeric formats (software FP16, FP4, packing, fast dequant);
//! * [`gpu`] — the GPU execution model (fragments, ISA, cost model);
//! * [`kvcache`] — quantized cache containers (packed/residual/paged);
//! * [`core`] — the BitDecoding engine ([`BitDecoder`]);
//! * [`baselines`] — FlashDecoding/KIVI/Atom/QServe comparison systems;
//! * [`serve`] — the batched decode runtime (paged packed KV storage,
//!   pluggable scheduling policies with swap-out/swap-in preemption,
//!   persistent worker pool);
//! * [`llm`] — end-to-end model-level simulation;
//! * [`accuracy`] — quantization fidelity evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use bitdecoding::{AttentionConfig, BitDecoder, GpuArch, QuantScheme};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dec = BitDecoder::builder(GpuArch::rtx4090())
//!     .attention(AttentionConfig::gqa(8, 2, 32))
//!     .scheme(QuantScheme::kc4())
//!     .build();
//! let mut cache = dec.new_cache(1);
//! let codec = dec.codec();
//! let kv: Vec<Vec<f32>> = (0..200).map(|t| vec![0.01 * t as f32; 32]).collect();
//! for head in 0..cache.heads() {
//!     cache.prefill(head, &kv, &kv, &codec)?;
//! }
//! let q = vec![vec![vec![0.1; 32]; 8]];
//! let out = dec.decode(&q, &cache)?;
//! assert_eq!(out.outputs[0].len(), 8);
//! # Ok(())
//! # }
//! ```

pub use bd_accuracy as accuracy;
pub use bd_baselines as baselines;
pub use bd_core as core;
pub use bd_gpu_sim as gpu;
pub use bd_kvcache as kvcache;
pub use bd_llm as llm;
pub use bd_lowbit as lowbit;
pub use bd_serve as serve;

pub use bd_baselines::{BitDecodingSys, CudaOnly, DecodeSystem, FlashDecoding, Kivi};
pub use bd_core::{
    AttentionConfig, BitDecoder, DecodeError, DecodeOutput, DecodeReport, DecodeShape,
    OptimizationFlags,
};
pub use bd_gpu_sim::{
    builtin_device, builtin_topology, DeviceSpec, GpuArch, InterconnectModel, LatencyBreakdown,
    SpecError, Topology, TopologySpec,
};
pub use bd_kvcache::{
    CacheConfig, DeviceId, PackLayout, PagedKvStore, Partitioning, Placement, QuantScheme,
    QuantizedKvCache, ShardedKvStore,
};
pub use bd_llm::{Engine, MemoryModel, ModelConfig, WeightPrecision};
pub use bd_serve::{
    Fcfs, FcfsPreempt, SchedulerPolicy, ServeConfig, ServeSession, ShortestRemainingFirst,
    SynthSequence,
};
